/root/repo/target/debug/deps/telemetry_integration-058e32f11a2d61a9.d: crates/db/tests/telemetry_integration.rs

/root/repo/target/debug/deps/telemetry_integration-058e32f11a2d61a9: crates/db/tests/telemetry_integration.rs

crates/db/tests/telemetry_integration.rs:
