/root/repo/target/debug/examples/perfexplorer_mining-11fefe822edf125c.d: examples/perfexplorer_mining.rs Cargo.toml

/root/repo/target/debug/examples/libperfexplorer_mining-11fefe822edf125c.rmeta: examples/perfexplorer_mining.rs Cargo.toml

examples/perfexplorer_mining.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
