//! Causal tracing end to end: run a parallel SQL query with the flight
//! recorder on, then export the trace as Chrome-trace JSON.
//!
//! 1. Seed an in-memory database with enough rows that the executor
//!    partitions the scan/aggregate across the worker pool (forced via
//!    `override_for_thread` so it engages even on one core).
//! 2. Open a client span, run an aggregate query and its
//!    `EXPLAIN ANALYZE`, and print the annotated plan.
//! 3. Dump the flight recorder, keep the spans of our trace, export
//!    them as Chrome-trace JSON (loadable in `chrome://tracing` or
//!    <https://ui.perfetto.dev>), and self-validate: the trace must
//!    span at least two threads and carry a cross-thread flow arrow.
//!
//! Run with: `cargo run --example trace_query [out.json]`

use perfdmf::db::Connection;
use perfdmf::telemetry::{self, trace};

fn main() {
    telemetry::set_tracing(true);
    // One core is enough: force a 4-way pool split on small inputs.
    let _par = perfdmf_pool::override_for_thread(4, 1);

    let conn = Connection::open_in_memory();
    conn.execute(
        "CREATE TABLE sample (trial INTEGER, node INTEGER, time DOUBLE)",
        &[],
    )
    .expect("ddl");
    let mut state = 0x5045_5246u64;
    for chunk in 0..8 {
        let mut rows = Vec::new();
        for i in 0..128 {
            // splitmix64 keeps the data deterministic run to run.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            rows.push(format!(
                "({}, {}, {:.3})",
                chunk * 128 + i,
                z % 32,
                (z % 10_000) as f64 / 100.0
            ));
        }
        conn.insert(
            &format!(
                "INSERT INTO sample (trial, node, time) VALUES {}",
                rows.join(", ")
            ),
            &[],
        )
        .expect("seed rows");
    }

    let sql = "SELECT node, COUNT(*), AVG(time) FROM sample GROUP BY node ORDER BY node";
    let (trace_id, plan) = {
        let _client = telemetry::span("trace_query.client");
        let trace_id = trace::current_trace_id().expect("tracing is on");
        let rs = conn.query(sql, &[]).expect("query");
        println!(
            "query returned {} groups over {} scanned rows [trace {}]\n",
            rs.rows.len(),
            rs.rows_scanned,
            trace_id.as_hex()
        );
        let plan = conn
            .query(&format!("EXPLAIN ANALYZE {sql}"), &[])
            .expect("explain analyze");
        (trace_id, plan)
    };
    println!("EXPLAIN ANALYZE {sql}");
    for row in &plan.rows {
        println!("  {}", row[0].as_text().unwrap_or(""));
    }

    // --- export the flight recorder ---
    let records: Vec<_> = trace::recorder()
        .dump()
        .into_iter()
        .filter(|r| r.trace == trace_id.0)
        .collect();
    let threads: std::collections::BTreeSet<u64> = records.iter().map(|r| r.thread).collect();
    let mut by_name: std::collections::BTreeMap<&str, (usize, u64)> =
        std::collections::BTreeMap::new();
    for r in &records {
        let e = by_name.entry(r.name).or_insert((0, 0));
        e.0 += 1;
        e.1 += r.dur_ns;
    }
    println!(
        "\nflight recorder: {} spans of trace {} across {} threads",
        records.len(),
        trace_id.as_hex(),
        threads.len()
    );
    for (name, (calls, total_ns)) in &by_name {
        println!(
            "  {:<24} {:>3} span(s) {:>12}ns total",
            name, calls, total_ns
        );
    }

    let json = trace::export_chrome_trace(&records);
    let out = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("perfdmf_trace_{}.json", std::process::id()))
        });
    std::fs::write(&out, &json).expect("write trace file");
    println!("\nchrome trace written to {}", out.display());

    // --- self-validate ---
    assert!(
        threads.len() >= 2,
        "expected spans from >=2 threads, got {threads:?}"
    );
    assert!(
        json.contains("\"ph\":\"s\"") && json.contains("\"ph\":\"f\""),
        "expected at least one cross-thread flow arrow"
    );
    assert!(
        records.iter().any(|r| r.name == "pool.task"),
        "expected worker-side pool.task spans"
    );
    println!("self-validation passed: cross-thread trace with flow arrows");
}
