//! Experiment E1 — large-scale profile handling (paper §3.1 / §5.3).
//!
//! Paper claim: "101 events on 16K processors ... 1.6 million data
//! points, and the PerfDMF API was able to handle the data without
//! problems." This bench sweeps Miranda-shaped trials over processor
//! counts and measures the three pipeline stages: store into the DBMS,
//! full trial load, and a node-selective load. Expected shape: all three
//! scale ~linearly in data points (the 16K point itself is exercised by
//! `examples/large_scale_miranda.rs --full`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use perfdmf_bench::store_fresh;
use perfdmf_core::{load_trial, load_trial_filtered, LoadFilter};
use perfdmf_workload::MirandaModel;

fn bench_store(c: &mut Criterion) {
    let model = MirandaModel::default();
    let mut group = c.benchmark_group("e1_store");
    group.sample_size(10);
    for procs in [64usize, 256, 1024] {
        let profile = model.generate(procs);
        let points = profile.data_point_count() as u64;
        group.throughput(Throughput::Elements(points));
        group.bench_with_input(BenchmarkId::from_parameter(procs), &profile, |b, p| {
            b.iter(|| store_fresh(p));
        });
    }
    group.finish();
}

fn bench_load(c: &mut Criterion) {
    let model = MirandaModel::default();
    let mut group = c.benchmark_group("e1_load_full");
    group.sample_size(10);
    for procs in [64usize, 256, 1024] {
        let profile = model.generate(procs);
        let points = profile.data_point_count() as u64;
        let (conn, trial) = store_fresh(&profile);
        group.throughput(Throughput::Elements(points));
        group.bench_with_input(BenchmarkId::from_parameter(procs), &(), |b, _| {
            b.iter(|| load_trial(&conn, trial).expect("load"));
        });
    }
    group.finish();
}

fn bench_selective_load(c: &mut Criterion) {
    let model = MirandaModel::default();
    let mut group = c.benchmark_group("e1_load_one_node");
    for procs in [256usize, 1024, 4096] {
        let profile = model.generate(procs);
        let (conn, trial) = store_fresh(&profile);
        group.bench_with_input(BenchmarkId::from_parameter(procs), &(), |b, _| {
            b.iter(|| {
                load_trial_filtered(
                    &conn,
                    trial,
                    &LoadFilter {
                        node: Some(0),
                        ..Default::default()
                    },
                )
                .expect("filtered load")
            });
        });
    }
    group.finish();
}

fn bench_summaries(c: &mut Criterion) {
    let model = MirandaModel::default();
    let mut group = c.benchmark_group("e1_total_summary");
    for procs in [1024usize, 4096, 16384] {
        let profile = model.generate(procs);
        let m = profile.find_metric("WALL_CLOCK").expect("metric");
        group.throughput(Throughput::Elements(profile.data_point_count() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(procs), &(), |b, _| {
            b.iter(|| profile.total_summary(m));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_store,
    bench_load,
    bench_selective_load,
    bench_summaries
);
criterion_main!(benches);
