/root/repo/target/debug/deps/perfdmf_workload-ebba1ee69955db6d.d: crates/workload/src/lib.rs crates/workload/src/models.rs crates/workload/src/writers.rs

/root/repo/target/debug/deps/perfdmf_workload-ebba1ee69955db6d: crates/workload/src/lib.rs crates/workload/src/models.rs crates/workload/src/writers.rs

crates/workload/src/lib.rs:
crates/workload/src/models.rs:
crates/workload/src/writers.rs:
