/root/repo/target/debug/deps/cli-05a2dee5fcdb2a8d.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-05a2dee5fcdb2a8d.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
