//! SQL abstract syntax tree.

use crate::schema::ColumnDef;
use crate::value::Value;

/// A full SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `EXPLAIN [ANALYZE] <statement>` — describe the execution plan;
    /// with `ANALYZE`, execute the statement and annotate each plan line
    /// with actual rows, partitions used, and wall time.
    Explain {
        statement: Box<Statement>,
        analyze: bool,
    },
    Select(Select),
    Insert(Insert),
    Update(Update),
    Delete(Delete),
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
        if_not_exists: bool,
    },
    DropTable {
        name: String,
        if_exists: bool,
    },
    AlterTableAddColumn {
        table: String,
        column: ColumnDef,
    },
    AlterTableDropColumn {
        table: String,
        column: String,
    },
    CreateIndex {
        name: String,
        table: String,
        column: String,
        unique: bool,
    },
    DropIndex {
        name: String,
    },
    Begin,
    Commit,
    Rollback,
}

/// SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub projections: Vec<Projection>,
    /// FROM clause; empty for scalar SELECTs like `SELECT 1+1`.
    pub from: Option<TableRef>,
    pub joins: Vec<Join>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
}

/// A projected output column.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `*`
    Wildcard,
    /// `t.*`
    TableWildcard(String),
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
}

/// A table reference with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// Name this table is addressed by in the query.
    pub fn effective_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// Join types supported by the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
    Cross,
}

/// One JOIN clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub kind: JoinKind,
    pub table: TableRef,
    /// ON condition (absent for CROSS JOIN).
    pub on: Option<Expr>,
}

/// ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub descending: bool,
}

/// INSERT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    pub table: String,
    /// Explicit column list; empty means "all columns in order".
    pub columns: Vec<String>,
    /// One or more value tuples.
    pub rows: Vec<Vec<Expr>>,
}

/// UPDATE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    pub table: String,
    pub assignments: Vec<(String, Expr)>,
    pub where_clause: Option<Expr>,
}

/// DELETE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    pub table: String,
    pub where_clause: Option<Expr>,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Like,
    Concat,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateFn {
    Count,
    Sum,
    Avg,
    Min,
    Max,
    /// Sample standard deviation (n-1 denominator), matching common DBMS
    /// `STDDEV`.
    StdDev,
}

impl AggregateFn {
    /// Parse an aggregate function name.
    pub fn parse(name: &str) -> Option<AggregateFn> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggregateFn::Count),
            "SUM" => Some(AggregateFn::Sum),
            "AVG" | "MEAN" => Some(AggregateFn::Avg),
            "MIN" => Some(AggregateFn::Min),
            "MAX" => Some(AggregateFn::Max),
            "STDDEV" | "STDDEV_SAMP" | "STD" => Some(AggregateFn::StdDev),
            _ => None,
        }
    }

    /// Canonical display name.
    pub fn name(&self) -> &'static str {
        match self {
            AggregateFn::Count => "COUNT",
            AggregateFn::Sum => "SUM",
            AggregateFn::Avg => "AVG",
            AggregateFn::Min => "MIN",
            AggregateFn::Max => "MAX",
            AggregateFn::StdDev => "STDDEV",
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// `?` positional parameter (0-based ordinal).
    Param(usize),
    /// Column reference, optionally qualified: `[table.]column`.
    Column {
        table: Option<String>,
        column: String,
    },
    Unary {
        op: UnaryOp,
        operand: Box<Expr>,
    },
    Binary {
        op: BinaryOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        operand: Box<Expr>,
        negated: bool,
    },
    /// `expr IN (v1, v2, ...)`.
    InList {
        operand: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT ...)` — uncorrelated subquery, resolved to
    /// an `InList` before evaluation.
    InSubquery {
        operand: Box<Expr>,
        select: Box<Select>,
        negated: bool,
    },
    /// `(SELECT ...)` in scalar position — uncorrelated, must yield one
    /// column; resolved to a literal (first row's value, NULL if empty).
    ScalarSubquery(Box<Select>),
    /// `[NOT] EXISTS (SELECT ...)` — uncorrelated; resolved to a boolean.
    Exists {
        select: Box<Select>,
        negated: bool,
    },
    /// `expr BETWEEN lo AND hi`.
    Between {
        operand: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// Aggregate call. `arg` is `None` for `COUNT(*)`.
    Aggregate {
        func: AggregateFn,
        arg: Option<Box<Expr>>,
        distinct: bool,
    },
    /// Scalar function call (ABS, LOWER, COALESCE, ...).
    Function {
        name: String,
        args: Vec<Expr>,
    },
    /// `CASE WHEN c THEN v [WHEN ...] [ELSE e] END`.
    Case {
        branches: Vec<(Expr, Expr)>,
        else_branch: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Column reference shorthand.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            table: None,
            column: name.to_ascii_lowercase(),
        }
    }

    /// Literal shorthand.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// True if this expression (sub)tree contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Literal(_) | Expr::Param(_) | Expr::Column { .. } => false,
            Expr::Unary { operand, .. } => operand.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::IsNull { operand, .. } => operand.contains_aggregate(),
            Expr::InList { operand, list, .. } => {
                operand.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::InSubquery { operand, .. } => operand.contains_aggregate(),
            Expr::ScalarSubquery(_) | Expr::Exists { .. } => false,
            Expr::Between {
                operand, low, high, ..
            } => {
                operand.contains_aggregate()
                    || low.contains_aggregate()
                    || high.contains_aggregate()
            }
            Expr::Function { args, .. } => args.iter().any(Expr::contains_aggregate),
            Expr::Case {
                branches,
                else_branch,
            } => {
                branches
                    .iter()
                    .any(|(c, v)| c.contains_aggregate() || v.contains_aggregate())
                    || else_branch.as_ref().is_some_and(|e| e.contains_aggregate())
            }
        }
    }

    /// Display name used for an unaliased projection of this expression.
    pub fn default_name(&self) -> String {
        match self {
            Expr::Column { column, .. } => column.clone(),
            Expr::Aggregate { func, arg, .. } => match arg {
                None => format!("{}(*)", func.name()),
                Some(a) => format!("{}({})", func.name(), a.default_name()),
            },
            Expr::Function { name, .. } => name.to_ascii_lowercase(),
            Expr::Literal(v) => v.to_string(),
            _ => "expr".to_string(),
        }
    }
}
