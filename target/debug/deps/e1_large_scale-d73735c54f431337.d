/root/repo/target/debug/deps/e1_large_scale-d73735c54f431337.d: crates/bench/benches/e1_large_scale.rs Cargo.toml

/root/repo/target/debug/deps/libe1_large_scale-d73735c54f431337.rmeta: crates/bench/benches/e1_large_scale.rs Cargo.toml

crates/bench/benches/e1_large_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
