//! Aggregate accumulators: COUNT, SUM, AVG, MIN, MAX, STDDEV.
//!
//! STDDEV uses Welford's online algorithm for numerical stability — the
//! same algorithm the profile model uses for atomic events, so SQL results
//! and toolkit statistics agree bit-for-bit on the same data.

use crate::error::{DbError, Result};
use crate::sql::ast::AggregateFn;
use crate::value::Value;
use std::collections::HashSet;

/// One accumulator instance (per aggregate expression per group).
#[derive(Debug, Clone)]
pub struct Accumulator {
    func: AggregateFn,
    distinct: bool,
    seen: HashSet<Value>,
    count: u64,
    /// Running sum kept as integer while possible (exact for counters).
    int_sum: i64,
    int_exact: bool,
    float_sum: f64,
    min: Option<Value>,
    max: Option<Value>,
    // Welford state
    mean: f64,
    m2: f64,
}

impl Accumulator {
    /// New accumulator for `func`.
    pub fn new(func: AggregateFn, distinct: bool) -> Self {
        Accumulator {
            func,
            distinct,
            seen: HashSet::new(),
            count: 0,
            int_sum: 0,
            int_exact: true,
            float_sum: 0.0,
            min: None,
            max: None,
            mean: 0.0,
            m2: 0.0,
        }
    }

    /// Feed one input value. `None` means `COUNT(*)` row marker.
    pub fn update(&mut self, value: Option<&Value>) -> Result<()> {
        let Some(v) = value else {
            // COUNT(*): every row counts.
            self.count += 1;
            return Ok(());
        };
        if v.is_null() {
            return Ok(()); // aggregates skip NULLs
        }
        if self.distinct && !self.seen.insert(v.clone()) {
            return Ok(());
        }
        self.count += 1;
        match self.func {
            AggregateFn::Count => {}
            AggregateFn::Min => {
                if self.min.as_ref().is_none_or(|m| v < m) {
                    self.min = Some(v.clone());
                }
            }
            AggregateFn::Max => {
                if self.max.as_ref().is_none_or(|m| v > m) {
                    self.max = Some(v.clone());
                }
            }
            AggregateFn::Sum | AggregateFn::Avg | AggregateFn::StdDev => {
                let x = v.as_float().ok_or_else(|| {
                    DbError::Eval(format!("{} of non-numeric value {v}", self.func.name()))
                })?;
                match v {
                    Value::Int(i) if self.int_exact => match self.int_sum.checked_add(*i) {
                        Some(s) => self.int_sum = s,
                        None => {
                            self.int_exact = false;
                            self.float_sum = self.int_sum as f64 + *i as f64;
                        }
                    },
                    _ => {
                        if self.int_exact {
                            self.float_sum = self.int_sum as f64;
                            self.int_exact = false;
                        }
                        self.float_sum += x;
                    }
                }
                // Welford
                let delta = x - self.mean;
                self.mean += delta / self.count as f64;
                self.m2 += delta * (x - self.mean);
            }
        }
        Ok(())
    }

    /// Assemble an accumulator from kernel-computed state. The columnar
    /// path (see `exec::vector`) runs tight typed loops per chunk and
    /// packages the result here, so merging and `finish` reuse the exact
    /// serial semantics. DISTINCT never reaches the columnar path.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        func: AggregateFn,
        count: u64,
        int_sum: i64,
        int_exact: bool,
        float_sum: f64,
        min: Option<Value>,
        max: Option<Value>,
        mean: f64,
        m2: f64,
    ) -> Self {
        Accumulator {
            func,
            distinct: false,
            seen: HashSet::new(),
            count,
            int_sum,
            int_exact,
            float_sum,
            min,
            max,
            mean,
            m2,
        }
    }

    /// Does this accumulator carry DISTINCT state? DISTINCT aggregates
    /// dedupe through a HashSet whose contents depend on which partition
    /// saw a value first, so the parallel path must not split them.
    pub fn is_distinct(&self) -> bool {
        self.distinct
    }

    /// Fold another accumulator over the same aggregate expression into
    /// this one. Used by the parallel execution path: each partition feeds
    /// its rows into a private accumulator, then partials are merged in
    /// partition-index order. The merge is commutative up to float
    /// rounding (mean/m2 use the Chan et al. pairwise combination).
    pub fn merge(&mut self, other: &Accumulator) -> Result<()> {
        debug_assert_eq!(self.func, other.func);
        if self.distinct || other.distinct {
            return Err(DbError::Unsupported(
                "DISTINCT aggregates cannot be merged across partitions".into(),
            ));
        }
        if other.count == 0 {
            return Ok(());
        }
        if self.count == 0 {
            let func = self.func;
            *self = other.clone();
            self.func = func;
            return Ok(());
        }
        match self.func {
            AggregateFn::Count => {}
            AggregateFn::Min => {
                if let Some(v) = &other.min {
                    if self.min.as_ref().is_none_or(|m| v < m) {
                        self.min = Some(v.clone());
                    }
                }
            }
            AggregateFn::Max => {
                if let Some(v) = &other.max {
                    if self.max.as_ref().is_none_or(|m| v > m) {
                        self.max = Some(v.clone());
                    }
                }
            }
            AggregateFn::Sum | AggregateFn::Avg | AggregateFn::StdDev => {
                if self.int_exact && other.int_exact {
                    match self.int_sum.checked_add(other.int_sum) {
                        Some(s) => self.int_sum = s,
                        None => {
                            self.int_exact = false;
                            self.float_sum = self.int_sum as f64 + other.int_sum as f64;
                        }
                    }
                } else {
                    let lhs = if self.int_exact {
                        self.int_sum as f64
                    } else {
                        self.float_sum
                    };
                    let rhs = if other.int_exact {
                        other.int_sum as f64
                    } else {
                        other.float_sum
                    };
                    self.int_exact = false;
                    self.float_sum = lhs + rhs;
                }
                // Chan et al. parallel Welford combination.
                let n1 = self.count as f64;
                let n2 = other.count as f64;
                let n = n1 + n2;
                let delta = other.mean - self.mean;
                self.mean += delta * n2 / n;
                self.m2 += other.m2 + delta * delta * n1 * n2 / n;
            }
        }
        self.count += other.count;
        Ok(())
    }

    /// Final aggregate value.
    pub fn finish(&self) -> Value {
        match self.func {
            AggregateFn::Count => Value::Int(self.count as i64),
            AggregateFn::Min => self.min.clone().unwrap_or(Value::Null),
            AggregateFn::Max => self.max.clone().unwrap_or(Value::Null),
            AggregateFn::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.int_exact {
                    Value::Int(self.int_sum)
                } else {
                    Value::Float(self.float_sum)
                }
            }
            AggregateFn::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    let sum = if self.int_exact {
                        self.int_sum as f64
                    } else {
                        self.float_sum
                    };
                    Value::Float(sum / self.count as f64)
                }
            }
            AggregateFn::StdDev => {
                if self.count < 2 {
                    Value::Null
                } else {
                    Value::Float((self.m2 / (self.count - 1) as f64).sqrt())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggregateFn, vals: &[Value]) -> Value {
        let mut acc = Accumulator::new(func, false);
        for v in vals {
            acc.update(Some(v)).unwrap();
        }
        acc.finish()
    }

    fn ints(v: &[i64]) -> Vec<Value> {
        v.iter().map(|&i| Value::Int(i)).collect()
    }

    #[test]
    fn count_skips_nulls() {
        let vals = vec![Value::Int(1), Value::Null, Value::Int(2)];
        assert_eq!(run(AggregateFn::Count, &vals), Value::Int(2));
    }

    #[test]
    fn count_star_counts_everything() {
        let mut acc = Accumulator::new(AggregateFn::Count, false);
        for _ in 0..5 {
            acc.update(None).unwrap();
        }
        assert_eq!(acc.finish(), Value::Int(5));
    }

    #[test]
    fn sum_integer_exact() {
        assert_eq!(run(AggregateFn::Sum, &ints(&[1, 2, 3])), Value::Int(6));
        // mixed types fall to float
        let vals = vec![Value::Int(1), Value::Float(0.5)];
        assert_eq!(run(AggregateFn::Sum, &vals), Value::Float(1.5));
    }

    #[test]
    fn sum_overflow_degrades_to_float() {
        let vals = ints(&[i64::MAX, 10]);
        match run(AggregateFn::Sum, &vals) {
            Value::Float(f) => assert!((f - (i64::MAX as f64 + 10.0)).abs() < 1e4),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn avg_and_stddev() {
        let vals = ints(&[2, 4, 4, 4, 5, 5, 7, 9]);
        assert_eq!(run(AggregateFn::Avg, &vals), Value::Float(5.0));
        // sample stddev of this classic dataset: sqrt(32/7)
        match run(AggregateFn::StdDev, &vals) {
            Value::Float(s) => assert!((s - (32.0f64 / 7.0).sqrt()).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stddev_needs_two_values() {
        assert_eq!(run(AggregateFn::StdDev, &ints(&[5])), Value::Null);
        assert_eq!(run(AggregateFn::StdDev, &[]), Value::Null);
    }

    #[test]
    fn min_max_text() {
        let vals = vec![
            Value::Text("mpi_send".into()),
            Value::Text("main".into()),
            Value::Text("mpi_recv".into()),
        ];
        assert_eq!(run(AggregateFn::Min, &vals), Value::Text("main".into()));
        assert_eq!(run(AggregateFn::Max, &vals), Value::Text("mpi_send".into()));
    }

    #[test]
    fn empty_aggregates_are_null_except_count() {
        assert_eq!(run(AggregateFn::Sum, &[]), Value::Null);
        assert_eq!(run(AggregateFn::Avg, &[]), Value::Null);
        assert_eq!(run(AggregateFn::Min, &[]), Value::Null);
        assert_eq!(run(AggregateFn::Count, &[]), Value::Int(0));
    }

    #[test]
    fn distinct_dedupes() {
        let mut acc = Accumulator::new(AggregateFn::Count, true);
        for v in ints(&[1, 1, 2, 2, 3]) {
            acc.update(Some(&v)).unwrap();
        }
        assert_eq!(acc.finish(), Value::Int(3));
        let mut acc = Accumulator::new(AggregateFn::Sum, true);
        for v in ints(&[5, 5, 7]) {
            acc.update(Some(&v)).unwrap();
        }
        assert_eq!(acc.finish(), Value::Int(12));
    }

    #[test]
    fn non_numeric_sum_errors() {
        let mut acc = Accumulator::new(AggregateFn::Sum, false);
        assert!(acc.update(Some(&Value::Text("x".into()))).is_err());
    }

    /// Split `vals` at every position, accumulate halves separately, merge,
    /// and compare against the single-pass result.
    fn merged_matches_serial(func: AggregateFn, vals: &[Value]) {
        let serial = run(func, vals);
        for split in 0..=vals.len() {
            let mut left = Accumulator::new(func, false);
            let mut right = Accumulator::new(func, false);
            for v in &vals[..split] {
                left.update(Some(v)).unwrap();
            }
            for v in &vals[split..] {
                right.update(Some(v)).unwrap();
            }
            left.merge(&right).unwrap();
            match (left.finish(), serial.clone()) {
                (Value::Float(a), Value::Float(b)) => {
                    let tol = 1e-9 * b.abs().max(1.0);
                    assert!((a - b).abs() <= tol, "{func:?} split {split}: {a} vs {b}");
                }
                (a, b) => assert_eq!(a, b, "{func:?} split {split}"),
            }
        }
    }

    #[test]
    fn merge_matches_serial_for_every_split() {
        let vals = ints(&[2, 4, 4, 4, 5, 5, 7, 9]);
        for func in [
            AggregateFn::Count,
            AggregateFn::Sum,
            AggregateFn::Avg,
            AggregateFn::Min,
            AggregateFn::Max,
            AggregateFn::StdDev,
        ] {
            merged_matches_serial(func, &vals);
        }
        let floats: Vec<Value> = [1.5, -2.25, 3.75, 0.0, 8.125]
            .iter()
            .map(|&f| Value::Float(f))
            .collect();
        for func in [AggregateFn::Sum, AggregateFn::Avg, AggregateFn::StdDev] {
            merged_matches_serial(func, &floats);
        }
    }

    #[test]
    fn merge_with_empty_side_is_identity() {
        let vals = ints(&[3, 1, 4]);
        merged_matches_serial(AggregateFn::Sum, &vals);
        let mut empty = Accumulator::new(AggregateFn::StdDev, false);
        let mut full = Accumulator::new(AggregateFn::StdDev, false);
        for v in &ints(&[10, 20, 30]) {
            full.update(Some(v)).unwrap();
        }
        empty.merge(&full).unwrap();
        assert_eq!(empty.finish(), full.finish());
    }

    #[test]
    fn merge_int_overflow_degrades_to_float() {
        let mut a = Accumulator::new(AggregateFn::Sum, false);
        let mut b = Accumulator::new(AggregateFn::Sum, false);
        a.update(Some(&Value::Int(i64::MAX))).unwrap();
        b.update(Some(&Value::Int(10))).unwrap();
        a.merge(&b).unwrap();
        match a.finish() {
            Value::Float(f) => assert!((f - (i64::MAX as f64 + 10.0)).abs() < 1e4),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn merge_rejects_distinct() {
        let mut a = Accumulator::new(AggregateFn::Count, true);
        let b = Accumulator::new(AggregateFn::Count, true);
        assert!(a.merge(&b).is_err());
    }
}
