//! ParaProf-style profile browser (paper §5.1, Figure 2) — experiment E2.
//!
//! Figure 2 shows ParaProf browsing a database archive holding three
//! trials of the same application imported from three different profiling
//! tools: HPMtoolkit, mpiP, and TAU. This example reproduces that data
//! path end to end:
//!
//! 1. generate one application run and render it as HPMtoolkit, mpiP, and
//!    TAU output files;
//! 2. import each with its format translator;
//! 3. store all three trials in one database archive;
//! 4. browse the application → experiment → trial tree and draw the
//!    per-thread bar charts ParaProf shows (as ASCII, one row per
//!    node/context/thread).
//!
//! Run with: `cargo run --example paraprof_browser`

use perfdmf::core::DatabaseSession;
use perfdmf::db::{Connection, Value};
use perfdmf::import::{load_path, mpip, ProfileFormat};
use perfdmf::profile::{IntervalData, IntervalEvent, Metric, Profile, ThreadId, UNDEFINED};
use perfdmf::workload::{mpip_report_text, write_hpm_files, write_tau_directory, Evh1Model};

fn main() {
    let tmp = std::env::temp_dir().join(format!("perfdmf_paraprof_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();

    // ---- generate the same application observed by three tools ----
    let base = Evh1Model::default_mix(7).generate(4);

    // TAU sees everything.
    let tau_dir = tmp.join("tau_run");
    write_tau_directory(&base, &tau_dir).unwrap();

    // HPMtoolkit sees coarse sections with counters.
    let mut hpm = Profile::new("hpm_run");
    hpm.source_format = "hpmtoolkit".into();
    let wall = hpm.add_metric(Metric::measured("HPM_WALL_CLOCK"));
    let fpu = hpm.add_metric(Metric::measured("PM_FPU0_CMPL"));
    let sect = hpm.add_event(IntervalEvent::new("hydro_sweeps", "HPM"));
    hpm.add_threads((0..4).map(|n| ThreadId::new(n, 0, 0)));
    for (i, &t) in hpm.threads().to_vec().iter().enumerate() {
        hpm.set_interval(
            sect,
            t,
            wall,
            IntervalData::new(52.0 + i as f64, 52.0 + i as f64, 100.0, 0.0),
        );
        hpm.set_interval(sect, t, fpu, IntervalData::new(3.1e9, 3.1e9, 100.0, 0.0));
    }
    let hpm_dir = tmp.join("hpm_run");
    write_hpm_files(&hpm, &hpm_dir).unwrap();

    // mpiP sees only the MPI side.
    let mut mp = Profile::new("mpip_run");
    let mt = mp.add_metric(Metric::measured("MPIP_TIME"));
    let app_ev = mp.add_event(IntervalEvent::new("Application", "MPIP_APP"));
    let send = mp.add_event(IntervalEvent::new("MPI_Send() site 1", "MPI"));
    let allr = mp.add_event(IntervalEvent::new("MPI_Allreduce() site 2", "MPI"));
    mp.add_threads((0..4).map(|n| ThreadId::new(n, 0, 0)));
    for (i, &t) in mp.threads().to_vec().iter().enumerate() {
        mp.set_interval(
            app_ev,
            t,
            mt,
            IntervalData::new(60.0, UNDEFINED, 1.0, UNDEFINED),
        );
        mp.set_interval(
            send,
            t,
            mt,
            IntervalData::new(3.0 + i as f64 * 0.2, 3.0 + i as f64 * 0.2, 400.0, 0.0),
        );
        mp.set_interval(allr, t, mt, IntervalData::new(2.0, 2.0, 150.0, 0.0));
    }
    let mpip_file = tmp.join("run.mpip");
    std::fs::write(&mpip_file, mpip_report_text(&mp, mt)).unwrap();

    // ---- import all three and archive them in one database ----
    let conn = Connection::open_in_memory();
    let mut session = DatabaseSession::new(conn.clone()).unwrap();

    let tau_trial = load_path(&tau_dir).expect("tau import");
    let hpm_trial = ProfileFormat::HpmToolkit
        .load(&hpm_dir)
        .expect("hpm import");
    let mpip_trial = mpip::load_mpip_file(&mpip_file).expect("mpip import");
    for (exp, profile) in [
        ("tau", &tau_trial),
        ("hpmtoolkit", &hpm_trial),
        ("mpip", &mpip_trial),
    ] {
        session.store_profile("evh1", exp, profile).unwrap();
    }

    // ---- the Figure-2 left pane: application/experiment/trial tree ----
    println!("database archive:");
    session.reset();
    for app in session.application_list().unwrap() {
        println!("└─ application: {}", app.name);
        session.set_application(app.id.unwrap());
        for exp in session.experiment_list().unwrap() {
            println!("   └─ experiment: {}", exp.name);
            session.set_experiment(exp.id.unwrap());
            for trial in session.trial_list().unwrap() {
                let fmt = trial
                    .field("source_format")
                    .and_then(|v| v.as_text().map(str::to_string))
                    .unwrap_or_default();
                println!(
                    "      └─ trial {}: {} ({} nodes, source: {fmt})",
                    trial.id.unwrap(),
                    trial.name,
                    trial
                        .field("node_count")
                        .and_then(Value::as_int)
                        .unwrap_or(0),
                );
            }
        }
    }

    // ---- the Figure-2 graph windows: per-thread bars for each trial ----
    session.reset();
    for trial in session.trial_list().unwrap() {
        let id = trial.id.unwrap();
        session.set_trial(id);
        let metric = session.metric_list().unwrap()[0].clone();
        let profile = {
            session.set_metric(metric.clone());
            session.load_profile().unwrap()
        };
        println!(
            "\ntrial {id} ({}) — metric {metric}, per-thread top event:",
            trial.name
        );
        let m = profile.find_metric(&metric).unwrap();
        for (tpos, &thread) in profile.threads().iter().enumerate() {
            // biggest exclusive event on this thread
            let mut best: Option<(&str, f64)> = None;
            for (ei, ev) in profile.events().iter().enumerate() {
                if let Some(d) = profile.interval_at(perfdmf::profile::EventId(ei), tpos, m) {
                    if let Some(x) = d.exclusive() {
                        if best.is_none_or(|(_, b)| x > b) {
                            best = Some((&ev.name, x));
                        }
                    }
                }
            }
            if let Some((name, x)) = best {
                let bar_len = ((x / 8.0).round() as usize).clamp(1, 60);
                println!(
                    "  n,c,t {:>7}  {:<24} {:>9.3} |{}",
                    thread.to_string(),
                    name,
                    x,
                    "█".repeat(bar_len)
                );
            }
        }
    }

    let _ = std::fs::remove_dir_all(&tmp);
    println!("\n(three tool formats, one archive — the Figure 2 data path)");
}
