//! Distributed tracing across the network boundary: a real
//! [`PerfdmfServer`] on a loopback port, a [`NetClient`] driving it,
//! and one merged Chrome-trace timeline showing both sides.
//!
//! 1. Seed an archive with a two-group profile and start the server.
//! 2. With the flight recorder on, send a `Ping` and a `ClusterTrial`
//!    through the client: each request's trace context rides the wire,
//!    so the server's `server.request` span (and the explorer/db work
//!    under it) joins the client's `client.request` trace.
//! 3. Print the server's resource bill for the clustering (carried on
//!    the v3 `Reply`) and the `perfdmf_requests` accounting rows.
//! 4. Partition the recorder dump into a client "process" and a server
//!    "process", export them as one merged Chrome-trace JSON
//!    (loadable in <https://ui.perfetto.dev>), and self-validate: two
//!    pids, cross-process flow arrows, and every `server.request`
//!    slice parented by a client-side slice.
//!
//! Run with: `cargo run --example trace_e2e [out.json]`

use perfdmf::core::DatabaseSession;
use perfdmf::db::Connection;
use perfdmf::explorer::{ClusterMethod, FeatureSpace, Request, Response};
use perfdmf::profile::{IntervalData, IntervalEvent, Metric, Profile, ThreadId};
use perfdmf::server::{NetClient, PerfdmfServer, ServerConfig};
use perfdmf::telemetry::{self, trace};

fn seeded_database() -> (Connection, i64) {
    let conn = Connection::open_in_memory();
    let mut session = DatabaseSession::new(conn.clone()).expect("schema");
    let mut p = Profile::new("trace-e2e");
    let m = p.add_metric(Metric::measured("TIME"));
    let a = p.add_event(IntervalEvent::ungrouped("compute"));
    let b = p.add_event(IntervalEvent::ungrouped("exchange"));
    p.add_threads((0..16).map(|n| ThreadId::new(n, 0, 0)));
    for (i, &t) in p.threads().to_vec().iter().enumerate() {
        let (ca, cb) = if i < 8 { (100.0, 5.0) } else { (10.0, 80.0) };
        let j = (i % 4) as f64 * 0.1;
        p.set_interval(a, t, m, IntervalData::new(ca + j, ca + j, 10.0, 0.0));
        p.set_interval(b, t, m, IntervalData::new(cb - j, cb - j, 10.0, 0.0));
    }
    let trial = session
        .store_profile("trace-e2e-app", "trace-e2e-exp", &p)
        .expect("store profile");
    (conn, trial)
}

fn main() {
    telemetry::set_tracing(true);

    let (conn, trial) = seeded_database();
    let server = PerfdmfServer::start_with_config(
        conn.clone(),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    println!("server listening on {}", server.addr());

    let mut client = NetClient::new(server.addr(), "trace-e2e");
    assert!(client.ping(), "ping must succeed");
    let response = client.request(Request::ClusterTrial {
        trial_id: trial,
        features: FeatureSpace::EventsOfMetric("TIME".into()),
        k: None,
        max_k: 4,
        pca_components: 0,
        method: ClusterMethod::KMeans,
    });
    let k = match response {
        Response::Clustering { k, .. } => k,
        other => panic!("clustering failed: {other:?}"),
    };
    let usage = client.last_usage().expect("v3 reply carries usage");
    println!(
        "clustered trial {trial} into k={k}; server-side bill: \
         {} rows scanned, {} chunk hits, {} chunk misses, {} pool tasks, \
         {} WAL bytes, {}ns queued, {}ns executing",
        usage.rows_scanned,
        usage.chunk_hits,
        usage.chunk_misses,
        usage.pool_tasks,
        usage.wal_bytes,
        usage.queue_wait_ns,
        usage.execute_ns
    );
    client.close();
    server.shutdown();
    telemetry::set_tracing(false);

    // --- the accounting ring, through plain SQL ---
    let rs = conn
        .query(
            "SELECT trace, kind, status, rows_scanned, execute_ns \
             FROM perfdmf_requests ORDER BY seq",
            &[],
        )
        .expect("perfdmf_requests");
    println!("\nperfdmf_requests ({} rows):", rs.rows.len());
    for row in &rs.rows {
        println!(
            "  trace={} kind={} status={} rows_scanned={} execute_ns={}",
            row[0].as_text().unwrap_or("-"),
            row[1].as_text().unwrap_or("?"),
            row[2].as_text().unwrap_or("?"),
            row[3],
            row[4]
        );
    }

    // --- merge the two sides into one Chrome-trace timeline ---
    let records = trace::recorder().dump();
    let client_traces: std::collections::BTreeSet<u64> = records
        .iter()
        .filter(|r| r.name == "client.request")
        .map(|r| r.trace)
        .collect();
    let (client_records, server_records): (Vec<_>, Vec<_>) = records
        .into_iter()
        .filter(|r| client_traces.contains(&r.trace))
        .partition(|r| r.name.starts_with("client."));
    let json = trace::export_chrome_trace_merged(&[
        trace::TraceProcess {
            pid: 1,
            name: "perfdmf-client",
            records: &client_records,
        },
        trace::TraceProcess {
            pid: 2,
            name: "perfdmf-server",
            records: &server_records,
        },
    ]);
    let out = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("perfdmf_trace_e2e_{}.json", std::process::id()))
        });
    std::fs::write(&out, &json).expect("write trace file");
    println!(
        "\nmerged chrome trace written to {} ({} client spans, {} server spans)",
        out.display(),
        client_records.len(),
        server_records.len()
    );

    // --- self-validate: one causal tree spanning two processes ---
    let client_spans: std::collections::BTreeSet<u64> =
        client_records.iter().map(|r| r.span).collect();
    let server_requests: Vec<_> = server_records
        .iter()
        .filter(|r| r.name == "server.request")
        .collect();
    assert!(
        !client_records.is_empty() && !server_records.is_empty(),
        "both processes must contribute spans"
    );
    assert!(
        !server_requests.is_empty(),
        "expected server.request spans in the merged trace"
    );
    for r in &server_requests {
        assert!(
            client_spans.contains(&r.parent),
            "server.request {:016x} not parented by a client span",
            r.span
        );
    }
    assert!(
        json.contains("\"ph\":\"s\"") && json.contains("\"ph\":\"f\""),
        "expected cross-process flow arrows"
    );
    println!("self-validation passed: one trace, two processes, flow arrows bound");
}
