/root/repo/target/debug/deps/speedup_study-6f75f897a371c2b8.d: tests/speedup_study.rs

/root/repo/target/debug/deps/speedup_study-6f75f897a371c2b8: tests/speedup_study.rs

tests/speedup_study.rs:
