//! PerfDMF common XML exchange format.
//!
//! The paper (§3.1): "Export of profile data is also supported in a common
//! XML representation." This module defines that representation for the
//! Rust implementation and provides a lossless export/import pair.
//!
//! ```xml
//! <perfdmf_profile name="trial1" source="tau">
//!   <metadata>
//!     <attribute name="problem_size" value="1024"/>
//!   </metadata>
//!   <metrics>
//!     <metric id="0" name="GET_TIME_OF_DAY" derived="false"/>
//!   </metrics>
//!   <events>
//!     <event id="0" name="main()" group="TAU_USER"/>
//!   </events>
//!   <threads>
//!     <thread node="0" context="0" thread="0"/>
//!   </threads>
//!   <interval_data>
//!     <p e="0" n="0" c="0" t="0" m="0" incl="100.25" excl="60.5"
//!        calls="1" subrs="2"/>
//!   </interval_data>
//!   <atomic_events>
//!     <aevent id="0" name="Message size" group="TAU_EVENT"/>
//!   </atomic_events>
//!   <atomic_data>
//!     <a e="0" n="0" c="0" t="0" count="4" min="8" max="1024"
//!        mean="512" stddev="430.2"/>
//!   </atomic_data>
//! </perfdmf_profile>
//! ```
//!
//! Undefined interval fields are omitted from the `<p>` element rather
//! than serialized as NaN.

use crate::error::{ImportError, Result};
use perfdmf_profile::{
    AtomicData, AtomicEvent, EventId, IntervalData, IntervalEvent, Metric, MetricId, Profile,
    ThreadId,
};
use perfdmf_xml::{Element, Writer};

const FORMAT: &str = "perfdmf-xml";

/// Serialize a profile to the PerfDMF XML exchange format.
pub fn export_xml(profile: &Profile) -> String {
    let mut out = String::with_capacity(1 << 16);
    let mut w = Writer::compact(&mut out);
    w.declaration().expect("fresh writer");
    w.begin("perfdmf_profile").expect("root");
    w.attr("name", &profile.name).expect("attr");
    w.attr("source", &profile.source_format).expect("attr");

    w.begin("metadata").expect("open");
    for (k, v) in &profile.metadata {
        w.begin("attribute").expect("open");
        w.attr("name", k).expect("attr");
        w.attr("value", v).expect("attr");
        w.end().expect("close");
    }
    w.end().expect("close");

    w.begin("metrics").expect("open");
    for (i, m) in profile.metrics().iter().enumerate() {
        w.begin("metric").expect("open");
        w.attr_fmt("id", i).expect("attr");
        w.attr("name", &m.name).expect("attr");
        w.attr("derived", if m.derived { "true" } else { "false" })
            .expect("attr");
        w.end().expect("close");
    }
    w.end().expect("close");

    w.begin("events").expect("open");
    for (i, e) in profile.events().iter().enumerate() {
        w.begin("event").expect("open");
        w.attr_fmt("id", i).expect("attr");
        w.attr("name", &e.name).expect("attr");
        w.attr("group", &e.group).expect("attr");
        w.end().expect("close");
    }
    w.end().expect("close");

    w.begin("threads").expect("open");
    for t in profile.threads() {
        w.begin("thread").expect("open");
        w.attr_fmt("node", t.node).expect("attr");
        w.attr_fmt("context", t.context).expect("attr");
        w.attr_fmt("thread", t.thread).expect("attr");
        w.end().expect("close");
    }
    w.end().expect("close");

    w.begin("interval_data").expect("open");
    for (mi, _) in profile.metrics().iter().enumerate() {
        let metric = MetricId(mi);
        for (event, thread, d) in profile.iter_metric(metric) {
            w.begin("p").expect("open");
            w.attr_fmt("e", event.0).expect("attr");
            w.attr_fmt("n", thread.node).expect("attr");
            w.attr_fmt("c", thread.context).expect("attr");
            w.attr_fmt("t", thread.thread).expect("attr");
            w.attr_fmt("m", mi).expect("attr");
            let mut put = |name: &str, v: Option<f64>| {
                if let Some(x) = v {
                    w.attr(name, &format_f64(x)).expect("attr");
                }
            };
            put("incl", d.inclusive());
            put("excl", d.exclusive());
            put("calls", d.calls());
            put("subrs", d.subroutines());
            put("inclpct", d.inclusive_percent());
            put("exclpct", d.exclusive_percent());
            put("percall", d.inclusive_per_call());
            w.end().expect("close");
        }
    }
    w.end().expect("close");

    w.begin("atomic_events").expect("open");
    for (i, ae) in profile.atomic_events().iter().enumerate() {
        w.begin("aevent").expect("open");
        w.attr_fmt("id", i).expect("attr");
        w.attr("name", &ae.name).expect("attr");
        w.attr("group", &ae.group).expect("attr");
        w.end().expect("close");
    }
    w.end().expect("close");

    w.begin("atomic_data").expect("open");
    let mut atomics: Vec<_> = profile.iter_atomic().collect();
    atomics.sort_by_key(|(e, t, _)| (e.0, *t));
    for (ae, thread, d) in atomics {
        w.begin("a").expect("open");
        w.attr_fmt("e", ae.0).expect("attr");
        w.attr_fmt("n", thread.node).expect("attr");
        w.attr_fmt("c", thread.context).expect("attr");
        w.attr_fmt("t", thread.thread).expect("attr");
        w.attr_fmt("count", d.count).expect("attr");
        w.attr("min", &format_f64(d.min)).expect("attr");
        w.attr("max", &format_f64(d.max)).expect("attr");
        w.attr("mean", &format_f64(d.mean)).expect("attr");
        w.attr("stddev", &format_f64(d.stddev().unwrap_or(0.0)))
            .expect("attr");
        w.end().expect("close");
    }
    w.end().expect("close");

    w.end().expect("root close");
    w.finish().expect("balanced");
    out
}

/// Format a float so it round-trips exactly through text.
fn format_f64(x: f64) -> String {
    // `{}` on f64 is shortest-representation and round-trips.
    format!("{x}")
}

/// Parse the PerfDMF XML exchange format into a [`Profile`].
pub fn import_xml(text: &str) -> Result<Profile> {
    let doc = Element::parse(text)?;
    if doc.name != "perfdmf_profile" {
        return Err(ImportError::format(
            FORMAT,
            0,
            format!("unexpected root <{}>", doc.name),
        ));
    }
    let mut profile = Profile::new(doc.attr("name").unwrap_or(""));
    profile.source_format = doc.attr("source").unwrap_or("perfdmf-xml").to_string();

    if let Some(md) = doc.child("metadata") {
        for a in md.children_named("attribute") {
            profile.metadata.push((
                a.require_attr("name")?.to_string(),
                a.attr("value").unwrap_or("").to_string(),
            ));
        }
    }

    let mut metric_ids: Vec<MetricId> = Vec::new();
    if let Some(ms) = doc.child("metrics") {
        for m in ms.children_named("metric") {
            let name = m.require_attr("name")?;
            let derived = m.attr("derived") == Some("true");
            let metric = if derived {
                Metric::derived(name)
            } else {
                Metric::measured(name)
            };
            metric_ids.push(profile.add_metric(metric));
        }
    }
    let mut event_ids: Vec<EventId> = Vec::new();
    if let Some(es) = doc.child("events") {
        for e in es.children_named("event") {
            event_ids.push(profile.add_event(IntervalEvent::new(
                e.require_attr("name")?,
                e.attr("group").unwrap_or("TAU_DEFAULT"),
            )));
        }
    }
    if let Some(ts) = doc.child("threads") {
        let threads: Vec<ThreadId> = ts
            .children_named("thread")
            .map(|t| -> Result<ThreadId> {
                Ok(ThreadId::new(
                    parse_attr(t, "node")?,
                    parse_attr(t, "context")?,
                    parse_attr(t, "thread")?,
                ))
            })
            .collect::<Result<_>>()?;
        profile.add_threads(threads);
    }

    if let Some(ps) = doc.child("interval_data") {
        for p in ps.children_named("p") {
            let e: usize = parse_attr(p, "e")?;
            let m: usize = parse_attr(p, "m")?;
            let thread = ThreadId::new(
                parse_attr(p, "n")?,
                parse_attr(p, "c")?,
                parse_attr(p, "t")?,
            );
            let event = *event_ids.get(e).ok_or_else(|| {
                ImportError::format(FORMAT, 0, format!("event id {e} out of range"))
            })?;
            let metric = *metric_ids.get(m).ok_or_else(|| {
                ImportError::format(FORMAT, 0, format!("metric id {m} out of range"))
            })?;
            let get = |name: &str| -> Result<f64> {
                match p.attr(name) {
                    None => Ok(f64::NAN),
                    Some(s) => s.parse().map_err(|_| {
                        ImportError::format(FORMAT, 0, format!("bad float in attribute {name}"))
                    }),
                }
            };
            let mut d = IntervalData::new(get("incl")?, get("excl")?, get("calls")?, get("subrs")?);
            d.inclusive_percent = get("inclpct")?;
            d.exclusive_percent = get("exclpct")?;
            d.inclusive_per_call = get("percall")?;
            profile.set_interval(event, thread, metric, d);
        }
    }

    let mut atomic_ids = Vec::new();
    if let Some(aes) = doc.child("atomic_events") {
        for ae in aes.children_named("aevent") {
            atomic_ids.push(profile.add_atomic_event(AtomicEvent::new(
                ae.require_attr("name")?,
                ae.attr("group").unwrap_or("TAU_EVENT"),
            )));
        }
    }
    if let Some(ads) = doc.child("atomic_data") {
        for a in ads.children_named("a") {
            let e: usize = parse_attr(a, "e")?;
            let thread = ThreadId::new(
                parse_attr(a, "n")?,
                parse_attr(a, "c")?,
                parse_attr(a, "t")?,
            );
            let id = *atomic_ids.get(e).ok_or_else(|| {
                ImportError::format(FORMAT, 0, format!("atomic event id {e} out of range"))
            })?;
            let count: u64 = parse_attr(a, "count")?;
            let min: f64 = parse_attr(a, "min")?;
            let max: f64 = parse_attr(a, "max")?;
            let mean: f64 = parse_attr(a, "mean")?;
            let stddev: f64 = parse_attr(a, "stddev")?;
            profile.set_atomic(
                id,
                thread,
                AtomicData::from_summary(count, min, max, mean, stddev),
            );
        }
    }
    Ok(profile)
}

fn parse_attr<T: std::str::FromStr>(e: &Element, name: &str) -> Result<T> {
    e.require_attr(name)?
        .parse()
        .map_err(|_| ImportError::format(FORMAT, 0, format!("bad value for attribute {name}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> Profile {
        let mut p = Profile::new("trial<1>");
        p.source_format = "tau".into();
        p.metadata.push(("problem_size".into(), "1024".into()));
        let time = p.add_metric(Metric::measured("GET_TIME_OF_DAY"));
        let fp = p.add_metric(Metric::derived("FLOPS"));
        let main = p.add_event(IntervalEvent::new("main()", "TAU_USER"));
        let send = p.add_event(IntervalEvent::new("MPI_Send()", "MPI"));
        p.add_threads([ThreadId::new(0, 0, 0), ThreadId::new(1, 0, 0)]);
        for (i, t) in [ThreadId::new(0, 0, 0), ThreadId::new(1, 0, 0)]
            .into_iter()
            .enumerate()
        {
            p.set_interval(
                main,
                t,
                time,
                IntervalData::new(100.0 + i as f64, 60.0, 1.0, 2.0),
            );
            p.set_interval(send, t, time, IntervalData::new(40.0, 40.0, 10.0, 0.0));
            p.set_interval(main, t, fp, IntervalData::new(1e9, 5e8, 1.0, 2.0));
        }
        p.recompute_derived_fields(time);
        let ae = p.add_atomic_event(AtomicEvent::new("Message size", "TAU_EVENT"));
        let mut ad = AtomicData::new();
        for x in [8.0, 512.0, 1024.0] {
            ad.record(x);
        }
        p.set_atomic(ae, ThreadId::new(1, 0, 0), ad);
        p
    }

    #[test]
    fn export_import_roundtrip() {
        let p = sample_profile();
        let xml = export_xml(&p);
        let back = import_xml(&xml).unwrap();
        assert_eq!(back.name, p.name);
        assert_eq!(back.source_format, "tau");
        assert_eq!(back.metadata, p.metadata);
        assert_eq!(back.metrics(), p.metrics());
        assert_eq!(back.events(), p.events());
        assert_eq!(back.threads(), p.threads());
        assert_eq!(back.data_point_count(), p.data_point_count());
        // spot-check exact value and derived-percent preservation
        let m = back.find_metric("GET_TIME_OF_DAY").unwrap();
        let e = back.find_event("main()").unwrap();
        let t1 = ThreadId::new(1, 0, 0);
        let orig = p
            .interval(
                p.find_event("main()").unwrap(),
                t1,
                p.find_metric("GET_TIME_OF_DAY").unwrap(),
            )
            .unwrap();
        let got = back.interval(e, t1, m).unwrap();
        assert_eq!(got.inclusive(), orig.inclusive());
        assert_eq!(got.inclusive_percent(), orig.inclusive_percent());
        // atomic data
        let ae = back.find_atomic_event("Message size").unwrap();
        let a = back.atomic(ae, t1).unwrap();
        assert_eq!(a.count, 3);
        assert_eq!(a.max, 1024.0);
        let orig_a = p
            .atomic(p.find_atomic_event("Message size").unwrap(), t1)
            .unwrap();
        assert!((a.stddev().unwrap() - orig_a.stddev().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn undefined_fields_survive_roundtrip() {
        let mut p = Profile::new("u");
        let m = p.add_metric(Metric::measured("X"));
        let e = p.add_event(IntervalEvent::ungrouped("f"));
        p.add_thread(ThreadId::ZERO);
        // only exclusive defined
        let d = IntervalData {
            exclusive: 5.0,
            ..Default::default()
        };
        p.set_interval(e, ThreadId::ZERO, m, d);
        let back = import_xml(&export_xml(&p)).unwrap();
        let got = back
            .interval(
                back.find_event("f").unwrap(),
                ThreadId::ZERO,
                back.find_metric("X").unwrap(),
            )
            .unwrap();
        assert_eq!(got.exclusive(), Some(5.0));
        assert_eq!(got.inclusive(), None);
        assert_eq!(got.calls(), None);
    }

    #[test]
    fn extreme_floats_roundtrip_exactly() {
        let mut p = Profile::new("x");
        let m = p.add_metric(Metric::measured("V"));
        let e = p.add_event(IntervalEvent::ungrouped("f"));
        p.add_thread(ThreadId::ZERO);
        let v = 0.1 + 0.2; // classic non-representable sum
        p.set_interval(e, ThreadId::ZERO, m, IntervalData::new(v, 1e-308, 3.0, 0.0));
        let back = import_xml(&export_xml(&p)).unwrap();
        let got = back
            .interval(
                back.find_event("f").unwrap(),
                ThreadId::ZERO,
                back.find_metric("V").unwrap(),
            )
            .unwrap();
        assert_eq!(got.inclusive(), Some(v));
        assert_eq!(got.exclusive(), Some(1e-308));
    }

    #[test]
    fn rejects_wrong_root_and_bad_ids() {
        assert!(import_xml("<nope/>").is_err());
        let bad = r#"<perfdmf_profile name="x" source="y">
            <metrics><metric id="0" name="M" derived="false"/></metrics>
            <events><event id="0" name="E" group="G"/></events>
            <threads><thread node="0" context="0" thread="0"/></threads>
            <interval_data><p e="7" n="0" c="0" t="0" m="0" incl="1"/></interval_data>
        </perfdmf_profile>"#;
        assert!(import_xml(bad).is_err());
    }
}
