//! A small tree API over the pull parser, for documents where random access
//! beats streaming (e.g. psrun profiles, which are a few kilobytes).

use crate::error::{Error, Result};
use crate::reader::{Event, Reader};
use crate::writer::Writer;

/// A parsed XML element: name, attributes, child elements, and text.
///
/// Text from all text/CDATA nodes directly under the element is concatenated
/// into `text_content`; mixed-content ordering is not preserved (profile
/// formats never rely on it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Element name, with any namespace prefix verbatim.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<Element>,
    /// Concatenated text content (entities resolved).
    pub text_content: String,
}

impl Element {
    /// Create an empty element with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
            text_content: String::new(),
        }
    }

    /// Parse a complete document and return its root element.
    pub fn parse(src: &str) -> Result<Element> {
        let mut reader = Reader::new(src);
        loop {
            match reader.next_event()? {
                Event::Start { name, attributes } => {
                    let mut root = Element {
                        name,
                        attributes: attributes.into_iter().map(|a| (a.name, a.value)).collect(),
                        children: Vec::new(),
                        text_content: String::new(),
                    };
                    Self::fill(&mut root, &mut reader)?;
                    return Ok(root);
                }
                Event::Empty { name, attributes } => {
                    return Ok(Element {
                        name,
                        attributes: attributes.into_iter().map(|a| (a.name, a.value)).collect(),
                        children: Vec::new(),
                        text_content: String::new(),
                    })
                }
                Event::Declaration { .. }
                | Event::Comment(_)
                | Event::ProcessingInstruction { .. }
                | Event::Text(_) => continue,
                Event::CData(_) => continue,
                Event::End { name } => {
                    return Err(Error::Syntax {
                        message: format!("unexpected </{name}> before root"),
                        offset: reader.offset(),
                    })
                }
                Event::Eof => {
                    return Err(Error::UnexpectedEof {
                        context: "document root element",
                    })
                }
            }
        }
    }

    fn fill(parent: &mut Element, reader: &mut Reader<'_>) -> Result<()> {
        loop {
            match reader.next_event()? {
                Event::Start { name, attributes } => {
                    let mut child = Element {
                        name,
                        attributes: attributes.into_iter().map(|a| (a.name, a.value)).collect(),
                        children: Vec::new(),
                        text_content: String::new(),
                    };
                    Self::fill(&mut child, reader)?;
                    parent.children.push(child);
                }
                Event::Empty { name, attributes } => {
                    parent.children.push(Element {
                        name,
                        attributes: attributes.into_iter().map(|a| (a.name, a.value)).collect(),
                        children: Vec::new(),
                        text_content: String::new(),
                    });
                }
                Event::Text(t) => parent.text_content.push_str(&t),
                Event::CData(t) => parent.text_content.push_str(&t),
                Event::End { .. } => return Ok(()),
                Event::Comment(_) | Event::ProcessingInstruction { .. } => {}
                Event::Declaration { .. } => {
                    return Err(Error::Syntax {
                        message: "XML declaration inside element".into(),
                        offset: reader.offset(),
                    })
                }
                Event::Eof => {
                    return Err(Error::UnexpectedEof {
                        context: "element content",
                    })
                }
            }
        }
    }

    /// Look up an attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Required attribute, as an error otherwise.
    pub fn require_attr(&self, name: &str) -> Result<&str> {
        self.attr(name).ok_or_else(|| Error::Syntax {
            message: format!(
                "element <{}> missing required attribute {name:?}",
                self.name
            ),
            offset: 0,
        })
    }

    /// First child element with the given name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All child elements with the given name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Trimmed text content.
    pub fn text(&self) -> &str {
        self.text_content.trim()
    }

    /// Trimmed text content of a named child, if present.
    pub fn child_text(&self, name: &str) -> Option<&str> {
        self.child(name).map(|c| c.text())
    }

    /// Set (or replace) an attribute; builder style.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        let name = name.into();
        if let Some(slot) = self.attributes.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value.into();
        } else {
            self.attributes.push((name, value.into()));
        }
        self
    }

    /// Append a child; builder style.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(child);
        self
    }

    /// Set text content; builder style.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.text_content = text.into();
        self
    }

    /// Serialize this element (and its subtree) as a document.
    pub fn to_xml(&self, pretty: bool) -> String {
        let mut out = String::new();
        {
            let mut w = if pretty {
                Writer::new(&mut out)
            } else {
                Writer::compact(&mut out)
            };
            w.declaration().expect("fresh writer");
            self.write_into(&mut w).expect("string sink cannot fail");
            w.finish().expect("balanced");
        }
        out
    }

    fn write_into(&self, w: &mut Writer<'_>) -> Result<()> {
        w.begin(&self.name)?;
        for (n, v) in &self.attributes {
            w.attr(n, v)?;
        }
        if !self.text_content.is_empty() {
            w.text(&self.text_content)?;
        }
        for c in &self.children {
            c.write_into(w)?;
        }
        w.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_navigate() {
        let doc = Element::parse(
            r#"<hwpcprofile><hwpcevent name="PAPI_FP_OPS">12345</hwpcevent>
               <hwpcevent name="PAPI_TOT_CYC">99</hwpcevent></hwpcprofile>"#,
        )
        .unwrap();
        assert_eq!(doc.name, "hwpcprofile");
        assert_eq!(doc.children.len(), 2);
        let evs: Vec<_> = doc.children_named("hwpcevent").collect();
        assert_eq!(evs[0].attr("name"), Some("PAPI_FP_OPS"));
        assert_eq!(evs[0].text(), "12345");
        assert_eq!(doc.child("missing"), None);
    }

    #[test]
    fn builder_roundtrip() {
        let e = Element::new("trial")
            .with_attr("name", "t&1")
            .with_child(Element::new("metric").with_text("WALL_CLOCK"))
            .with_child(Element::new("count").with_text("3"));
        let compact = e.to_xml(false);
        assert_eq!(Element::parse(&compact).unwrap(), e);
        // Pretty output inserts indentation whitespace between child
        // elements; it parses back equal once whitespace-only text is pruned.
        let xml = e.to_xml(true);
        let mut back = Element::parse(&xml).unwrap();
        fn prune_ws(e: &mut Element) {
            if e.text_content.trim().is_empty() {
                e.text_content.clear();
            }
            for c in &mut e.children {
                prune_ws(c);
            }
        }
        prune_ws(&mut back);
        assert_eq!(back, e);
    }

    #[test]
    fn require_attr_errors() {
        let e = Element::new("x");
        assert!(e.require_attr("y").is_err());
    }

    #[test]
    fn cdata_contributes_text() {
        let doc = Element::parse("<a>pre<![CDATA[ <raw> ]]>post</a>").unwrap();
        assert_eq!(doc.text_content, "pre <raw> post");
    }

    #[test]
    fn skips_prolog_noise() {
        let doc = Element::parse(
            "<?xml version=\"1.0\"?>\n<!-- header -->\n<?pi data?>\n<root x=\"1\"/>",
        )
        .unwrap();
        assert_eq!(doc.name, "root");
        assert_eq!(doc.attr("x"), Some("1"));
    }
}
