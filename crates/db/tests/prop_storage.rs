//! Property tests for the WAL/snapshot binary encoding layer.
//!
//! The crash-consistency harness (`crash_consistency.rs`) checks that
//! recovery interprets what is on disk correctly; these tests check the
//! layer below it — that every value and WAL record survives an
//! encode/decode round trip bit-exactly, and that decoding truncated or
//! corrupted bytes returns `DbError::Corrupt` rather than panicking.

use perfdmf_db::storage::{decode_record, encode_record, get_value, put_value, WalRecord};
use perfdmf_db::{ColumnDef, DataType, Row, TableSchema, Value};
use proptest::prelude::*;

/// Arbitrary values, biased toward encoding edge cases: NaN and the
/// infinities, negative zero, empty strings, and empty blobs.
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        prop_oneof![
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
            Just(-0.0f64),
            Just(f64::MIN_POSITIVE),
            any::<f64>(),
        ]
        .prop_map(Value::Float),
        prop_oneof![Just(String::new()), "[ -~]{0,48}".prop_map(String::from)]
            .prop_map(|s: String| Value::Text(s.into())),
        any::<bool>().prop_map(Value::Bool),
        proptest::collection::vec(any::<u8>(), 0..256).prop_map(Value::Bytes),
    ]
}

fn arb_row() -> impl Strategy<Value = Row> {
    proptest::collection::vec(arb_value(), 0..6)
}

fn arb_data_type() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::Integer),
        Just(DataType::Double),
        Just(DataType::Text),
        Just(DataType::Boolean),
        Just(DataType::Blob),
    ]
}

/// `(type, not_null, unique, default)` where the default, when present,
/// coerces to the column type (a `TableSchema::validate` requirement).
fn arb_column_parts() -> impl Strategy<Value = (DataType, bool, bool, Option<Value>)> {
    (
        arb_data_type(),
        any::<bool>(),
        any::<bool>(),
        0u8..3,
        any::<i64>(),
    )
        .prop_map(|(ty, not_null, unique, kind, seed)| {
            let default = match kind {
                0 => None,
                1 => Some(Value::Null),
                _ => Some(match ty {
                    DataType::Integer => Value::Int(seed),
                    DataType::Double => Value::Float(seed as f64 / 3.0),
                    DataType::Text => Value::Text(format!("d{seed}").into()),
                    DataType::Boolean => Value::Bool(seed % 2 == 0),
                    DataType::Blob => Value::Bytes(seed.to_le_bytes().to_vec()),
                }),
            };
            (ty, not_null, unique, default)
        })
}

fn arb_schema() -> impl Strategy<Value = TableSchema> {
    proptest::collection::vec(arb_column_parts(), 1..5).prop_map(|parts| {
        let columns = parts
            .into_iter()
            .enumerate()
            .map(|(i, (ty, not_null, unique, default))| {
                let mut c = ColumnDef::new(format!("c{i}"), ty);
                c.not_null = not_null;
                c.unique = unique;
                c.default = default;
                c
            })
            .collect();
        TableSchema::new("t", columns).expect("generated schema is valid")
    })
}

fn arb_record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        ("[a-z_]{1,12}", any::<u64>(), arb_row())
            .prop_map(|(table, id, row)| { WalRecord::Insert { table, id, row } }),
        ("[a-z_]{1,12}", any::<u64>()).prop_map(|(table, id)| WalRecord::Delete { table, id }),
        ("[a-z_]{1,12}", any::<u64>(), arb_row())
            .prop_map(|(table, id, row)| { WalRecord::Update { table, id, row } }),
        arb_schema().prop_map(|schema| WalRecord::CreateTable { schema }),
        "[a-z_]{1,12}".prop_map(|name| WalRecord::DropTable { name }),
        ("[a-z_]{1,12}", arb_column_parts()).prop_map(|(table, (ty, not_null, _, default))| {
            let mut column = ColumnDef::new("added", ty);
            column.not_null = not_null;
            column.default = default;
            WalRecord::AddColumn { table, column }
        }),
        ("[a-z_]{1,12}", "[a-z_]{1,12}")
            .prop_map(|(table, column)| WalRecord::DropColumn { table, column }),
        (
            "[a-z_]{1,12}",
            "[a-z_]{1,12}",
            "[a-z_]{1,12}",
            any::<bool>()
        )
            .prop_map(|(table, name, column, unique)| WalRecord::CreateIndex {
                table,
                name,
                column,
                unique,
            }),
        ("[a-z_]{1,12}", "[a-z_]{1,12}")
            .prop_map(|(table, name)| WalRecord::DropIndex { table, name }),
        Just(WalRecord::Commit),
    ]
}

proptest! {
    /// Every value round-trips bit-exactly (NaN compares equal through
    /// `Value`'s total-order float comparison) and consumes exactly the
    /// bytes it wrote.
    #[test]
    fn value_roundtrip(v in arb_value()) {
        let mut buf = Vec::new();
        put_value(&mut buf, &v);
        let mut slice = buf.as_slice();
        let back = get_value(&mut slice).expect("decode");
        prop_assert_eq!(&back, &v);
        prop_assert!(slice.is_empty(), "decode left {} trailing bytes", slice.len());
    }

    /// Sequences of values survive concatenated encoding.
    #[test]
    fn value_sequence_roundtrip(vals in proptest::collection::vec(arb_value(), 0..20)) {
        let mut buf = Vec::new();
        for v in &vals {
            put_value(&mut buf, v);
        }
        let mut slice = buf.as_slice();
        let mut back = Vec::new();
        for _ in 0..vals.len() {
            back.push(get_value(&mut slice).expect("decode"));
        }
        prop_assert_eq!(back, vals);
        prop_assert!(slice.is_empty());
    }

    /// Every strict prefix of an encoded value fails to decode with an
    /// error — never a panic, never a silently wrong value.
    #[test]
    fn truncated_value_is_an_error(v in arb_value()) {
        let mut buf = Vec::new();
        put_value(&mut buf, &v);
        for len in 0..buf.len() {
            let mut slice = &buf[..len];
            prop_assert!(get_value(&mut slice).is_err(), "prefix {len} of {} decoded", buf.len());
        }
    }

    /// Every WAL record round-trips through its payload encoding.
    #[test]
    fn record_roundtrip(rec in arb_record()) {
        let bytes = encode_record(&rec);
        let back = decode_record(&bytes).expect("decode");
        prop_assert_eq!(back, rec);
    }

    /// Every strict prefix of an encoded record fails to decode.
    #[test]
    fn truncated_record_is_an_error(rec in arb_record()) {
        let bytes = encode_record(&rec);
        for len in 0..bytes.len() {
            prop_assert!(decode_record(&bytes[..len]).is_err());
        }
    }

    /// Single-byte corruption anywhere in a record either decodes to
    /// some record or errors — it must never panic. (A flipped byte in
    /// a text field is still a valid record, so no Err assertion.)
    #[test]
    fn corrupted_record_never_panics(rec in arb_record(), pos_seed in any::<u64>(), bit in 0u8..8) {
        let mut bytes = encode_record(&rec);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        let _ = decode_record(&bytes);
    }
}

/// The wire format length-prefixes blobs with a `u32`; a blob at the
/// largest size the engine realistically stores (16 MiB here — the
/// whole-profile XML blobs of the paper's schema) must round-trip
/// intact. Kept deterministic and single-shot: at this size a proptest
/// sweep would dominate suite runtime.
#[test]
fn max_length_blob_roundtrips() {
    let blob: Vec<u8> = (0..16 * 1024 * 1024u32)
        .map(|i| (i * 31 + 7) as u8)
        .collect();
    let v = Value::Bytes(blob);
    let mut buf = Vec::new();
    put_value(&mut buf, &v);
    let mut slice = buf.as_slice();
    let back = get_value(&mut slice).expect("decode");
    assert!(slice.is_empty());
    assert_eq!(back, v);

    // And inside a full WAL record.
    let rec = WalRecord::Insert {
        table: "trial".into(),
        id: 42,
        row: vec![Value::Int(1), v, Value::Text("".into())],
    };
    assert_eq!(decode_record(&encode_record(&rec)).expect("decode"), rec);
}

/// Max-length text (same length-prefix path as blobs, plus the UTF-8
/// validation step).
#[test]
fn long_text_roundtrips() {
    let text = "pérf-δmf ".repeat(200_000);
    let v = Value::Text(text.into());
    let mut buf = Vec::new();
    put_value(&mut buf, &v);
    let mut slice = buf.as_slice();
    assert_eq!(get_value(&mut slice).expect("decode"), v);
    assert!(slice.is_empty());
}
