//! Offline shim for the `criterion` crate.
//!
//! Implements the API subset the bench suite uses — `Criterion`,
//! `benchmark_group`/`bench_function`/`bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!`/
//! `criterion_main!` macros — over a simple wall-clock harness: warm up
//! briefly, time a calibrated batch, print mean time per iteration (plus
//! derived throughput when declared). No statistics, plots, or baseline
//! comparison.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared work per iteration, used to derive a throughput line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only id (the group name supplies the function part).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to bench closures; `iter` times the hot loop.
pub struct Bencher {
    /// Mean duration of one iteration, filled in by [`Bencher::iter`].
    mean: Duration,
}

impl Bencher {
    /// Measure `routine`: short warmup, then a calibrated timed batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: run until ~20ms elapse.
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_start.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed() / calib_iters.max(1) as u32;

        // Timed batch: aim for ~200ms, capped to keep huge workloads sane.
        let target = Duration::from_millis(200);
        let iters = if per_iter.is_zero() {
            1000
        } else {
            (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000) as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean = start.elapsed() / iters as u32;
    }
}

fn report(group: Option<&str>, id: &str, mean: Duration, throughput: Option<Throughput>) {
    let name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut line = format!("bench: {name:<48} {:>12.3?}/iter", mean);
    if let Some(tp) = throughput {
        let secs = mean.as_secs_f64();
        if secs > 0.0 {
            match tp {
                Throughput::Elements(n) => {
                    let _ = write!(line, "  {:>12.0} elem/s", n as f64 / secs);
                }
                Throughput::Bytes(n) => {
                    let _ = write!(line, "  {:>12.1} MiB/s", n as f64 / secs / (1 << 20) as f64);
                }
            }
        }
    }
    println!("{line}");
}

/// A named set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; this harness auto-calibrates.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declare per-iteration work; reported as a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            mean: Duration::ZERO,
        };
        f(&mut b);
        report(Some(&self.name), &id.id, b.mean, self.throughput);
        self
    }

    /// Run one benchmark with an explicit input handle.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            mean: Duration::ZERO,
        };
        f(&mut b, input);
        report(Some(&self.name), &id.id, b.mean, self.throughput);
        self
    }

    /// End the group (results were already printed per-bench).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            mean: Duration::ZERO,
        };
        f(&mut b);
        report(None, &id.id, b.mean, None);
        self
    }
}

/// Bundle bench functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(10).throughput(Throughput::Elements(64));
        group.bench_function(BenchmarkId::from_parameter(64), |b| {
            b.iter(|| (0..64u64).map(black_box).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
