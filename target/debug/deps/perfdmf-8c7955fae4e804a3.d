/root/repo/target/debug/deps/perfdmf-8c7955fae4e804a3.d: src/bin/perfdmf.rs

/root/repo/target/debug/deps/perfdmf-8c7955fae4e804a3: src/bin/perfdmf.rs

src/bin/perfdmf.rs:
