/root/repo/target/debug/deps/sql_suite-0d86407d915542d9.d: crates/db/tests/sql_suite.rs

/root/repo/target/debug/deps/sql_suite-0d86407d915542d9: crates/db/tests/sql_suite.rs

crates/db/tests/sql_suite.rs:
