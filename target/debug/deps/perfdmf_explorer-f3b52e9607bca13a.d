/root/repo/target/debug/deps/perfdmf_explorer-f3b52e9607bca13a.d: crates/explorer/src/lib.rs crates/explorer/src/client.rs crates/explorer/src/protocol.rs crates/explorer/src/server.rs

/root/repo/target/debug/deps/perfdmf_explorer-f3b52e9607bca13a: crates/explorer/src/lib.rs crates/explorer/src/client.rs crates/explorer/src/protocol.rs crates/explorer/src/server.rs

crates/explorer/src/lib.rs:
crates/explorer/src/client.rs:
crates/explorer/src/protocol.rs:
crates/explorer/src/server.rs:
