//! The logical-plan IR: an explicit operator tree lowered from a parsed
//! `SELECT`, rewritten by the rule-based optimizer ([`super::rules`]),
//! annotated with a physical access decision per scan ([`super::cost`]),
//! and finally walked by the executor and EXPLAIN renderer.
//!
//! The tree is left-deep: the right side of every [`LogicalPlan::Join`]
//! is a [`ScanNode`], mirroring the executor's accumulate-left join
//! pipeline. Lowering produces the canonical operator order
//!
//! ```text
//! Limit ( Distinct ( Sort ( Project ( [Aggregate] ( [Filter] ( joins/Scan ))))))
//! ```
//!
//! with optional nodes present only when the query uses them. Rules
//! rewrite the tree in place (fusing filters into scans, eliding sorts,
//! masking columns) but never change that spine ordering, so the
//! executor can decompose the tail with simple pattern matches.

use crate::database::Database;
use crate::error::{DbError, Result};
use crate::exec::select::{resolve_table, IndexChoice, TableSource};
use crate::exec::vector;
use crate::sql::ast::{Expr, JoinKind, OrderItem, Projection, Select, TableRef};

/// How a [`ScanNode`] reads its table — the physical access decision
/// folded out of the old per-statement heuristics in `exec/select.rs`.
pub(crate) enum Access {
    /// Full scan in ascending row-id order (parallel when the pool and
    /// row count justify it).
    Seq,
    /// Candidate row ids from a secondary index, with the statistics
    /// that justified the choice (rendered by EXPLAIN).
    Index(IndexChoice),
    /// Full scan in ascending *key* order of an index: NULL-key rows
    /// first (in row-id order), then `scan_asc`. Because ids are stored
    /// ascending within each key and `Value::total_cmp` sorts NULL
    /// first, this order is exactly the stable `ORDER BY col ASC` order
    /// — which is what lets the sort-elision rule remove the Sort node.
    IndexOrder { index_name: String, column: String },
    /// Vectorized aggregate kernels over column chunks; carries the
    /// compiled plan plus the statistics that justified it.
    Columnar {
        plan: Box<vector::ColumnarPlan>,
        reason: String,
    },
}

/// A table scan: the resolved source plus everything the optimizer has
/// pushed into it (predicates, column masks, an early-exit bound) and
/// the access method the cost pass decided on.
pub(crate) struct ScanNode<'a> {
    /// The resolved table (borrowed base table or owned per-statement
    /// virtual materialization).
    pub source: TableSource<'a>,
    /// Display name from the FROM clause (EXPLAIN uses this).
    pub table_name: String,
    /// Effective binding name (alias or table name).
    pub binding: String,
    /// Column names of the table, in schema order.
    pub columns: Vec<String>,
    /// The full WHERE clause as an index-selection hint. This is not a
    /// rewrite: index selection is a physical access decision and stays
    /// active even with the optimizer off, matching the pre-IR engine.
    pub index_filter: Option<Expr>,
    /// Conjuncts the predicate-pushdown / limit-pushdown rules moved
    /// into the scan, evaluated on the unmasked row while scanning.
    pub pushed: Vec<Expr>,
    /// Per-column keep flags from projection pruning (`None` keeps all).
    pub mask: Option<Vec<bool>>,
    /// Early-exit bound from LIMIT pushdown: stop after this many
    /// matching rows.
    pub stop_after: Option<usize>,
    /// The physical access decision (set by [`super::cost`]).
    pub access: Access,
}

impl ScanNode<'_> {
    /// Single-binding layout of this scan's output.
    pub fn layout1(&self) -> crate::exec::eval::Layout {
        crate::exec::eval::Layout::single(self.binding.clone(), self.columns.clone())
    }
}

/// The logical plan tree.
pub(crate) enum LogicalPlan<'a> {
    /// `SELECT` without FROM: one empty row.
    Empty,
    Scan(Box<ScanNode<'a>>),
    Join {
        left: Box<LogicalPlan<'a>>,
        right: Box<ScanNode<'a>>,
        kind: JoinKind,
        on: Option<Expr>,
    },
    Filter {
        input: Box<LogicalPlan<'a>>,
        predicate: Expr,
    },
    Aggregate {
        input: Box<LogicalPlan<'a>>,
        group_by: Vec<Expr>,
        having: Option<Expr>,
    },
    Project {
        input: Box<LogicalPlan<'a>>,
        projections: Vec<Projection>,
    },
    Distinct {
        input: Box<LogicalPlan<'a>>,
    },
    Sort {
        input: Box<LogicalPlan<'a>>,
        keys: Vec<OrderItem>,
    },
    Limit {
        input: Box<LogicalPlan<'a>>,
        limit: Option<u64>,
        offset: Option<u64>,
    },
}

/// One fired rewrite, recorded for EXPLAIN's rule trail.
pub(crate) struct TrailEntry {
    pub rule: &'static str,
    pub detail: String,
}

/// A fully planned SELECT: the optimized tree plus the rule trail.
pub(crate) struct PlannedSelect<'a> {
    pub root: LogicalPlan<'a>,
    pub trail: Vec<TrailEntry>,
    /// True when `PERFDMF_OPTIMIZER` (or a thread override) disabled
    /// every rewrite rule; EXPLAIN reports it.
    pub optimizer_off: bool,
}

fn scan_node<'a>(db: &'a Database, tref: &TableRef) -> Result<ScanNode<'a>> {
    let source = resolve_table(db, &tref.table)?;
    let columns: Vec<String> = source
        .schema
        .columns
        .iter()
        .map(|c| c.name.clone())
        .collect();
    Ok(ScanNode {
        source,
        table_name: tref.table.clone(),
        binding: tref.effective_name().to_string(),
        columns,
        index_filter: None,
        pushed: Vec::new(),
        mask: None,
        stop_after: None,
        access: Access::Seq,
    })
}

/// Lower a parsed `SELECT` into the canonical plan tree. Validation that
/// used to happen mid-execution (duplicate bindings, `JOIN` without
/// `ON`, aggregates in WHERE) now happens here, before any rows move.
pub(crate) fn lower<'a>(db: &'a Database, sel: &Select) -> Result<LogicalPlan<'a>> {
    let mut node = match &sel.from {
        None => LogicalPlan::Empty,
        Some(base) => {
            let base_scan = scan_node(db, base)?;
            let mut bindings = vec![base_scan.binding.clone()];
            let mut node = LogicalPlan::Scan(Box::new(base_scan));
            for join in &sel.joins {
                let right = scan_node(db, &join.table)?;
                if bindings
                    .iter()
                    .any(|b| b.eq_ignore_ascii_case(&right.binding))
                {
                    return Err(DbError::Unsupported(format!(
                        "duplicate table binding {:?} in FROM (use an alias)",
                        right.binding
                    )));
                }
                if matches!(join.kind, JoinKind::Inner | JoinKind::Left) && join.on.is_none() {
                    return Err(DbError::Unsupported("JOIN requires ON".into()));
                }
                bindings.push(right.binding.clone());
                node = LogicalPlan::Join {
                    left: Box::new(node),
                    right: Box::new(right),
                    kind: join.kind,
                    on: join.on.clone(),
                };
            }
            node
        }
    };
    if let Some(pred) = &sel.where_clause {
        if pred.contains_aggregate() {
            return Err(DbError::Eval("aggregates are not allowed in WHERE".into()));
        }
        // Index selection consults the whole WHERE; record it on the
        // base scan before the Filter node hides it.
        if let Some(scan) = base_scan_mut(&mut node) {
            scan.index_filter = Some(pred.clone());
        }
        node = LogicalPlan::Filter {
            input: Box::new(node),
            predicate: pred.clone(),
        };
    }
    let needs_aggregation = !sel.group_by.is_empty()
        || sel.having.is_some()
        || sel.projections.iter().any(|p| match p {
            Projection::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        });
    if needs_aggregation {
        node = LogicalPlan::Aggregate {
            input: Box::new(node),
            group_by: sel.group_by.clone(),
            having: sel.having.clone(),
        };
    }
    node = LogicalPlan::Project {
        input: Box::new(node),
        projections: sel.projections.clone(),
    };
    if !sel.order_by.is_empty() {
        node = LogicalPlan::Sort {
            input: Box::new(node),
            keys: sel.order_by.clone(),
        };
    }
    if sel.distinct {
        node = LogicalPlan::Distinct {
            input: Box::new(node),
        };
    }
    if sel.limit.is_some() || sel.offset.is_some() {
        node = LogicalPlan::Limit {
            input: Box::new(node),
            limit: sel.limit,
            offset: sel.offset,
        };
    }
    Ok(node)
}

/// The left-most (base) scan of a plan, if any. Walks through the
/// operator tail and down the left spine of the join chain.
pub(crate) fn base_scan_mut<'p, 'a>(node: &'p mut LogicalPlan<'a>) -> Option<&'p mut ScanNode<'a>> {
    match node {
        LogicalPlan::Scan(s) => Some(s),
        LogicalPlan::Join { left, .. } => base_scan_mut(left),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => base_scan_mut(input),
        LogicalPlan::Empty => None,
    }
}

/// Immutable counterpart of [`base_scan_mut`].
pub(crate) fn base_scan<'p, 'a>(node: &'p LogicalPlan<'a>) -> Option<&'p ScanNode<'a>> {
    match node {
        LogicalPlan::Scan(s) => Some(s),
        LogicalPlan::Join { left, .. } => base_scan(left),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => base_scan(input),
        LogicalPlan::Empty => None,
    }
}

/// True if the pipeline subtree contains a Join.
pub(crate) fn contains_join(node: &LogicalPlan<'_>) -> bool {
    match node {
        LogicalPlan::Join { .. } => true,
        LogicalPlan::Filter { input, .. } => contains_join(input),
        _ => false,
    }
}

/// Apply `f` to the pipeline subtree (everything below the
/// Limit/Distinct/Sort/Project/Aggregate tail), rebuilding the tail
/// around the result.
pub(crate) fn map_pipeline<'a>(
    node: LogicalPlan<'a>,
    f: &mut impl FnMut(LogicalPlan<'a>) -> LogicalPlan<'a>,
) -> LogicalPlan<'a> {
    match node {
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => LogicalPlan::Limit {
            input: Box::new(map_pipeline(*input, f)),
            limit,
            offset,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(map_pipeline(*input, f)),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(map_pipeline(*input, f)),
            keys,
        },
        LogicalPlan::Project { input, projections } => LogicalPlan::Project {
            input: Box::new(map_pipeline(*input, f)),
            projections,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            having,
        } => LogicalPlan::Aggregate {
            input: Box::new(map_pipeline(*input, f)),
            group_by,
            having,
        },
        pipeline => f(pipeline),
    }
}
