//! sPPM self-instrumented timing importer.
//!
//! The paper (§5.3) notes the ASCI sPPM benchmark emits its own timing
//! data, "for which a custom parser was written". sPPM's self-timing is a
//! per-rank table of routine timings:
//!
//! ```text
//! # sppm self-instrumented timing
//! # rank routine calls seconds
//! 0 hydro_sweep_x 128 10.25
//! 0 hydro_sweep_y 128 9.75
//! 1 hydro_sweep_x 128 10.50
//! ```
//!
//! Routines are flat (no nesting), so inclusive == exclusive.

use crate::error::{ImportError, Result};
use perfdmf_profile::{IntervalData, IntervalEvent, Metric, Profile, ThreadId};

const FORMAT: &str = "sppm";

/// Parse sPPM self-instrumented timing text.
pub fn parse_sppm_text(text: &str, profile: &mut Profile) -> Result<()> {
    let metric = profile.add_metric(Metric::measured("SPPM_TIME"));
    let mut rows = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(ImportError::format(
                FORMAT,
                lineno + 1,
                "expected 'rank routine calls seconds'",
            ));
        }
        let rank: u32 = fields[0]
            .parse()
            .map_err(|_| ImportError::format(FORMAT, lineno + 1, "bad rank"))?;
        let routine = fields[1];
        let calls: f64 = fields[2]
            .parse()
            .map_err(|_| ImportError::format(FORMAT, lineno + 1, "bad call count"))?;
        let secs: f64 = fields[3]
            .parse()
            .map_err(|_| ImportError::format(FORMAT, lineno + 1, "bad seconds"))?;
        let thread = ThreadId::new(rank, 0, 0);
        profile.add_thread(thread);
        let event = profile.add_event(IntervalEvent::new(routine, "SPPM"));
        profile.set_interval(
            event,
            thread,
            metric,
            IntervalData::new(secs, secs, calls, 0.0),
        );
        rows += 1;
    }
    if rows == 0 {
        return Err(ImportError::format(FORMAT, 0, "no timing rows found"));
    }
    profile.recompute_derived_fields(metric);
    Ok(())
}

/// Load an sPPM timing file.
pub fn load_sppm_file(path: &std::path::Path) -> Result<Profile> {
    let text = std::fs::read_to_string(path).map_err(|e| ImportError::io(path, e))?;
    let mut profile = Profile::new(
        path.file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default(),
    );
    profile.source_format = "sppm".into();
    parse_sppm_text(&text, &mut profile)?;
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# sppm self-instrumented timing
# rank routine calls seconds
0 hydro_sweep_x 128 10.25
0 hydro_sweep_y 128 9.75
1 hydro_sweep_x 128 10.50
";

    #[test]
    fn parses_rows() {
        let mut p = Profile::new("t");
        parse_sppm_text(SAMPLE, &mut p).unwrap();
        assert_eq!(p.threads().len(), 2);
        assert_eq!(p.events().len(), 2);
        let m = p.find_metric("SPPM_TIME").unwrap();
        let e = p.find_event("hydro_sweep_x").unwrap();
        assert_eq!(
            p.interval(e, ThreadId::new(1, 0, 0), m)
                .unwrap()
                .inclusive(),
            Some(10.5)
        );
    }

    #[test]
    fn rejects_bad_rows() {
        let mut p = Profile::new("t");
        assert!(parse_sppm_text("# only comments\n", &mut p).is_err());
        assert!(parse_sppm_text("0 routine 1\n", &mut p).is_err());
        assert!(parse_sppm_text("x routine 1 2.0\n", &mut p).is_err());
    }
}
