//! # PerfDMF (Rust)
//!
//! A from-scratch Rust reproduction of **PerfDMF**, the Performance Data
//! Management Framework described in *"Design and Implementation of a
//! Parallel Performance Data Management Framework"* (Huck, Malony, Bell,
//! Morris — ICPP 2005).
//!
//! This façade crate re-exports the workspace's public API:
//!
//! * [`profile`] — the common parallel profile data model (node / context /
//!   thread / metric / event organization).
//! * [`db`] — an embedded relational database engine (the DBMS substrate
//!   the paper places under the framework).
//! * [`import`] — translators for six profiling-tool formats plus the
//!   common XML exchange format.
//! * [`core`] — the `DataSession` query/management API and the relational
//!   schema mapping (the paper's §3.2 schema).
//! * [`analysis`] — the profile analysis toolkit (speedup, comparison,
//!   statistics, clustering, PCA).
//! * [`explorer`] — the PerfExplorer-style client/server data-mining layer.
//! * [`server`] — the fault-tolerant TCP front door (length-prefixed wire
//!   protocol, sessions, network fault injection, graceful drain); see
//!   `docs/server.md`.
//! * [`workload`] — synthetic dataset generators standing in for the
//!   paper's LLNL workloads (EVH1, sPPM, Miranda).
//! * [`xml`] — the XML substrate.
//! * [`telemetry`] — the framework's own instrumentation layer (spans,
//!   counters, histograms, structured events, self-profiling export);
//!   see `docs/observability.md`.

pub use perfdmf_analysis as analysis;
pub use perfdmf_core as core;
pub use perfdmf_db as db;
pub use perfdmf_explorer as explorer;
pub use perfdmf_import as import;
pub use perfdmf_profile as profile;
pub use perfdmf_server as server;
pub use perfdmf_telemetry as telemetry;
pub use perfdmf_workload as workload;
pub use perfdmf_xml as xml;
