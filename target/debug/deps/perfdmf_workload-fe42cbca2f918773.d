/root/repo/target/debug/deps/perfdmf_workload-fe42cbca2f918773.d: crates/workload/src/lib.rs crates/workload/src/models.rs crates/workload/src/writers.rs Cargo.toml

/root/repo/target/debug/deps/libperfdmf_workload-fe42cbca2f918773.rmeta: crates/workload/src/lib.rs crates/workload/src/models.rs crates/workload/src/writers.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/models.rs:
crates/workload/src/writers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
