/root/repo/target/debug/deps/perfdmf_profile-532f947552851a68.d: crates/profile/src/lib.rs crates/profile/src/atomic.rs crates/profile/src/callpath.rs crates/profile/src/derived.rs crates/profile/src/event.rs crates/profile/src/interval.rs crates/profile/src/profile.rs crates/profile/src/thread.rs

/root/repo/target/debug/deps/libperfdmf_profile-532f947552851a68.rlib: crates/profile/src/lib.rs crates/profile/src/atomic.rs crates/profile/src/callpath.rs crates/profile/src/derived.rs crates/profile/src/event.rs crates/profile/src/interval.rs crates/profile/src/profile.rs crates/profile/src/thread.rs

/root/repo/target/debug/deps/libperfdmf_profile-532f947552851a68.rmeta: crates/profile/src/lib.rs crates/profile/src/atomic.rs crates/profile/src/callpath.rs crates/profile/src/derived.rs crates/profile/src/event.rs crates/profile/src/interval.rs crates/profile/src/profile.rs crates/profile/src/thread.rs

crates/profile/src/lib.rs:
crates/profile/src/atomic.rs:
crates/profile/src/callpath.rs:
crates/profile/src/derived.rs:
crates/profile/src/event.rs:
crates/profile/src/interval.rs:
crates/profile/src/profile.rs:
crates/profile/src/thread.rs:
