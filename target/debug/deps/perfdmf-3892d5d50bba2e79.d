/root/repo/target/debug/deps/perfdmf-3892d5d50bba2e79.d: src/lib.rs

/root/repo/target/debug/deps/libperfdmf-3892d5d50bba2e79.rlib: src/lib.rs

/root/repo/target/debug/deps/libperfdmf-3892d5d50bba2e79.rmeta: src/lib.rs

src/lib.rs:
