/root/repo/target/debug/deps/perfdmf-ea8b96b4ba700c86.d: src/lib.rs

/root/repo/target/debug/deps/perfdmf-ea8b96b4ba700c86: src/lib.rs

src/lib.rs:
