/root/repo/target/debug/deps/sql_suite-551f72ed5aead7c4.d: crates/db/tests/sql_suite.rs

/root/repo/target/debug/deps/sql_suite-551f72ed5aead7c4: crates/db/tests/sql_suite.rs

crates/db/tests/sql_suite.rs:
