//! Property tests on profile-model invariants.

use perfdmf_profile::{
    derive_metric, AtomicData, IntervalData, IntervalEvent, IntervalField, Metric, MetricExpr,
    Profile, ThreadId,
};
use proptest::prelude::*;

fn build_profile(values: &[Vec<f64>]) -> (Profile, Vec<perfdmf_profile::EventId>) {
    // values[e][t] = exclusive time of event e on thread t
    let mut p = Profile::new("prop");
    let m = p.add_metric(Metric::measured("TIME"));
    let n_threads = values.first().map(|v| v.len()).unwrap_or(0);
    p.add_threads((0..n_threads as u32).map(|n| ThreadId::new(n, 0, 0)));
    let mut events = Vec::new();
    for (e, row) in values.iter().enumerate() {
        let id = p.add_event(IntervalEvent::new(format!("f{e}"), "G"));
        events.push(id);
        for (t, &x) in row.iter().enumerate() {
            p.set_interval(
                id,
                ThreadId::new(t as u32, 0, 0),
                m,
                IntervalData::new(x * 1.5, x, 1.0 + e as f64, 0.0),
            );
        }
    }
    (p, events)
}

proptest! {
    /// mean summary × thread count == total summary, for every event.
    #[test]
    fn mean_times_count_equals_total(
        values in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1e6, 4),
            1..12,
        )
    ) {
        let (p, _events) = build_profile(&values);
        let m = p.find_metric("TIME").unwrap();
        let total = p.total_summary(m);
        let mean = p.mean_summary(m);
        let n = p.threads().len() as f64;
        for (t, u) in total.iter().zip(&mean) {
            if let (Some(a), Some(b)) = (t.exclusive(), u.exclusive()) {
                prop_assert!((b * n - a).abs() <= 1e-9 * (1.0 + a.abs()));
            }
            if let (Some(a), Some(b)) = (t.inclusive(), u.inclusive()) {
                prop_assert!((b * n - a).abs() <= 1e-9 * (1.0 + a.abs()));
            }
        }
    }

    /// Event stats bounds: min <= mean <= max, and all within data range.
    #[test]
    fn event_stats_are_bounded(
        row in proptest::collection::vec(0.0f64..1e9, 1..64)
    ) {
        let (p, events) = build_profile(std::slice::from_ref(&row));
        let m = p.find_metric("TIME").unwrap();
        let s = p.event_stats(events[0], m, IntervalField::Exclusive).unwrap();
        prop_assert_eq!(s.count, row.len());
        let lo = row.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min, lo);
        prop_assert_eq!(s.max, hi);
        prop_assert!(s.mean >= lo - 1e-9 && s.mean <= hi + 1e-9);
        prop_assert!(s.stddev >= 0.0);
    }

    /// Derived metric TIME * k scales inclusive/exclusive by k everywhere.
    #[test]
    fn derived_linear_scaling(
        values in proptest::collection::vec(proptest::collection::vec(0.5f64..1e5, 3), 1..6),
        k in 0.5f64..8.0,
    ) {
        let (mut p, events) = build_profile(&values);
        let m = p.find_metric("TIME").unwrap();
        let expr = MetricExpr::parse(&format!("TIME * {k}")).unwrap();
        let scaled = derive_metric(&mut p, "SCALED", &expr).unwrap();
        for &e in &events {
            for &t in p.threads() {
                let orig = p.interval(e, t, m).unwrap();
                let s = p.interval(e, t, scaled).unwrap();
                prop_assert!((s.exclusive().unwrap() - orig.exclusive().unwrap() * k).abs() < 1e-6 * (1.0 + k));
                prop_assert!((s.inclusive().unwrap() - orig.inclusive().unwrap() * k).abs() < 1e-6 * (1.0 + k));
                // calls copied from source
                prop_assert_eq!(s.calls(), orig.calls());
            }
        }
    }

    /// Welford merge is associative enough: merging in any split equals
    /// the sequential result.
    #[test]
    fn atomic_merge_split_invariance(
        xs in proptest::collection::vec(-1e6f64..1e6, 2..50),
        split in 1usize..49,
    ) {
        let split = split.min(xs.len() - 1);
        let mut whole = AtomicData::new();
        for &x in &xs { whole.record(x); }
        let mut a = AtomicData::new();
        let mut b = AtomicData::new();
        for &x in &xs[..split] { a.record(x); }
        for &x in &xs[split..] { b.record(x); }
        a.merge(&b);
        prop_assert_eq!(a.count, whole.count);
        prop_assert!((a.mean - whole.mean).abs() < 1e-6 * (1.0 + whole.mean.abs()));
        let (sa, sw) = (a.stddev().unwrap_or(0.0), whole.stddev().unwrap_or(0.0));
        prop_assert!((sa - sw).abs() < 1e-6 * (1.0 + sw));
    }

    /// recompute_derived_fields keeps validate() clean and percentages
    /// within range for arbitrary exclusive<=inclusive data.
    #[test]
    fn derived_fields_valid(
        (_n, values) in (2usize..6).prop_flat_map(|n| (
            Just(n),
            proptest::collection::vec(proptest::collection::vec(0.0f64..1e6, n), 1..8),
        ))
    ) {
        let (mut p, _) = build_profile(&values);
        let m = p.find_metric("TIME").unwrap();
        p.recompute_derived_fields(m);
        let problems = p.validate();
        prop_assert!(problems.is_empty(), "{problems:?}");
    }

    /// Interleaved registration (threads late) never loses data.
    #[test]
    fn late_registration_preserves_data(
        first_batch in 1usize..6,
        second_batch in 1usize..6,
    ) {
        let mut p = Profile::new("t");
        let m = p.add_metric(Metric::measured("TIME"));
        let e = p.add_event(IntervalEvent::ungrouped("f"));
        p.add_threads((0..first_batch as u32).map(|n| ThreadId::new(n, 0, 0)));
        for n in 0..first_batch as u32 {
            p.set_interval(e, ThreadId::new(n, 0, 0), m, IntervalData::new(n as f64 + 1.0, n as f64 + 1.0, 1.0, 0.0));
        }
        p.add_threads((0..second_batch as u32).map(|n| ThreadId::new(100 + n, 0, 0)));
        for n in 0..second_batch as u32 {
            p.set_interval(e, ThreadId::new(100 + n, 0, 0), m, IntervalData::new(1000.0 + n as f64, 1000.0 + n as f64, 1.0, 0.0));
        }
        prop_assert_eq!(p.data_point_count(), first_batch + second_batch);
        for n in 0..first_batch as u32 {
            prop_assert_eq!(
                p.interval(e, ThreadId::new(n, 0, 0), m).unwrap().inclusive(),
                Some(n as f64 + 1.0)
            );
        }
    }
}
