//! # perfdmf-core
//!
//! The PerfDMF framework core: the relational profile schema (paper §3.2),
//! the query and data-management API (paper §4), and the bridge between
//! profile files, the in-memory profile model, and the database.
//!
//! * [`schema::create_schema`] — create the APPLICATION / EXPERIMENT /
//!   TRIAL / METRIC / INTERVAL_EVENT / INTERVAL_LOCATION_PROFILE /
//!   INTERVAL_TOTAL_SUMMARY / INTERVAL_MEAN_SUMMARY / ATOMIC_EVENT /
//!   ATOMIC_LOCATION_PROFILE tables with their flexible-schema property.
//! * [`Application`] / [`Experiment`] / [`Trial`] ([`FlexRow`]) — data
//!   objects with `save()` and runtime-discovered metadata columns.
//! * [`DatabaseSession`] — the `PerfDMFSession` equivalent: hierarchical
//!   selection (application → experiment → trial → metric →
//!   node/context/thread), list operations, profile store/load, and
//!   SQL-pushed aggregates.
//! * [`FileSession`] — the file-based access method over the importers.
//! * [`save_profile`] / [`load_trial`] / [`load_trial_filtered`] /
//!   [`append_derived_metric`] — bulk transfer between [`Profile`] and the
//!   database.
//! * [`dump_archive`] / [`restore_archive`] — whole-archive exchange
//!   between sites (the paper's §7 PPerfXchange-style sharing).
//!
//! ```
//! use perfdmf_core::{DatabaseSession};
//! use perfdmf_db::Connection;
//! use perfdmf_profile::{IntervalData, IntervalEvent, Metric, Profile, ThreadId};
//!
//! let mut session = DatabaseSession::new(Connection::open_in_memory()).unwrap();
//! let mut profile = Profile::new("run1");
//! let m = profile.add_metric(Metric::measured("TIME"));
//! let e = profile.add_event(IntervalEvent::new("main", "TAU_USER"));
//! profile.add_thread(ThreadId::ZERO);
//! profile.set_interval(e, ThreadId::ZERO, m, IntervalData::new(10.0, 10.0, 1.0, 0.0));
//! let trial = session.store_profile("myapp", "baseline", &profile).unwrap();
//! session.set_trial(trial);
//! assert_eq!(session.metric_list().unwrap(), vec!["TIME".to_string()]);
//! ```

pub mod archive;
pub mod objects;
pub mod schema;
pub mod session;
pub mod upload;

pub use archive::{dump_archive, restore_archive};
pub use objects::{Application, Experiment, FlexRow, Trial};
pub use schema::{create_schema, FLEXIBLE_TABLES, SCHEMA_DDL};
pub use session::{AtomicEventRow, DatabaseSession, EventAggregate, FileSession, IntervalEventRow};
pub use upload::{
    append_derived_metric, load_trial, load_trial_filtered, save_profile, LoadFilter,
};

// Re-export the profile type the API is built around.
pub use perfdmf_profile::Profile;
