/root/repo/target/debug/examples/perfexplorer_mining-7c8e938287b496ef.d: examples/perfexplorer_mining.rs

/root/repo/target/debug/examples/perfexplorer_mining-7c8e938287b496ef: examples/perfexplorer_mining.rs

examples/perfexplorer_mining.rs:
