/root/repo/target/debug/deps/perfdmf_core-886498d576419495.d: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/objects.rs crates/core/src/schema.rs crates/core/src/session.rs crates/core/src/upload.rs

/root/repo/target/debug/deps/libperfdmf_core-886498d576419495.rlib: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/objects.rs crates/core/src/schema.rs crates/core/src/session.rs crates/core/src/upload.rs

/root/repo/target/debug/deps/libperfdmf_core-886498d576419495.rmeta: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/objects.rs crates/core/src/schema.rs crates/core/src/session.rs crates/core/src/upload.rs

crates/core/src/lib.rs:
crates/core/src/archive.rs:
crates/core/src/objects.rs:
crates/core/src/schema.rs:
crates/core/src/session.rs:
crates/core/src/upload.rs:
