/root/repo/target/debug/deps/instrument_stress-0466bce3973f9456.d: crates/telemetry/tests/instrument_stress.rs

/root/repo/target/debug/deps/instrument_stress-0466bce3973f9456: crates/telemetry/tests/instrument_stress.rs

crates/telemetry/tests/instrument_stress.rs:
