//! Offline shim for the `proptest` crate.
//!
//! Random-input property testing with the API subset this workspace
//! uses: the `proptest!`/`prop_assert*`/`prop_oneof!` macros, `Strategy`
//! with `prop_map`/`prop_flat_map`/`boxed`, `Just`, `any::<T>()`,
//! numeric-range strategies, tuple strategies, `collection::vec`, and
//! regex-literal string strategies (character classes, `\PC`, `{m,n}`
//! repetition).
//!
//! Differences from upstream: generation is deterministic (fixed seed,
//! no `PROPTEST_` env handling), there is **no shrinking** — a failing
//! case reports the assertion message only — and the regex subset covers
//! just the patterns found in this repo's tests.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run one property: generate inputs, run the body, fail the surrounding
/// `#[test]` on the first `Err`. No shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            #[allow(unreachable_code)]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                let outcome = runner.run(|__rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                    { $body }
                    ::std::result::Result::Ok(())
                });
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest case failed: {e}");
                }
            }
        )*
    };
}

/// Assert inside a proptest body; failure aborts the case with a message
/// instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert two values are equal (by `PartialEq`), reporting both on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                __l, __r
            )));
        }
    }};
}

/// Assert two values differ (by `PartialEq`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {:?}",
                __l
            )));
        }
    }};
}

/// Choose uniformly among several strategies producing the same value
/// type. (Upstream's `weight => strategy` arms are not supported.)
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn tuples_maps_and_vecs(
            (n, rows) in (1usize..4).prop_flat_map(|n| (
                Just(n),
                crate::collection::vec(crate::collection::vec(0.0f64..1.0, n), 1..5),
            ))
        ) {
            prop_assert!(!rows.is_empty() && rows.len() < 5);
            for row in &rows {
                prop_assert_eq!(row.len(), n);
            }
        }

        #[test]
        fn string_patterns_match_shape(name in "[A-Za-z_][A-Za-z0-9_.-]{0,12}") {
            let mut chars = name.chars();
            let first = chars.next().expect("leading atom is mandatory");
            prop_assert!(first.is_ascii_alphabetic() || first == '_', "bad head {first:?}");
            prop_assert!(name.chars().count() <= 13);
            for c in chars {
                prop_assert!(
                    c.is_ascii_alphanumeric() || "_.-".contains(c),
                    "bad tail char {c:?}"
                );
            }
        }

        #[test]
        fn oneof_and_any(c in prop_oneof![Just('a'), Just('λ')], i in any::<i32>(), b in any::<bool>()) {
            prop_assert!(c == 'a' || c == 'λ');
            let _ = (i, b);
            if i == 0 {
                return Ok(());
            }
            prop_assert!(i != 0);
        }
    }

    #[test]
    fn failing_property_reports_via_panic() {
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(5));
        let out = runner.run(|rng| {
            let v = Strategy::generate(&(0usize..10), rng);
            prop_assert!(v < 10);
            prop_assert!(v > 100, "deliberately false for {v}");
            Ok(())
        });
        assert!(out.is_err());
    }
}
