//! dynaprof importer.
//!
//! dynaprof (Mucci) instruments binaries at runtime and its `papiprobe` /
//! `wallclockprobe` probes emit one text report per thread listing, for
//! each instrumented function, the total (inclusive) and exclusive counts
//! of the probe's metric plus the call count:
//!
//! ```text
//! dynaprof output
//! probe: papiprobe
//! metric: PAPI_TOT_CYC
//! thread: 0
//! name               calls   exclusive     inclusive
//! main                   1     1000000       9000000
//! compute             1000     8000000       8000000
//! ```

use crate::error::{ImportError, Result};
use perfdmf_profile::{IntervalData, IntervalEvent, Metric, Profile, ThreadId, UNDEFINED};

const FORMAT: &str = "dynaprof";

/// Parse one dynaprof report into `profile`.
pub fn parse_dynaprof_text(text: &str, profile: &mut Profile) -> Result<()> {
    let mut metric_name = "DYNAPROF_COUNT".to_string();
    let mut thread = ThreadId::ZERO;
    let mut in_table = false;
    let mut rows = 0usize;
    let mut pending: Vec<(String, f64, f64, f64)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if !in_table {
            let lower = line.to_ascii_lowercase();
            if lower.starts_with("dynaprof") || lower.starts_with("probe:") {
                continue;
            }
            if let Some(m) = lower.strip_prefix("metric:") {
                metric_name = line[line.len() - m.trim_start().len()..].trim().to_string();
                continue;
            }
            if let Some(t) = lower.strip_prefix("thread:") {
                let id: u32 = t
                    .trim()
                    .parse()
                    .map_err(|_| ImportError::format(FORMAT, lineno + 1, "bad thread number"))?;
                thread = ThreadId::new(0, 0, id);
                continue;
            }
            if lower.starts_with("name") {
                in_table = true;
                continue;
            }
            return Err(ImportError::format(
                FORMAT,
                lineno + 1,
                format!("unexpected header line {line:?}"),
            ));
        }
        // table rows: name calls exclusive inclusive
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 4 {
            return Err(ImportError::format(
                FORMAT,
                lineno + 1,
                "expected 'name calls exclusive inclusive'",
            ));
        }
        let name = fields[..fields.len() - 3].join(" ");
        let calls: f64 = fields[fields.len() - 3]
            .parse()
            .map_err(|_| ImportError::format(FORMAT, lineno + 1, "bad calls value"))?;
        let excl: f64 = fields[fields.len() - 2]
            .parse()
            .map_err(|_| ImportError::format(FORMAT, lineno + 1, "bad exclusive value"))?;
        let incl: f64 = fields[fields.len() - 1]
            .parse()
            .map_err(|_| ImportError::format(FORMAT, lineno + 1, "bad inclusive value"))?;
        pending.push((name, calls, excl, incl));
        rows += 1;
    }
    if rows == 0 {
        return Err(ImportError::format(FORMAT, 0, "no data rows found"));
    }
    let metric = profile.add_metric(Metric::measured(metric_name));
    profile.add_thread(thread);
    for (name, calls, excl, incl) in pending {
        let event = profile.add_event(IntervalEvent::new(name, "DYNAPROF"));
        profile.set_interval(
            event,
            thread,
            metric,
            IntervalData::new(incl, excl, calls, UNDEFINED),
        );
    }
    profile.recompute_derived_fields(metric);
    Ok(())
}

/// Load a dynaprof report file.
pub fn load_dynaprof_file(path: &std::path::Path) -> Result<Profile> {
    let text = std::fs::read_to_string(path).map_err(|e| ImportError::io(path, e))?;
    let mut profile = Profile::new(
        path.file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default(),
    );
    profile.source_format = "dynaprof".into();
    parse_dynaprof_text(&text, &mut profile)?;
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
dynaprof output
probe: papiprobe
metric: PAPI_TOT_CYC
thread: 2
name               calls   exclusive     inclusive
main                   1     1000000       9000000
compute kernel      1000     8000000       8000000
";

    #[test]
    fn parses_report() {
        let mut p = Profile::new("t");
        parse_dynaprof_text(SAMPLE, &mut p).unwrap();
        let m = p.find_metric("PAPI_TOT_CYC").unwrap();
        let t = ThreadId::new(0, 0, 2);
        let main = p.find_event("main").unwrap();
        let d = p.interval(main, t, m).unwrap();
        assert_eq!(d.inclusive(), Some(9e6));
        assert_eq!(d.exclusive(), Some(1e6));
        assert_eq!(d.calls(), Some(1.0));
        // multi-word function name
        let ck = p.find_event("compute kernel").unwrap();
        assert_eq!(p.interval(ck, t, m).unwrap().calls(), Some(1000.0));
    }

    #[test]
    fn default_metric_when_missing() {
        let text = "dynaprof output\nname calls exclusive inclusive\nf 1 2 3\n";
        let mut p = Profile::new("t");
        parse_dynaprof_text(text, &mut p).unwrap();
        assert!(p.find_metric("DYNAPROF_COUNT").is_some());
    }

    #[test]
    fn rejects_garbage() {
        let mut p = Profile::new("t");
        assert!(parse_dynaprof_text("", &mut p).is_err());
        assert!(parse_dynaprof_text("what is this\n", &mut p).is_err());
        assert!(parse_dynaprof_text(
            "metric: X\nname calls exclusive inclusive\nf one 2 3\n",
            &mut p
        )
        .is_err());
    }
}
