/root/repo/target/debug/deps/flexible_schema-3c4d58efe56f22d6.d: tests/flexible_schema.rs

/root/repo/target/debug/deps/flexible_schema-3c4d58efe56f22d6: tests/flexible_schema.rs

tests/flexible_schema.rs:
