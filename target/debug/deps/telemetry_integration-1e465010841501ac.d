/root/repo/target/debug/deps/telemetry_integration-1e465010841501ac.d: crates/db/tests/telemetry_integration.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_integration-1e465010841501ac.rmeta: crates/db/tests/telemetry_integration.rs Cargo.toml

crates/db/tests/telemetry_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
