//! Experiment E11 — network front-door throughput and tail latency.
//!
//! Prices the TCP hop that `perfdmf-server` adds over the in-process
//! explorer: single-client round-trip latency for the cheapest request
//! (`Ping`) and for a real analysis (`ClusterTrial`), then a swarm of
//! `PERFDMF_E11_CLIENTS` (default 1000) concurrent clients hammering
//! the server with pings. After the swarm the client-side latency
//! histogram's p50/p95/p99 are printed — the numbers recorded in
//! `EXPERIMENTS.md` §E11.
//!
//! The swarm is the interesting part: 1000 sessions means 1000 server
//! threads polling small frames through the admission-control queue,
//! so the measurement covers accept pressure, session bookkeeping, and
//! queue contention — not just codec cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use perfdmf_core::DatabaseSession;
use perfdmf_db::Connection;
use perfdmf_explorer::{ClusterMethod, FeatureSpace, Request, Response, RetryPolicy};
use perfdmf_profile::{IntervalData, IntervalEvent, Metric, Profile, ThreadId};
use perfdmf_server::{NetClient, PerfdmfServer, ServerConfig};

fn swarm_clients() -> usize {
    std::env::var("PERFDMF_E11_CLIENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1000)
}

/// Trial with clusterable structure (mirrors the chaos fixture).
fn seeded_database() -> (Connection, i64) {
    let conn = Connection::open_in_memory();
    let mut session = DatabaseSession::new(conn.clone()).expect("schema");
    let mut p = Profile::new("e11");
    let m = p.add_metric(Metric::measured("TIME"));
    let a = p.add_event(IntervalEvent::ungrouped("compute"));
    let b = p.add_event(IntervalEvent::ungrouped("exchange"));
    p.add_threads((0..32).map(|n| ThreadId::new(n, 0, 0)));
    for (i, &t) in p.threads().to_vec().iter().enumerate() {
        let (ca, cb) = if i < 16 { (100.0, 5.0) } else { (10.0, 80.0) };
        p.set_interval(a, t, m, IntervalData::new(ca, ca, 10.0, 0.0));
        p.set_interval(b, t, m, IntervalData::new(cb, cb, 10.0, 0.0));
    }
    let trial = session
        .store_profile("e11-app", "e11-exp", &p)
        .expect("store");
    (conn, trial)
}

fn start_server(conn: Connection) -> PerfdmfServer {
    PerfdmfServer::start_with_config(
        conn,
        ServerConfig {
            workers: 4,
            queue_capacity: 4096,
            ..ServerConfig::default()
        },
    )
    .expect("server start")
}

fn bench_single_client(c: &mut Criterion) {
    let (conn, trial) = seeded_database();
    let server = start_server(conn);
    let mut client = NetClient::new(server.addr(), "e11-single").with_policy(RetryPolicy::none());
    assert!(client.ping(), "server must be live");

    let mut group = c.benchmark_group("e11_roundtrip");
    group.throughput(Throughput::Elements(1));
    group.bench_function("ping", |b| {
        b.iter(|| {
            assert!(matches!(client.request(Request::Ping), Response::Pong));
        })
    });
    // Same hop with the full observability stack on: client span,
    // trace context on the wire, server-side resource meter, and the
    // usage bill riding the Reply. §E11's bar: within 5% of plain ping.
    perfdmf_telemetry::set_tracing(true);
    group.bench_function("ping_traced", |b| {
        b.iter(|| {
            assert!(matches!(client.request(Request::Ping), Response::Pong));
        })
    });
    perfdmf_telemetry::set_tracing(false);
    group.sample_size(20);
    group.bench_function("cluster", |b| {
        b.iter(|| {
            let response = client.request(Request::ClusterTrial {
                trial_id: trial,
                features: FeatureSpace::EventsOfMetric("TIME".into()),
                k: None,
                max_k: 4,
                pca_components: 0,
                method: ClusterMethod::KMeans,
            });
            assert!(matches!(response, Response::Clustering { .. }));
        })
    });
    group.finish();
    client.close();
    server.shutdown();
}

/// Each swarm client: connect, handshake, issue `requests` pings,
/// close. Returns how many requests got a good answer.
fn swarm_client(addr: std::net::SocketAddr, id: usize, requests: usize) -> usize {
    let mut client = NetClient::new(addr, format!("e11-swarm-{id}"));
    let mut good = 0;
    for _ in 0..requests {
        if matches!(client.request(Request::Ping), Response::Pong) {
            good += 1;
        }
    }
    client.close();
    good
}

fn bench_swarm(c: &mut Criterion) {
    let (conn, _trial) = seeded_database();
    let server = start_server(conn);
    let addr = server.addr();
    let clients = swarm_clients();
    let requests_per_client = 2;

    let mut group = c.benchmark_group("e11_swarm");
    group.sample_size(10);
    group.throughput(Throughput::Elements((clients * requests_per_client) as u64));
    group.bench_function(format!("{clients}_clients"), |b| {
        b.iter(|| {
            let handles: Vec<_> = (0..clients)
                .map(|id| std::thread::spawn(move || swarm_client(addr, id, requests_per_client)))
                .collect();
            let good: usize = handles.into_iter().map(|h| h.join().expect("client")).sum();
            assert_eq!(
                good,
                clients * requests_per_client,
                "every swarm request must be answered"
            );
        })
    });
    group.finish();

    // Tail latency of the client-observed round trip, across everything
    // the swarm just did. These are the §E11 numbers.
    let snap = perfdmf_telemetry::snapshot();
    if let Some(h) = snap
        .histograms
        .iter()
        .find(|h| h.name == "netclient.request_latency_ns")
    {
        eprintln!(
            "e11_server: {} requests, latency p50={}us p95={}us p99={}us max={}us",
            h.count,
            h.quantile(0.50).unwrap_or(0) / 1_000,
            h.quantile(0.95).unwrap_or(0) / 1_000,
            h.quantile(0.99).unwrap_or(0) / 1_000,
            h.max.unwrap_or(0) / 1_000,
        );
    }
    server.shutdown();
}

criterion_group!(benches, bench_single_client, bench_swarm);
criterion_main!(benches);
