//! Callpath events and call-tree reconstruction.
//!
//! TAU callpath profiling encodes paths in event names with `=>`
//! separators (`main => solve => MPI_Send()`); ParaProf builds its
//! callgraph displays from them. This module parses those names, builds
//! the call tree for one thread/metric, and derives the flat (per-leaf
//! aggregated) view.

use crate::interval::IntervalData;
use crate::profile::{EventId, MetricId, Profile};
use crate::thread::ThreadId;
use std::collections::BTreeMap;

/// Separator used by TAU callpath event names.
pub const CALLPATH_SEPARATOR: &str = " => ";

/// Split a callpath event name into frames; a plain name yields one frame.
pub fn parse_callpath(name: &str) -> Vec<&str> {
    name.split(CALLPATH_SEPARATOR).map(str::trim).collect()
}

/// True if an event name encodes a callpath.
pub fn is_callpath(name: &str) -> bool {
    name.contains(CALLPATH_SEPARATOR)
}

/// One node of a reconstructed call tree.
#[derive(Debug, Clone, PartialEq)]
pub struct CallNode {
    /// Frame name (the last path component).
    pub name: String,
    /// Inclusive value at this path.
    pub inclusive: Option<f64>,
    /// Exclusive value at this path.
    pub exclusive: Option<f64>,
    /// Calls at this path.
    pub calls: Option<f64>,
    /// Child nodes, ordered by name.
    pub children: Vec<CallNode>,
}

impl CallNode {
    fn new(name: &str) -> CallNode {
        CallNode {
            name: name.to_string(),
            inclusive: None,
            exclusive: None,
            calls: None,
            children: Vec::new(),
        }
    }

    /// Find a direct child by name.
    pub fn child(&self, name: &str) -> Option<&CallNode> {
        self.children.iter().find(|c| c.name == name)
    }

    fn child_mut(&mut self, name: &str) -> &mut CallNode {
        if let Some(pos) = self.children.iter().position(|c| c.name == name) {
            return &mut self.children[pos];
        }
        let pos = self
            .children
            .binary_search_by(|c| c.name.as_str().cmp(name))
            .unwrap_err();
        self.children.insert(pos, CallNode::new(name));
        &mut self.children[pos]
    }

    /// Total number of nodes in this subtree (including self).
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(CallNode::node_count)
            .sum::<usize>()
    }

    /// Depth of the subtree (1 for a leaf).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(CallNode::depth).max().unwrap_or(0)
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "{:indent$}{} incl={} excl={} calls={}",
            "",
            self.name,
            self.inclusive
                .map(|v| format!("{v:.4}"))
                .unwrap_or_else(|| "-".into()),
            self.exclusive
                .map(|v| format!("{v:.4}"))
                .unwrap_or_else(|| "-".into()),
            self.calls
                .map(|v| format!("{v}"))
                .unwrap_or_else(|| "-".into()),
            indent = indent
        );
        for c in &self.children {
            c.render_into(out, indent + 2);
        }
    }

    /// Render the subtree as indented text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }
}

/// Build the call tree of one thread/metric from a callpath profile.
///
/// Events without `=>` are treated as roots of length-1 paths. Returns a
/// synthetic unnamed root whose children are the top-level frames.
pub fn build_call_tree(profile: &Profile, thread: ThreadId, metric: MetricId) -> CallNode {
    let mut root = CallNode::new("<root>");
    for (ei, event) in profile.events().iter().enumerate() {
        let Some(d) = profile.interval(EventId(ei), thread, metric) else {
            continue;
        };
        let frames = parse_callpath(&event.name);
        let mut node = &mut root;
        for frame in &frames {
            node = node.child_mut(frame);
        }
        node.inclusive = d.inclusive();
        node.exclusive = d.exclusive();
        node.calls = d.calls();
    }
    root
}

/// Aggregate a callpath profile into flat per-leaf totals for one
/// thread/metric: each path's exclusive value and calls are attributed to
/// its final frame (the function actually executing).
pub fn flatten_callpaths(
    profile: &Profile,
    thread: ThreadId,
    metric: MetricId,
) -> BTreeMap<String, IntervalData> {
    let mut out: BTreeMap<String, IntervalData> = BTreeMap::new();
    for (ei, event) in profile.events().iter().enumerate() {
        let Some(d) = profile.interval(EventId(ei), thread, metric) else {
            continue;
        };
        let leaf = *parse_callpath(&event.name).last().expect("non-empty split");
        out.entry(leaf.to_string())
            .and_modify(|acc| acc.accumulate(d))
            .or_insert(*d);
    }
    out
}

/// Check call-tree consistency: a parent's inclusive value should be at
/// least the sum of its children's inclusives (within `tol` relative
/// slack). Returns violations as human-readable strings.
pub fn validate_call_tree(node: &CallNode, tol: f64) -> Vec<String> {
    let mut problems = Vec::new();
    fn walk(node: &CallNode, tol: f64, problems: &mut Vec<String>) {
        if let Some(incl) = node.inclusive {
            let child_sum: f64 = node.children.iter().filter_map(|c| c.inclusive).sum();
            if child_sum > incl * (1.0 + tol) + tol {
                problems.push(format!(
                    "{}: children inclusive {child_sum} exceeds own inclusive {incl}",
                    node.name
                ));
            }
        }
        for c in &node.children {
            walk(c, tol, problems);
        }
    }
    walk(node, tol, &mut problems);
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{IntervalEvent, Metric};

    fn callpath_profile() -> Profile {
        let mut p = Profile::new("cp");
        let m = p.add_metric(Metric::measured("TIME"));
        p.add_thread(ThreadId::ZERO);
        let paths = [
            ("main", 100.0, 10.0, 1.0),
            ("main => solve", 80.0, 20.0, 5.0),
            ("main => solve => MPI_Send()", 30.0, 30.0, 50.0),
            ("main => solve => compute", 30.0, 30.0, 50.0),
            ("main => io", 10.0, 10.0, 2.0),
            ("MPI_Send()", 30.0, 30.0, 50.0), // flat twin of the callpath leaf
        ];
        for (name, incl, excl, calls) in paths {
            let e = p.add_event(IntervalEvent::new(name, "TAU_CALLPATH"));
            p.set_interval(
                e,
                ThreadId::ZERO,
                m,
                IntervalData::new(incl, excl, calls, 0.0),
            );
        }
        p
    }

    #[test]
    fn parse_and_detect() {
        assert_eq!(parse_callpath("a => b => c"), vec!["a", "b", "c"]);
        assert_eq!(parse_callpath("plain"), vec!["plain"]);
        assert!(is_callpath("a => b"));
        assert!(!is_callpath("a=>b"), "TAU uses spaced arrows");
    }

    #[test]
    fn builds_tree_with_values() {
        let p = callpath_profile();
        let m = p.find_metric("TIME").unwrap();
        let tree = build_call_tree(&p, ThreadId::ZERO, m);
        let main = tree.child("main").unwrap();
        assert_eq!(main.inclusive, Some(100.0));
        let solve = main.child("solve").unwrap();
        assert_eq!(solve.inclusive, Some(80.0));
        assert_eq!(solve.children.len(), 2);
        let send = solve.child("MPI_Send()").unwrap();
        assert_eq!(send.calls, Some(50.0));
        assert_eq!(tree.depth(), 4); // root -> main -> solve -> leaf
        assert_eq!(main.node_count(), 5);
        // consistency holds for this profile
        assert!(validate_call_tree(&tree, 1e-9).is_empty());
    }

    #[test]
    fn flatten_merges_leaves() {
        let p = callpath_profile();
        let m = p.find_metric("TIME").unwrap();
        let flat = flatten_callpaths(&p, ThreadId::ZERO, m);
        // MPI_Send() appears as a callpath leaf and as a flat event: merged
        let send = &flat["MPI_Send()"];
        assert_eq!(send.exclusive(), Some(60.0));
        assert_eq!(send.calls(), Some(100.0));
        assert_eq!(flat["compute"].exclusive(), Some(30.0));
        assert!(flat.contains_key("io"));
        assert!(!flat.contains_key("main => solve"));
    }

    #[test]
    fn detects_inconsistent_tree() {
        let mut p = Profile::new("bad");
        let m = p.add_metric(Metric::measured("TIME"));
        p.add_thread(ThreadId::ZERO);
        for (name, incl) in [("a", 10.0), ("a => b", 50.0)] {
            let e = p.add_event(IntervalEvent::new(name, "G"));
            p.set_interval(
                e,
                ThreadId::ZERO,
                m,
                IntervalData::new(incl, incl, 1.0, 0.0),
            );
        }
        let tree = build_call_tree(&p, ThreadId::ZERO, m);
        let problems = validate_call_tree(&tree, 1e-9);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains('a'));
    }

    #[test]
    fn tree_renders() {
        let p = callpath_profile();
        let m = p.find_metric("TIME").unwrap();
        let text = build_call_tree(&p, ThreadId::ZERO, m).render();
        assert!(text.contains("main"));
        assert!(text.contains("  solve") || text.contains("solve incl"));
        assert!(text.lines().count() >= 6);
    }
}
