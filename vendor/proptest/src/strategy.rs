//! The [`Strategy`] trait and core combinators.

use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream there is no value-tree/shrinking layer: `generate`
/// produces a finished value directly, which keeps the trait
/// object-safe (`dyn Strategy<Value = T>` backs [`BoxedStrategy`]).
pub trait Strategy {
    type Value;

    /// Produce one random value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generate a value, build a second strategy from it, and generate
    /// from that — for dependent inputs (e.g. a dimension then a matrix
    /// of that dimension).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Type-erased, cheaply clonable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice among same-valued strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

// ---- numeric range strategies -------------------------------------------

macro_rules! int_range_strategy {
    ($($int:ty => $wide:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$int> {
            type Value = $int;

            fn generate(&self, rng: &mut TestRng) -> $int {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let off = rng.below(span);
                (self.start as $wide).wrapping_add(off as $wide) as $int
            }
        }

        impl Strategy for std::ops::RangeInclusive<$int> {
            type Value = $int;

            fn generate(&self, rng: &mut TestRng) -> $int {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $int;
                }
                let off = rng.below(span + 1);
                (start as $wide).wrapping_add(off as $wide) as $int
            }
        }
    )*};
}

int_range_strategy! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // Rounding can land exactly on the open upper bound.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        let v = (self.start as f64..self.end as f64).generate(rng) as f32;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

// ---- tuple strategies ----------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}
