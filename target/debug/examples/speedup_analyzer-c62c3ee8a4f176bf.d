/root/repo/target/debug/examples/speedup_analyzer-c62c3ee8a4f176bf.d: examples/speedup_analyzer.rs Cargo.toml

/root/repo/target/debug/examples/libspeedup_analyzer-c62c3ee8a4f176bf.rmeta: examples/speedup_analyzer.rs Cargo.toml

examples/speedup_analyzer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
