/root/repo/target/debug/deps/callpath_flow-c15482802090b372.d: tests/callpath_flow.rs Cargo.toml

/root/repo/target/debug/deps/libcallpath_flow-c15482802090b372.rmeta: tests/callpath_flow.rs Cargo.toml

tests/callpath_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
