//! Advanced SQL engine coverage: expressions in odd positions, NULL
//! corner cases, large GROUP BYs, index interplay with updates/deletes,
//! and multi-statement workload patterns PerfDMF generates.

use perfdmf_db::{Connection, DbError, Value};

fn numbers(n: i64) -> Connection {
    let conn = Connection::open_in_memory();
    conn.execute(
        "CREATE TABLE nums (id INTEGER PRIMARY KEY AUTO_INCREMENT, k INTEGER, v DOUBLE, s TEXT)",
        &[],
    )
    .unwrap();
    let ins = conn
        .prepare("INSERT INTO nums (k, v, s) VALUES (?, ?, ?)")
        .unwrap();
    conn.transaction(|tx| {
        for i in 0..n {
            tx.execute_prepared(
                &ins,
                &[
                    Value::Int(i % 10),
                    Value::Float(i as f64 / 2.0),
                    Value::Text(format!("row{i}").into()),
                ],
            )?;
        }
        Ok(())
    })
    .unwrap();
    conn
}

#[test]
fn expressions_in_projection_where_order() {
    let conn = numbers(20);
    let rs = conn
        .query(
            "SELECT k * 10 + 1 AS score, LENGTH(s) AS len
             FROM nums
             WHERE (v + 0.5) * 2 > 10 AND s LIKE 'row1%'
             ORDER BY score DESC, len
             LIMIT 3",
            &[],
        )
        .unwrap();
    assert!(rs.rows.len() <= 3);
    for r in &rs.rows {
        assert!(r[0].as_int().unwrap() % 10 == 1);
    }
}

#[test]
fn case_in_group_by_and_aggregate_args() {
    let conn = numbers(30);
    let rs = conn
        .query(
            "SELECT CASE WHEN k < 5 THEN 'low' ELSE 'high' END AS bucket,
                    SUM(CASE WHEN v > 5 THEN 1 ELSE 0 END) AS big_v,
                    COUNT(*) AS n
             FROM nums GROUP BY CASE WHEN k < 5 THEN 'low' ELSE 'high' END
             ORDER BY bucket",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.get(0, "bucket"), Some(&Value::from("high")));
    let total: i64 = rs.rows.iter().map(|r| r[2].as_int().unwrap()).sum();
    assert_eq!(total, 30);
}

#[test]
fn null_arithmetic_and_grouping() {
    let conn = Connection::open_in_memory();
    conn.execute("CREATE TABLE t (g INTEGER, x DOUBLE)", &[])
        .unwrap();
    for (g, x) in [
        (Some(1), Some(1.0)),
        (Some(1), None),
        (None, Some(5.0)),
        (None, None),
    ] {
        conn.insert(
            "INSERT INTO t VALUES (?, ?)",
            &[Value::from(g.map(|v| v as i64)), Value::from(x)],
        )
        .unwrap();
    }
    // NULL group key forms its own group (grouping treats NULLs equal)
    let rs = conn
        .query(
            "SELECT g, COUNT(*), SUM(x) FROM t GROUP BY g ORDER BY g",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert!(rs.rows[0][0].is_null());
    assert_eq!(rs.rows[0][1], Value::Int(2));
    assert_eq!(rs.rows[0][2], Value::Float(5.0));
    // IS NULL filters
    assert_eq!(
        conn.query_scalar("SELECT COUNT(*) FROM t WHERE x IS NULL", &[])
            .unwrap(),
        Value::Int(2)
    );
    // comparisons with NULL match nothing
    assert_eq!(
        conn.query_scalar("SELECT COUNT(*) FROM t WHERE x = x", &[])
            .unwrap(),
        Value::Int(2)
    );
}

#[test]
fn distinct_aggregate_and_count_distinct() {
    let conn = numbers(40);
    let rs = conn
        .query(
            "SELECT COUNT(DISTINCT k), SUM(DISTINCT k), COUNT(k) FROM nums",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(10));
    assert_eq!(rs.rows[0][1], Value::Int(45));
    assert_eq!(rs.rows[0][2], Value::Int(40));
}

#[test]
fn having_without_group_by() {
    let conn = numbers(10);
    // HAVING over the implicit single group
    let rs = conn
        .query("SELECT COUNT(*) FROM nums HAVING COUNT(*) > 5", &[])
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    let rs = conn
        .query("SELECT COUNT(*) FROM nums HAVING COUNT(*) > 100", &[])
        .unwrap();
    assert!(rs.rows.is_empty());
}

#[test]
fn aggregate_over_empty_input() {
    let conn = Connection::open_in_memory();
    conn.execute("CREATE TABLE e (x INTEGER)", &[]).unwrap();
    let rs = conn
        .query(
            "SELECT COUNT(*), SUM(x), AVG(x), MIN(x), MAX(x), STDDEV(x) FROM e",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Int(0));
    for i in 1..6 {
        assert!(rs.rows[0][i].is_null(), "column {i}");
    }
    // but a GROUP BY over empty input yields zero groups
    let rs = conn
        .query("SELECT x, COUNT(*) FROM e GROUP BY x", &[])
        .unwrap();
    assert!(rs.rows.is_empty());
}

#[test]
fn updates_and_deletes_maintain_indexes() {
    let conn = numbers(100);
    conn.execute("CREATE INDEX ix_k ON nums (k)", &[]).unwrap();
    // shift a stripe of keys
    let moved = conn
        .update("UPDATE nums SET k = 99 WHERE k = 3", &[])
        .unwrap();
    assert_eq!(moved, 10);
    assert_eq!(
        conn.query_scalar("SELECT COUNT(*) FROM nums WHERE k = 3", &[])
            .unwrap(),
        Value::Int(0)
    );
    assert_eq!(
        conn.query_scalar("SELECT COUNT(*) FROM nums WHERE k = 99", &[])
            .unwrap(),
        Value::Int(10)
    );
    // delete through the indexed predicate
    let gone = conn.update("DELETE FROM nums WHERE k = 99", &[]).unwrap();
    assert_eq!(gone, 10);
    assert_eq!(conn.row_count("nums").unwrap(), 90);
    // index still consistent for other keys
    assert_eq!(
        conn.query_scalar("SELECT COUNT(*) FROM nums WHERE k = 4", &[])
            .unwrap(),
        Value::Int(10)
    );
}

#[test]
fn self_update_expression_reads_pre_update_values() {
    let conn = Connection::open_in_memory();
    conn.execute("CREATE TABLE t (a INTEGER, b INTEGER)", &[])
        .unwrap();
    conn.insert("INSERT INTO t VALUES (1, 10)", &[]).unwrap();
    // a = b, b = a must swap, not cascade
    conn.update("UPDATE t SET a = b, b = a", &[]).unwrap();
    let rs = conn.query("SELECT a, b FROM t", &[]).unwrap();
    assert_eq!(rs.rows[0], vec![Value::Int(10), Value::Int(1)]);
}

#[test]
fn large_group_by_many_groups() {
    let conn = Connection::open_in_memory();
    conn.execute("CREATE TABLE t (g INTEGER, v INTEGER)", &[])
        .unwrap();
    let ins = conn.prepare("INSERT INTO t VALUES (?, ?)").unwrap();
    conn.transaction(|tx| {
        for i in 0..5000i64 {
            tx.execute_prepared(&ins, &[Value::Int(i % 997), Value::Int(i)])?;
        }
        Ok(())
    })
    .unwrap();
    let rs = conn
        .query("SELECT g, COUNT(*) FROM t GROUP BY g", &[])
        .unwrap();
    assert_eq!(rs.rows.len(), 997);
    let total: i64 = rs.rows.iter().map(|r| r[1].as_int().unwrap()).sum();
    assert_eq!(total, 5000);
}

#[test]
fn three_way_join_with_left_tail() {
    let conn = Connection::open_in_memory();
    conn.execute("CREATE TABLE a (id INTEGER PRIMARY KEY, name TEXT)", &[])
        .unwrap();
    conn.execute("CREATE TABLE b (id INTEGER PRIMARY KEY, a INTEGER)", &[])
        .unwrap();
    conn.execute("CREATE TABLE c (id INTEGER PRIMARY KEY, b INTEGER)", &[])
        .unwrap();
    conn.insert("INSERT INTO a VALUES (1, 'x'), (2, 'y')", &[])
        .unwrap();
    conn.insert("INSERT INTO b VALUES (10, 1)", &[]).unwrap();
    conn.insert("INSERT INTO c VALUES (100, 10)", &[]).unwrap();
    let rs = conn
        .query(
            "SELECT a.name, b.id, c.id FROM a
             LEFT JOIN b ON b.a = a.id
             LEFT JOIN c ON c.b = b.id
             ORDER BY a.id",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(
        rs.rows[0],
        vec![Value::from("x"), Value::Int(10), Value::Int(100)]
    );
    assert_eq!(rs.rows[1], vec![Value::from("y"), Value::Null, Value::Null]);
}

#[test]
fn pushdown_preserves_left_join_semantics() {
    // a base-only conjunct must not change LEFT JOIN padding behaviour
    let conn = Connection::open_in_memory();
    conn.execute("CREATE TABLE l (id INTEGER, tag TEXT)", &[])
        .unwrap();
    conn.execute("CREATE TABLE r (lid INTEGER, v INTEGER)", &[])
        .unwrap();
    conn.insert(
        "INSERT INTO l VALUES (1, 'keep'), (2, 'keep'), (3, 'drop')",
        &[],
    )
    .unwrap();
    conn.insert("INSERT INTO r VALUES (1, 100)", &[]).unwrap();
    let rs = conn
        .query(
            "SELECT l.id, r.v FROM l LEFT JOIN r ON r.lid = l.id
             WHERE l.tag = 'keep' ORDER BY l.id",
            &[],
        )
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::Int(1), Value::Int(100)],
            vec![Value::Int(2), Value::Null],
        ]
    );
}

#[test]
fn functions_compose() {
    let conn = numbers(5);
    let rs = conn
        .query(
            "SELECT UPPER(SUBSTR(s, 1, 3)) || '-' || CAST(k AS TEXT) AS tag FROM nums ORDER BY id LIMIT 1",
            &[],
        )
        .unwrap();
    assert_eq!(rs.get(0, "tag"), Some(&Value::from("ROW-0")));
    assert_eq!(
        conn.query_scalar("SELECT ROUND(SQRT(ABS(-16)), 0)", &[])
            .unwrap(),
        Value::Float(4.0)
    );
}

#[test]
fn error_paths_do_not_corrupt_state() {
    let conn = numbers(10);
    // division by zero inside a multi-row UPDATE rolls the statement back
    let err = conn.update("UPDATE nums SET v = 1 / (k - 5)", &[]);
    assert!(matches!(err, Err(DbError::Eval(_))));
    // nothing was partially applied
    let rs = conn.query("SELECT SUM(v) FROM nums", &[]).unwrap();
    let expected: f64 = (0..10).map(|i| i as f64 / 2.0).sum();
    assert!((rs.scalar().unwrap().as_float().unwrap() - expected).abs() < 1e-9);
    // bad projections fail cleanly
    assert!(conn.query("SELECT NO_SUCH_FUNC(v) FROM nums", &[]).is_err());
    assert!(conn.query("SELECT v FROM nums ORDER BY 99", &[]).is_err());
    // the connection remains usable
    assert_eq!(conn.row_count("nums").unwrap(), 10);
}

#[test]
fn blob_values_via_parameters() {
    let conn = Connection::open_in_memory();
    conn.execute(
        "CREATE TABLE files (id INTEGER PRIMARY KEY AUTO_INCREMENT, name TEXT, data BLOB)",
        &[],
    )
    .unwrap();
    let payload = vec![0u8, 1, 2, 255, 254, 128];
    conn.insert(
        "INSERT INTO files (name, data) VALUES (?, ?)",
        &[Value::from("raw"), Value::Bytes(payload.clone())],
    )
    .unwrap();
    let rs = conn
        .query("SELECT data FROM files WHERE name = 'raw'", &[])
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Bytes(payload.clone())));
    // blobs compare by bytes in WHERE via parameters
    let rs = conn
        .query(
            "SELECT COUNT(*) FROM files WHERE data = ?",
            &[Value::Bytes(payload)],
        )
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(1)));
}

#[test]
fn between_and_in_on_text() {
    let conn = numbers(12);
    let rs = conn
        .query(
            "SELECT COUNT(*) FROM nums WHERE s BETWEEN 'row1' AND 'row4'",
            &[],
        )
        .unwrap();
    // lexicographic: row1, row10, row11, row2, row3, row4
    assert_eq!(rs.scalar(), Some(&Value::Int(6)));
    let rs = conn
        .query(
            "SELECT COUNT(*) FROM nums WHERE s IN ('row0', 'row5', 'nope')",
            &[],
        )
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(2)));
}

#[test]
fn mixed_readers_and_writers_under_transactions() {
    let conn = numbers(50);
    let writer = conn.clone();
    let w = std::thread::spawn(move || {
        for round in 0..20 {
            writer
                .transaction(|tx| {
                    tx.execute(
                        "UPDATE nums SET v = v + 1 WHERE k = ?",
                        &[Value::Int(round % 10)],
                    )?;
                    tx.execute(
                        "INSERT INTO nums (k, v, s) VALUES (?, 0, 'w')",
                        &[Value::Int(round % 10)],
                    )?;
                    Ok(())
                })
                .unwrap();
        }
    });
    let mut readers = Vec::new();
    for _ in 0..3 {
        let c = conn.clone();
        readers.push(std::thread::spawn(move || {
            for _ in 0..40 {
                // transaction effects must be atomic: the v-bump and the
                // row insert arrive together
                let rs = c
                    .query("SELECT COUNT(*) - 50 AS inserted, SUM(v) FROM nums", &[])
                    .unwrap();
                let inserted = rs.rows[0][0].as_int().unwrap();
                assert!((0..=20).contains(&inserted));
            }
        }));
    }
    w.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    assert_eq!(conn.row_count("nums").unwrap(), 70);
}
