//! The global metric registry: named counters and histograms.
//!
//! Lookups hash the metric name to one of 16 shards, each a
//! `parking_lot::RwLock<HashMap>`, so unrelated instruments don't
//! contend. Handles are `Arc`-backed and can be cached by hot paths to
//! skip the lookup entirely; [`LocalCounter`] goes further and batches
//! increments thread-locally, flushing on drop.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

const SHARDS: usize = 16;

/// Number of log2 buckets: bucket 0 holds zeros, bucket `i` (1..=64)
/// holds values with `i` significant bits, i.e. `[2^(i-1), 2^i)`.
pub const BUCKETS: usize = 65;

struct CounterInner {
    value: AtomicU64,
}

/// Monotonically increasing named counter.
#[derive(Clone)]
pub struct Counter {
    inner: Arc<CounterInner>,
}

impl Counter {
    /// Add `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.inner.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn value(&self) -> u64 {
        self.inner.value.load(Ordering::Relaxed)
    }

    /// Start a thread-local batching view of this counter.
    pub fn local(&self) -> LocalCounter {
        LocalCounter {
            counter: self.clone(),
            pending: 0,
        }
    }
}

/// Per-thread accumulator over a [`Counter`]: increments touch a plain
/// integer and hit the shared atomic once, when the accumulator drops
/// (or on [`LocalCounter::flush`]). For loops incrementing per row.
pub struct LocalCounter {
    counter: Counter,
    pending: u64,
}

impl LocalCounter {
    /// Add `delta` locally; invisible to readers until flushed.
    #[inline]
    pub fn add(&mut self, delta: u64) {
        self.pending += delta;
    }

    /// Increment by one locally.
    #[inline]
    pub fn incr(&mut self) {
        self.pending += 1;
    }

    /// Push pending increments to the shared counter now.
    pub fn flush(&mut self) {
        if self.pending > 0 {
            self.counter.add(self.pending);
            self.pending = 0;
        }
    }
}

impl Drop for LocalCounter {
    fn drop(&mut self) {
        self.flush();
    }
}

struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// Log2-bucketed distribution of `u64` samples (latencies in ns, sizes
/// in bytes, ...). Recording is lock-free; all fields are atomics.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

/// Bucket index for a sample: 0 for 0, else the number of significant
/// bits (1..=64).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket, for reporting.
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let inner = &self.inner;
        inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.min.fetch_min(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wraps if it exceeds `u64`).
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample, or `None` before the first record.
    pub fn min(&self) -> Option<u64> {
        match self.inner.min.load(Ordering::Relaxed) {
            u64::MAX if self.count() == 0 => None,
            v => Some(v),
        }
    }

    /// Largest sample, or `None` before the first record.
    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.inner.max.load(Ordering::Relaxed))
        }
    }

    /// Copy of the bucket counts.
    pub fn buckets(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(&self.inner.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }
}

/// Sharded name → instrument maps.
pub struct Registry {
    counters: [RwLock<HashMap<String, Counter>>; SHARDS],
    histograms: [RwLock<HashMap<String, Histogram>>; SHARDS],
}

fn shard_of(name: &str) -> usize {
    let mut h = DefaultHasher::new();
    name.hash(&mut h);
    (h.finish() as usize) % SHARDS
}

impl Registry {
    fn new() -> Self {
        Registry {
            counters: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            histograms: std::array::from_fn(|_| RwLock::new(HashMap::new())),
        }
    }

    /// Get or create the named counter.
    pub fn counter(&self, name: &str) -> Counter {
        let shard = &self.counters[shard_of(name)];
        if let Some(c) = shard.read().get(name) {
            return c.clone();
        }
        shard
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Counter {
                inner: Arc::new(CounterInner {
                    value: AtomicU64::new(0),
                }),
            })
            .clone()
    }

    /// Get or create the named histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        let shard = &self.histograms[shard_of(name)];
        if let Some(h) = shard.read().get(name) {
            return h.clone();
        }
        shard
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Histogram {
                inner: Arc::new(HistogramInner {
                    buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                    min: AtomicU64::new(u64::MAX),
                    max: AtomicU64::new(0),
                }),
            })
            .clone()
    }

    /// All counters as `(name, handle)` pairs, sorted by name.
    pub fn counters(&self) -> Vec<(String, Counter)> {
        let mut out: Vec<_> = self
            .counters
            .iter()
            .flat_map(|s| {
                s.read()
                    .iter()
                    .map(|(n, c)| (n.clone(), c.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// All histograms as `(name, handle)` pairs, sorted by name.
    pub fn histograms(&self) -> Vec<(String, Histogram)> {
        let mut out: Vec<_> = self
            .histograms
            .iter()
            .flat_map(|s| {
                s.read()
                    .iter()
                    .map(|(n, h)| (n.clone(), h.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Drop every registered instrument. Cached handles keep working but
    /// detach from future lookups of the same name.
    pub fn reset(&self) {
        for shard in &self.counters {
            shard.write().clear();
        }
        for shard in &self.histograms {
            shard.write().clear();
        }
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn same_name_same_instrument() {
        let a = global().counter("registry.same");
        let b = global().counter("registry.same");
        a.add(2);
        b.add(3);
        assert_eq!(a.value(), 5);
    }

    #[test]
    fn local_counter_flushes_on_drop() {
        let c = global().counter("registry.local");
        {
            let mut l = c.local();
            for _ in 0..100 {
                l.incr();
            }
            assert_eq!(c.value(), 0, "pending increments stay local");
        }
        assert_eq!(c.value(), 100);
    }
}
