/root/repo/target/release/examples/self_profile-2e00dd02040d8e05.d: examples/self_profile.rs

/root/repo/target/release/examples/self_profile-2e00dd02040d8e05: examples/self_profile.rs

examples/self_profile.rs:
