//! Per-rule rewrite-equivalence suite.
//!
//! Each optimizer rule is tested in isolation: random queries shaped to
//! make that rule fire run twice — rules all on vs. the one rule
//! disabled (`OptimizerConfig::without`) — and the result sets must be
//! identical (row order included; join reordering alone gets the
//! float-reassociation epsilon on aggregates). A third leg with the
//! optimizer fully off anchors both against the naive plan.
//!
//! This is finer-grained than the differential oracle: when a rewrite
//! regression slips in, the failing test names the rule.

use perfdmf_db::{
    override_columnar, override_optimizer, ColumnarMode, Connection, OptimizerConfig, Value,
};
use perfdmf_pool as pool;
use proptest::prelude::*;

fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pick(state: &mut u64, n: u64) -> u64 {
    mix(state) % n
}

/// trial-like table with an indexed sort/filter column, plus two join
/// partners. NULLs everywhere the engine allows them.
fn seeded(t_rows: &[u64], u_rows: &[u64]) -> Connection {
    let conn = Connection::open_in_memory();
    conn.execute(
        "CREATE TABLE t (a INTEGER, b INTEGER, c DOUBLE, s TEXT)",
        &[],
    )
    .unwrap();
    conn.execute("CREATE TABLE u (k INTEGER, d INTEGER, v DOUBLE)", &[])
        .unwrap();
    conn.execute("CREATE INDEX ix_t_a ON t (a)", &[]).unwrap();
    let texts = ["red", "green", "blue", "teal"];
    let mut rows = Vec::new();
    for seed in t_rows {
        let mut r = *seed;
        rows.push(vec![
            if pick(&mut r, 6) == 0 {
                Value::Null
            } else {
                Value::Int(pick(&mut r, 30) as i64 - 5)
            },
            Value::Int(pick(&mut r, 5) as i64),
            Value::Float(pick(&mut r, 40) as f64 * 0.75 - 12.0),
            Value::Text(texts[pick(&mut r, 4) as usize].into()),
        ]);
    }
    if !rows.is_empty() {
        conn.bulk_insert("t", &["a", "b", "c", "s"], rows).unwrap();
    }
    let mut rows = Vec::new();
    for seed in u_rows {
        let mut r = *seed;
        rows.push(vec![
            if pick(&mut r, 6) == 0 {
                Value::Null
            } else {
                Value::Int(pick(&mut r, 5) as i64)
            },
            Value::Int(pick(&mut r, 7) as i64),
            Value::Float(pick(&mut r, 16) as f64 * 1.25),
        ]);
    }
    if !rows.is_empty() {
        conn.bulk_insert("u", &["k", "d", "v"], rows).unwrap();
    }
    conn
}

fn run(
    conn: &Connection,
    sql: &str,
    cfg: OptimizerConfig,
) -> Result<Vec<Vec<Value>>, TestCaseError> {
    let _row = override_columnar(ColumnarMode::Off);
    let _serial = pool::override_for_thread(1, 1);
    let _cfg = override_optimizer(cfg);
    conn.query(sql, &[])
        .map(|rs| rs.rows)
        .map_err(|e| TestCaseError::fail(format!("query failed: {e}\n  sql: {sql}")))
}

/// Exact equality except floats, which compare within a relative
/// epsilon (join reordering re-brackets float sums).
fn rows_close(a: &[Vec<Value>], b: &[Vec<Value>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.len() == rb.len()
                && ra.iter().zip(rb).all(|(va, vb)| match (va, vb) {
                    (Value::Float(x), Value::Float(y)) => {
                        let tol = 1e-9_f64.max(1e-9 * x.abs().max(y.abs()));
                        (x - y).abs() <= tol
                    }
                    _ => va == vb,
                })
        })
}

/// Assert `sql` returns identical rows with all rules on, with `rule`
/// disabled, and with the optimizer off entirely.
fn assert_rule_equivalence(
    conn: &Connection,
    sql: &str,
    rule: &str,
    exact: bool,
) -> Result<(), TestCaseError> {
    let on = run(conn, sql, OptimizerConfig::all_on())?;
    let without = run(conn, sql, OptimizerConfig::without(rule))?;
    let naive = run(conn, sql, OptimizerConfig::disabled())?;
    let pairs = [("without", &without), ("optimizer-off", &naive)];
    for (leg, rows) in pairs {
        let ok = if exact {
            on == **rows
        } else {
            rows_close(&on, rows)
        };
        prop_assert!(
            ok,
            "rule {rule} changed the result\n  sql: {sql}\n  all-on: {on:?}\n  {leg}: {rows:?}",
        );
    }
    Ok(())
}

proptest! {
    /// predicate-pushdown: join queries with single-table conjuncts
    /// (including LEFT joins with IS NULL probes over the right side).
    #[test]
    fn predicate_pushdown_preserves_results(
        t_seeds in proptest::collection::vec(0u64..=u64::MAX, 0..50),
        u_seeds in proptest::collection::vec(0u64..=u64::MAX, 0..30),
        q in 0u64..=u64::MAX,
    ) {
        let conn = seeded(&t_seeds, &u_seeds);
        let mut r = q;
        let join = if pick(&mut r, 3) == 0 { "LEFT JOIN" } else { "JOIN" };
        let conj1 = ["t.b >= 1", "t.a < 10", "t.s = 'red'", "t.a IS NOT NULL"]
            [pick(&mut r, 4) as usize];
        let conj2 = ["u.d < 5", "u.k IS NULL", "u.v >= 2.5", "u.d IN (0, 2, 4)"]
            [pick(&mut r, 4) as usize];
        let sql = format!(
            "SELECT t.a, t.s, u.d FROM t {join} u ON t.b = u.k WHERE ({conj1}) AND ({conj2})"
        );
        assert_rule_equivalence(&conn, &sql, "predicate-pushdown", true)?;
    }

    /// join-reorder: ungrouped aggregates over two inner joins — the only
    /// shape the rule touches. Epsilon compare: reordering re-brackets
    /// float sums.
    #[test]
    fn join_reorder_preserves_results(
        t_seeds in proptest::collection::vec(0u64..=u64::MAX, 0..40),
        u_seeds in proptest::collection::vec(0u64..=u64::MAX, 0..40),
        q in 0u64..=u64::MAX,
    ) {
        let conn = seeded(&t_seeds, &u_seeds);
        // Second join partner with its own size so reordering has a
        // reason to fire.
        conn.execute("CREATE TABLE w (x INTEGER, y INTEGER)", &[]).unwrap();
        let mut r = q;
        for _ in 0..pick(&mut r, 12) {
            conn.execute(
                "INSERT INTO w (x, y) VALUES (?, ?)",
                &[Value::Int(pick(&mut r, 5) as i64), Value::Int(pick(&mut r, 9) as i64)],
            )
            .unwrap();
        }
        let aggs = ["COUNT(*), SUM(u.v)", "SUM(t.c), MIN(u.d)", "COUNT(u.k), MAX(w.y)"]
            [pick(&mut r, 3) as usize];
        let wher = ["", " WHERE t.b >= 1", " WHERE u.d < 6 AND w.y > 0"]
            [pick(&mut r, 3) as usize];
        let sql = format!(
            "SELECT {aggs} FROM t JOIN u ON t.b = u.k JOIN w ON t.b = w.x{wher}"
        );
        assert_rule_equivalence(&conn, &sql, "join-reorder", false)?;
    }

    /// limit-pushdown: LIMIT/OFFSET with and without WHERE; the early
    /// exit must return exactly the naive plan's prefix.
    #[test]
    fn limit_pushdown_preserves_results(
        t_seeds in proptest::collection::vec(0u64..=u64::MAX, 0..60),
        q in 0u64..=u64::MAX,
    ) {
        let conn = seeded(&t_seeds, &[]);
        let mut r = q;
        let wher = ["", " WHERE b >= 2", " WHERE a IS NOT NULL AND b < 4"]
            [pick(&mut r, 3) as usize];
        let limit = pick(&mut r, 10);
        let offset = match pick(&mut r, 3) {
            0 => String::new(),
            _ => format!(" OFFSET {}", pick(&mut r, 5)),
        };
        let sql = format!("SELECT a, s FROM t{wher} LIMIT {limit}{offset}");
        assert_rule_equivalence(&conn, &sql, "limit-pushdown", true)?;
    }

    /// sort-elision: `ORDER BY a LIMIT n` rides the index on t(a); the
    /// index-order scan must reproduce the stable sort exactly,
    /// including NULL-first rows and duplicate-key id order.
    #[test]
    fn sort_elision_preserves_results(
        t_seeds in proptest::collection::vec(0u64..=u64::MAX, 0..60),
        q in 0u64..=u64::MAX,
    ) {
        let conn = seeded(&t_seeds, &[]);
        let mut r = q;
        let wher = ["", " WHERE b >= 1", " WHERE s <> 'teal'"][pick(&mut r, 3) as usize];
        let limit = 1 + pick(&mut r, 12);
        let sql = format!("SELECT a, b, s FROM t{wher} ORDER BY a LIMIT {limit}");
        assert_rule_equivalence(&conn, &sql, "sort-elision", true)?;
    }

    /// projection-pruning: masked columns must never leak into results —
    /// joins, filters, sorts, and projections over a strict column
    /// subset all agree with the unpruned plan.
    #[test]
    fn projection_pruning_preserves_results(
        t_seeds in proptest::collection::vec(0u64..=u64::MAX, 0..50),
        u_seeds in proptest::collection::vec(0u64..=u64::MAX, 0..30),
        q in 0u64..=u64::MAX,
    ) {
        let conn = seeded(&t_seeds, &u_seeds);
        let mut r = q;
        let proj = ["t.a", "t.a, u.d", "u.v, t.s", "t.b, t.b"][pick(&mut r, 4) as usize];
        let wher = ["", " WHERE t.a > 0", " WHERE u.d <= 4 AND t.s = 'blue'"]
            [pick(&mut r, 3) as usize];
        let order = ["", " ORDER BY t.b, u.d"][pick(&mut r, 2) as usize];
        let sql = format!("SELECT {proj} FROM t JOIN u ON t.b = u.k{wher}{order}");
        assert_rule_equivalence(&conn, &sql, "projection-pruning", true)?;
    }
}

/// The toggles themselves work: with a rule disabled, its trail line
/// disappears from EXPLAIN; with the optimizer off, the plan says so.
#[test]
fn toggles_are_visible_in_explain() {
    let conn = seeded(&[1, 2, 3, 4, 5, 6, 7, 8], &[9, 10, 11]);
    let plan = |cfg: OptimizerConfig, sql: &str| -> String {
        let _cfg = override_optimizer(cfg);
        let rs = conn.query(sql, &[]).unwrap();
        rs.rows
            .iter()
            .map(|r| r[0].as_text().unwrap().to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let sql = "EXPLAIN SELECT t.a FROM t JOIN u ON t.b = u.k WHERE t.b > 0 LIMIT 3";
    let on = plan(OptimizerConfig::all_on(), sql);
    assert!(on.contains("optimizer: predicate-pushdown:"), "{on}");
    assert!(on.contains("optimizer: projection-pruning:"), "{on}");
    let no_push = plan(OptimizerConfig::without("predicate-pushdown"), sql);
    assert!(
        !no_push.contains("optimizer: predicate-pushdown:"),
        "{no_push}"
    );
    assert!(
        no_push.contains("optimizer: projection-pruning:"),
        "{no_push}"
    );
    let off = plan(OptimizerConfig::disabled(), sql);
    assert!(off.contains("optimizer: off"), "{off}");
    assert!(!off.contains("optimizer: predicate-pushdown"), "{off}");

    let sql = "EXPLAIN SELECT a FROM t ORDER BY a LIMIT 2";
    let on = plan(OptimizerConfig::all_on(), sql);
    assert!(on.contains("index-order scan on t"), "{on}");
    assert!(on.contains("optimizer: sort-elision:"), "{on}");
    let no_elide = plan(OptimizerConfig::without("sort-elision"), sql);
    assert!(no_elide.contains("sort: 1 key(s)"), "{no_elide}");
    assert!(!no_elide.contains("index-order scan"), "{no_elide}");
}
