//! Persistence: binary snapshots and a write-ahead log.
//!
//! A database directory contains:
//!
//! * `snapshot.pdmf` — a full binary image of all tables, written by
//!   [`write_snapshot`] (checkpoint).
//! * `wal.pdmf` — a log of committed row-level and DDL changes appended
//!   after the snapshot was taken. On open, the snapshot is loaded and the
//!   WAL replayed; a torn/corrupt tail (e.g. from a crash mid-append) is
//!   detected by per-record checksums and ignored from the first bad record
//!   onward, recovering the last fully committed state.
//!
//! Both headers carry a **generation number** (format v2). A checkpoint
//! writes the snapshot at generation `g+1`, renames it into place, then
//! resets the WAL to generation `g+1`. If a crash lands between the
//! rename and the reset, reopening finds `wal_gen < snap_gen` and knows
//! the WAL predates the snapshot — its contents are already inside the
//! snapshot and must not be replayed on top of it. Version-1 files (no
//! generation field) are read as generation 0 and upgraded on reopen.
//!
//! All file I/O goes through the [`crate::vfs::Vfs`] trait so the fault
//! injector ([`crate::faults::FaultVfs`]) can exercise every failure
//! path deterministically.
//!
//! Encoding is little-endian throughout, built on the `bytes` crate.

use crate::error::{DbError, Result};
use crate::schema::{ColumnDef, TableSchema};
use crate::table::{Row, RowId, Table};
use crate::value::{DataType, Value};
use crate::vfs::{RealVfs, Vfs, VfsFile};
use bytes::{Buf, BufMut};
use perfdmf_telemetry as telemetry;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const SNAPSHOT_MAGIC: &[u8; 4] = b"PDMF";
const WAL_MAGIC: &[u8; 4] = b"PWAL";
/// Current on-disk format. v2 added the generation field; v1 files are
/// still readable (generation 0).
pub const FORMAT_VERSION: u32 = 2;

/// A committed change, as recorded in the WAL.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Row inserted at a specific slot.
    Insert { table: String, id: RowId, row: Row },
    /// Row deleted.
    Delete { table: String, id: RowId },
    /// Row replaced.
    Update { table: String, id: RowId, row: Row },
    /// Table created.
    CreateTable { schema: TableSchema },
    /// Table dropped.
    DropTable { name: String },
    /// Column added.
    AddColumn { table: String, column: ColumnDef },
    /// Column removed.
    DropColumn { table: String, column: String },
    /// Secondary index created.
    CreateIndex {
        table: String,
        name: String,
        column: String,
        unique: bool,
    },
    /// Secondary index dropped.
    DropIndex { table: String, name: String },
    /// Transaction commit marker; replay applies records only up to the
    /// last marker.
    Commit,
}

// ---------------- primitive encoding ----------------

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(DbError::Corrupt("truncated string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(DbError::Corrupt("truncated string body".into()));
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| DbError::Corrupt("invalid UTF-8".into()))
}

/// Encode a value.
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Int(i) => {
            buf.put_u8(1);
            buf.put_i64_le(*i);
        }
        Value::Float(f) => {
            buf.put_u8(2);
            buf.put_f64_le(*f);
        }
        Value::Text(s) => {
            buf.put_u8(3);
            put_str(buf, s);
        }
        Value::Bool(b) => {
            buf.put_u8(4);
            buf.put_u8(*b as u8);
        }
        Value::Bytes(b) => {
            buf.put_u8(5);
            buf.put_u32_le(b.len() as u32);
            buf.put_slice(b);
        }
    }
}

/// Decode a value.
pub fn get_value(buf: &mut &[u8]) -> Result<Value> {
    if buf.remaining() < 1 {
        return Err(DbError::Corrupt("truncated value tag".into()));
    }
    match buf.get_u8() {
        0 => Ok(Value::Null),
        1 => {
            if buf.remaining() < 8 {
                return Err(DbError::Corrupt("truncated int".into()));
            }
            Ok(Value::Int(buf.get_i64_le()))
        }
        2 => {
            if buf.remaining() < 8 {
                return Err(DbError::Corrupt("truncated float".into()));
            }
            Ok(Value::Float(buf.get_f64_le()))
        }
        3 => Ok(Value::Text(get_str(buf)?.into())),
        4 => {
            if buf.remaining() < 1 {
                return Err(DbError::Corrupt("truncated bool".into()));
            }
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        5 => {
            if buf.remaining() < 4 {
                return Err(DbError::Corrupt("truncated blob length".into()));
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(DbError::Corrupt("truncated blob body".into()));
            }
            Ok(Value::Bytes(buf.copy_to_bytes(len).to_vec()))
        }
        t => Err(DbError::Corrupt(format!("unknown value tag {t}"))),
    }
}

fn put_row(buf: &mut Vec<u8>, row: &Row) {
    buf.put_u32_le(row.len() as u32);
    for v in row {
        put_value(buf, v);
    }
}

fn get_row(buf: &mut &[u8]) -> Result<Row> {
    if buf.remaining() < 4 {
        return Err(DbError::Corrupt("truncated row length".into()));
    }
    let n = buf.get_u32_le() as usize;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(get_value(buf)?);
    }
    Ok(row)
}

fn data_type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Integer => 0,
        DataType::Double => 1,
        DataType::Text => 2,
        DataType::Boolean => 3,
        DataType::Blob => 4,
    }
}

fn data_type_from_tag(t: u8) -> Result<DataType> {
    Ok(match t {
        0 => DataType::Integer,
        1 => DataType::Double,
        2 => DataType::Text,
        3 => DataType::Boolean,
        4 => DataType::Blob,
        other => return Err(DbError::Corrupt(format!("unknown type tag {other}"))),
    })
}

fn put_column(buf: &mut Vec<u8>, c: &ColumnDef) {
    put_str(buf, &c.name);
    buf.put_u8(data_type_tag(c.ty));
    let mut flags = 0u8;
    if c.not_null {
        flags |= 1;
    }
    if c.unique {
        flags |= 2;
    }
    if c.primary_key {
        flags |= 4;
    }
    if c.auto_increment {
        flags |= 8;
    }
    buf.put_u8(flags);
    match &c.default {
        Some(v) => {
            buf.put_u8(1);
            put_value(buf, v);
        }
        None => buf.put_u8(0),
    }
    match &c.references {
        Some((t, col)) => {
            buf.put_u8(1);
            put_str(buf, t);
            put_str(buf, col);
        }
        None => buf.put_u8(0),
    }
}

fn get_column(buf: &mut &[u8]) -> Result<ColumnDef> {
    let name = get_str(buf)?;
    if buf.remaining() < 2 {
        return Err(DbError::Corrupt("truncated column def".into()));
    }
    let ty = data_type_from_tag(buf.get_u8())?;
    let flags = buf.get_u8();
    let mut col = ColumnDef::new(name, ty);
    col.not_null = flags & 1 != 0;
    col.unique = flags & 2 != 0;
    col.primary_key = flags & 4 != 0;
    col.auto_increment = flags & 8 != 0;
    if buf.remaining() < 1 {
        return Err(DbError::Corrupt("truncated default marker".into()));
    }
    if buf.get_u8() == 1 {
        col.default = Some(get_value(buf)?);
    }
    if buf.remaining() < 1 {
        return Err(DbError::Corrupt("truncated references marker".into()));
    }
    if buf.get_u8() == 1 {
        let t = get_str(buf)?;
        let c = get_str(buf)?;
        col.references = Some((t, c));
    }
    Ok(col)
}

fn put_schema(buf: &mut Vec<u8>, s: &TableSchema) {
    put_str(buf, &s.name);
    buf.put_u32_le(s.columns.len() as u32);
    for c in &s.columns {
        put_column(buf, c);
    }
}

fn get_schema(buf: &mut &[u8]) -> Result<TableSchema> {
    let name = get_str(buf)?;
    if buf.remaining() < 4 {
        return Err(DbError::Corrupt("truncated schema".into()));
    }
    let n = buf.get_u32_le() as usize;
    let mut columns = Vec::with_capacity(n);
    for _ in 0..n {
        columns.push(get_column(buf)?);
    }
    TableSchema::new(name, columns)
}

// ---------------- WAL record encoding ----------------

/// Encode a WAL record payload (without framing).
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    match rec {
        WalRecord::Insert { table, id, row } => {
            buf.put_u8(1);
            put_str(&mut buf, table);
            buf.put_u64_le(*id);
            put_row(&mut buf, row);
        }
        WalRecord::Delete { table, id } => {
            buf.put_u8(2);
            put_str(&mut buf, table);
            buf.put_u64_le(*id);
        }
        WalRecord::Update { table, id, row } => {
            buf.put_u8(3);
            put_str(&mut buf, table);
            buf.put_u64_le(*id);
            put_row(&mut buf, row);
        }
        WalRecord::CreateTable { schema } => {
            buf.put_u8(4);
            put_schema(&mut buf, schema);
        }
        WalRecord::DropTable { name } => {
            buf.put_u8(5);
            put_str(&mut buf, name);
        }
        WalRecord::AddColumn { table, column } => {
            buf.put_u8(6);
            put_str(&mut buf, table);
            put_column(&mut buf, column);
        }
        WalRecord::DropColumn { table, column } => {
            buf.put_u8(7);
            put_str(&mut buf, table);
            put_str(&mut buf, column);
        }
        WalRecord::CreateIndex {
            table,
            name,
            column,
            unique,
        } => {
            buf.put_u8(8);
            put_str(&mut buf, table);
            put_str(&mut buf, name);
            put_str(&mut buf, column);
            buf.put_u8(*unique as u8);
        }
        WalRecord::DropIndex { table, name } => {
            buf.put_u8(9);
            put_str(&mut buf, table);
            put_str(&mut buf, name);
        }
        WalRecord::Commit => {
            buf.put_u8(10);
        }
    }
    buf
}

/// Decode a WAL record payload.
pub fn decode_record(mut buf: &[u8]) -> Result<WalRecord> {
    let b = &mut buf;
    if b.remaining() < 1 {
        return Err(DbError::Corrupt("empty WAL record".into()));
    }
    let rec = match b.get_u8() {
        1 => WalRecord::Insert {
            table: get_str(b)?,
            id: {
                if b.remaining() < 8 {
                    return Err(DbError::Corrupt("truncated row id".into()));
                }
                b.get_u64_le()
            },
            row: get_row(b)?,
        },
        2 => WalRecord::Delete {
            table: get_str(b)?,
            id: {
                if b.remaining() < 8 {
                    return Err(DbError::Corrupt("truncated row id".into()));
                }
                b.get_u64_le()
            },
        },
        3 => WalRecord::Update {
            table: get_str(b)?,
            id: {
                if b.remaining() < 8 {
                    return Err(DbError::Corrupt("truncated row id".into()));
                }
                b.get_u64_le()
            },
            row: get_row(b)?,
        },
        4 => WalRecord::CreateTable {
            schema: get_schema(b)?,
        },
        5 => WalRecord::DropTable { name: get_str(b)? },
        6 => WalRecord::AddColumn {
            table: get_str(b)?,
            column: get_column(b)?,
        },
        7 => WalRecord::DropColumn {
            table: get_str(b)?,
            column: get_str(b)?,
        },
        8 => WalRecord::CreateIndex {
            table: get_str(b)?,
            name: get_str(b)?,
            column: get_str(b)?,
            unique: {
                if b.remaining() < 1 {
                    return Err(DbError::Corrupt("truncated unique flag".into()));
                }
                b.get_u8() != 0
            },
        },
        9 => WalRecord::DropIndex {
            table: get_str(b)?,
            name: get_str(b)?,
        },
        10 => WalRecord::Commit,
        t => return Err(DbError::Corrupt(format!("unknown WAL tag {t}"))),
    };
    if b.remaining() != 0 {
        return Err(DbError::Corrupt("trailing bytes in WAL record".into()));
    }
    Ok(rec)
}

/// FNV-1a checksum (fast, fine for torn-write detection).
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

// ---------------- WAL file ----------------

fn wal_header(generation: u64) -> Vec<u8> {
    let mut h = Vec::with_capacity(16);
    h.put_slice(WAL_MAGIC);
    h.put_u32_le(FORMAT_VERSION);
    h.put_u64_le(generation);
    h
}

/// When a commit batch must reach stable storage.
///
/// [`Durability::Fsync`] pairs with the group-commit bulk-insert path:
/// because the engine writes one WAL batch per commit (however many rows it
/// carries), the fsync cost is amortized across every record in the batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Flush to the OS on commit but do not fsync (the historical
    /// behavior): a process crash loses nothing, an OS crash may lose the
    /// tail. Recovery discards any torn tail either way.
    #[default]
    Buffered,
    /// `fsync` once per commit batch, so committed data survives power
    /// loss.
    Fsync,
}

/// Append-only write-ahead log handle.
pub struct Wal {
    file: Box<dyn VfsFile>,
    path: PathBuf,
    generation: u64,
    durability: Durability,
    /// File length up to the last successful append (header included).
    /// A failed append truncates back to this offset so a commit whose
    /// acknowledgement failed can never be replayed by recovery.
    len: u64,
    /// Set when a failed append could not be truncated away: the file may
    /// hold a record the caller rolled back, so further appends would let
    /// recovery replay conflicting history. Reopening repairs the log.
    poisoned: bool,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("generation", &self.generation)
            .finish_non_exhaustive()
    }
}

impl Wal {
    /// Open (creating if absent) the WAL at `path` on the real file system.
    pub fn open(path: &Path) -> Result<Wal> {
        Wal::open_with(crate::vfs::real(), path)
    }

    /// Open (creating if absent) the WAL at `path` through `vfs`, reading
    /// the generation from an existing header.
    pub fn open_with(vfs: Arc<dyn Vfs>, path: &Path) -> Result<Wal> {
        let (generation, file_bytes) = if vfs.exists(path) {
            let scan = scan_wal(&*vfs, path)?;
            (scan.generation, scan.file_bytes)
        } else {
            (0, 0)
        };
        Wal::attach(vfs, path, generation, file_bytes)
    }

    /// Open an append handle, trusting `generation` and `file_bytes` (the
    /// caller has just scanned or rewritten the file; `file_bytes` is its
    /// current length and is ignored when the file does not exist yet).
    /// Creates the file with a fresh header if absent.
    pub fn attach(vfs: Arc<dyn Vfs>, path: &Path, generation: u64, file_bytes: u64) -> Result<Wal> {
        let exists = vfs.exists(path);
        let mut file = vfs
            .open_append(path)
            .map_err(|e| DbError::io("wal open", e))?;
        let len = if exists {
            file_bytes
        } else {
            let header = wal_header(generation);
            file.write_all(&header)
                .map_err(|e| DbError::io("wal header write", e))?;
            file.flush().map_err(|e| DbError::io("wal flush", e))?;
            header.len() as u64
        };
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            generation,
            durability: Durability::default(),
            len,
            poisoned: false,
        })
    }

    /// Set when commit batches must reach stable storage.
    pub fn set_durability(&mut self, durability: Durability) {
        self.durability = durability;
    }

    /// Current durability mode.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Atomically replace the log with exactly `records` at `generation`
    /// (write temp + fsync + rename), then open it for appending. Used on
    /// recovery so a crash mid-rewrite can never lose the committed prefix.
    pub fn rewrite(
        vfs: Arc<dyn Vfs>,
        path: &Path,
        generation: u64,
        records: &[WalRecord],
    ) -> Result<Wal> {
        let mut out = wal_header(generation);
        for rec in records {
            let payload = encode_record(rec);
            out.put_u32_le(payload.len() as u32);
            out.put_slice(&payload);
            out.put_u64_le(fnv1a(&payload));
        }
        let tmp = path.with_extension("tmp");
        {
            let mut f = vfs
                .create(&tmp)
                .map_err(|e| DbError::io("wal rewrite create", e))?;
            f.write_all(&out)
                .map_err(|e| DbError::io("wal rewrite write", e))?;
            f.sync_all().map_err(|e| {
                telemetry::add("db.fsync_errors", 1);
                let _ = telemetry::trace::fault_dump("wal rewrite fsync failed");
                DbError::io("wal rewrite fsync", e)
            })?;
        }
        vfs.rename(&tmp, path)
            .map_err(|e| DbError::io("wal rewrite rename", e))?;
        Wal::attach(vfs, path, generation, out.len() as u64)
    }

    /// Append a batch of records followed by framing checksums; flushes to
    /// the OS at the end (one syscall per batch, not per record).
    pub fn append(&mut self, records: &[WalRecord]) -> Result<()> {
        let _span = telemetry::span("db.wal.append");
        if self.poisoned {
            return Err(DbError::Corrupt(
                "write-ahead log poisoned by an earlier failed commit; \
                 reopen the database to repair it"
                    .into(),
            ));
        }
        let mut out = Vec::with_capacity(records.len() * 64);
        for rec in records {
            let payload = encode_record(rec);
            out.put_u32_le(payload.len() as u32);
            out.put_slice(&payload);
            out.put_u64_le(fnv1a(&payload));
        }
        let result = self
            .file
            .write_all(&out)
            .map_err(|e| DbError::io("wal append", e))
            .and_then(|()| self.file.flush().map_err(|e| DbError::io("wal flush", e)))
            .and_then(|()| {
                if self.durability == Durability::Fsync {
                    let _fsync_span = telemetry::span("db.wal.fsync");
                    self.file.sync_all().map_err(|e| {
                        telemetry::add("db.fsync_errors", 1);
                        let _ = telemetry::trace::fault_dump("wal fsync failed");
                        DbError::io("wal fsync", e)
                    })?;
                    telemetry::add("db.wal.fsyncs", 1);
                }
                Ok(())
            });
        match result {
            Ok(()) => {
                self.len += out.len() as u64;
                telemetry::add("db.wal.commit_batches", 1);
                telemetry::record("db.wal.batch_records", records.len() as u64);
                telemetry::meter::add_wal_bytes(out.len() as u64);
                Ok(())
            }
            Err(e) => {
                // The batch may sit in the file partially (torn write) or
                // fully (post-write fsync failure). The caller rolls the
                // transaction back in memory on this error, so truncate
                // the file back too — otherwise recovery would replay a
                // commit that was acknowledged as failed, conflicting
                // with whatever committed after it.
                match self.file.set_len(self.len) {
                    Ok(()) => telemetry::add("db.wal.failed_appends_truncated", 1),
                    Err(_) => {
                        self.poisoned = true;
                        telemetry::add("db.wal.poisoned", 1);
                        let _ = telemetry::trace::fault_dump("wal poisoned after failed append");
                    }
                }
                Err(e)
            }
        }
    }

    /// Truncate the log back to empty at the current generation.
    pub fn reset(&mut self) -> Result<()> {
        self.reset_to(self.generation)
    }

    /// Truncate the log back to empty and stamp a new generation (after a
    /// checkpoint wrote the snapshot at that generation).
    pub fn reset_to(&mut self, generation: u64) -> Result<()> {
        self.file
            .set_len(0)
            .map_err(|e| DbError::io("wal truncate", e))?;
        self.file
            .seek_start(0)
            .map_err(|e| DbError::io("wal seek", e))?;
        let header = wal_header(generation);
        self.file
            .write_all(&header)
            .map_err(|e| DbError::io("wal header write", e))?;
        self.file.flush().map_err(|e| DbError::io("wal flush", e))?;
        self.generation = generation;
        self.len = header.len() as u64;
        self.poisoned = false;
        Ok(())
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Generation stamped in the log header.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// What a full scan of a WAL file found: the committed records plus
/// everything recovery needs to decide whether (and how) to repair it.
#[derive(Debug, Clone)]
pub struct WalScan {
    /// Committed records, in order.
    pub records: Vec<WalRecord>,
    /// Generation from the header (0 for v1 files and torn headers).
    pub generation: u64,
    /// Header version found (0 if the header itself was torn).
    pub version: u32,
    /// File bytes covered by the header + committed prefix.
    pub committed_bytes: u64,
    /// Total file length.
    pub file_bytes: u64,
    /// Well-formed records discarded because no Commit marker followed.
    pub uncommitted: usize,
    /// A torn/corrupt record (or leftover bytes) stopped the scan early.
    pub torn_tail: bool,
    /// The file was shorter than its own header (crash during creation
    /// or during a header rewrite): treated as an empty log.
    pub torn_header: bool,
}

impl WalScan {
    /// Does the on-disk file differ from the committed prefix at the
    /// current format version (i.e. should recovery rewrite it)?
    pub fn needs_rewrite(&self) -> bool {
        self.torn_header
            || self.torn_tail
            || self.uncommitted > 0
            || self.version != FORMAT_VERSION
            || self.committed_bytes != self.file_bytes
    }

    fn empty(file_bytes: u64) -> WalScan {
        WalScan {
            records: Vec::new(),
            generation: 0,
            version: 0,
            committed_bytes: 0,
            file_bytes,
            uncommitted: 0,
            torn_tail: false,
            torn_header: true,
        }
    }
}

/// Scan a WAL file: parse the header, walk the framed records, and stop
/// at the first torn or corrupt one. Only records up to the last `Commit`
/// marker count as committed.
pub fn scan_wal(vfs: &dyn Vfs, path: &Path) -> Result<WalScan> {
    let _span = telemetry::span("db.wal.recover");
    let bytes = vfs.read(path).map_err(|e| DbError::io("wal read", e))?;
    let file_bytes = bytes.len() as u64;
    if bytes.len() < 4 {
        // Crash during creation before even the magic landed.
        return Ok(WalScan::empty(file_bytes));
    }
    if &bytes[..4] != WAL_MAGIC {
        return Err(DbError::Corrupt("bad WAL magic".into()));
    }
    if bytes.len() < 8 {
        return Ok(WalScan::empty(file_bytes));
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    let (generation, header_len) = match version {
        1 => (0u64, 8usize),
        2 => {
            if bytes.len() < 16 {
                return Ok(WalScan::empty(file_bytes));
            }
            let mut g = &bytes[8..16];
            (g.get_u64_le(), 16)
        }
        v => {
            return Err(DbError::Corrupt(format!("unsupported WAL version {v}")));
        }
    };
    let mut buf = &bytes[header_len..];
    let mut all = Vec::new();
    let mut committed_len = 0usize;
    let mut consumed = 0usize;
    let mut committed_body = 0usize;
    let torn_tail;
    loop {
        if buf.remaining() < 4 {
            torn_tail = buf.remaining() > 0;
            break;
        }
        let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if buf.remaining() < 4 + len + 8 {
            torn_tail = true;
            break;
        }
        let payload = &buf[4..4 + len];
        let mut sum_bytes = &buf[4 + len..4 + len + 8];
        let stored = sum_bytes.get_u64_le();
        if fnv1a(payload) != stored {
            torn_tail = true;
            break;
        }
        match decode_record(payload) {
            Ok(rec) => {
                let is_commit = rec == WalRecord::Commit;
                all.push(rec);
                consumed += 4 + len + 8;
                if is_commit {
                    committed_len = all.len();
                    committed_body = consumed;
                }
            }
            Err(_) => {
                torn_tail = true;
                break;
            }
        }
        buf.advance(4 + len + 8);
    }
    let uncommitted = all.len() - committed_len;
    all.truncate(committed_len);
    Ok(WalScan {
        records: all,
        generation,
        version,
        committed_bytes: (header_len + committed_body) as u64,
        file_bytes,
        uncommitted,
        torn_tail,
        torn_header: false,
    })
}

/// Read all *committed* records from a WAL file on the real file system.
///
/// Records after the last `Commit` marker, and anything after the first
/// corrupt/truncated record, are discarded.
pub fn read_wal(path: &Path) -> Result<Vec<WalRecord>> {
    Ok(scan_wal(&RealVfs, path)?.records)
}

// ---------------- snapshot ----------------

/// Serialize all tables to a snapshot file on the real file system
/// (generation 0 — use [`write_snapshot_with`] inside the engine).
pub fn write_snapshot(path: &Path, tables: &[(&String, &Table)]) -> Result<()> {
    write_snapshot_with(&RealVfs, path, tables, 0)
}

/// Serialize all tables to a snapshot file (atomic: write temp + fsync +
/// rename). A sync failure is propagated — a snapshot that may not have
/// reached stable storage must not replace the old one silently.
pub fn write_snapshot_with(
    vfs: &dyn Vfs,
    path: &Path,
    tables: &[(&String, &Table)],
    generation: u64,
) -> Result<()> {
    let mut buf = Vec::with_capacity(1 << 16);
    buf.put_slice(SNAPSHOT_MAGIC);
    buf.put_u32_le(FORMAT_VERSION);
    buf.put_u64_le(generation);
    buf.put_u32_le(tables.len() as u32);
    for (_, table) in tables {
        put_schema(&mut buf, &table.schema);
        buf.put_i64_le(table.next_auto_value());
        buf.put_u64_le(table.len() as u64);
        for (id, row) in table.iter() {
            buf.put_u64_le(id);
            put_row(&mut buf, row);
        }
        // persist explicit (non-implicit) indexes: name, column name, unique
        let named: Vec<_> = table
            .indexes
            .iter()
            .filter(|(n, _)| !n.starts_with("__uniq_"))
            .collect();
        buf.put_u32_le(named.len() as u32);
        for (name, ix) in named {
            put_str(&mut buf, name);
            put_str(&mut buf, &table.schema.columns[ix.column].name);
            buf.put_u8(ix.unique as u8);
        }
    }
    let sum = fnv1a(&buf);
    buf.put_u64_le(sum);
    let tmp = path.with_extension("tmp");
    {
        let mut f = vfs
            .create(&tmp)
            .map_err(|e| DbError::io("snapshot create", e))?;
        f.write_all(&buf)
            .map_err(|e| DbError::io("snapshot write", e))?;
        f.sync_all().map_err(|e| {
            telemetry::add("db.fsync_errors", 1);
            let _ = telemetry::trace::fault_dump("snapshot fsync failed");
            DbError::io("snapshot fsync", e)
        })?;
    }
    vfs.rename(&tmp, path)
        .map_err(|e| DbError::io("snapshot rename", e))?;
    Ok(())
}

/// Load tables from a snapshot file on the real file system.
pub fn read_snapshot(path: &Path) -> Result<Vec<Table>> {
    Ok(read_snapshot_with(&RealVfs, path)?.0)
}

/// Load tables (and the header generation) from a snapshot file.
pub fn read_snapshot_with(vfs: &dyn Vfs, path: &Path) -> Result<(Vec<Table>, u64)> {
    let bytes = vfs
        .read(path)
        .map_err(|e| DbError::io("snapshot read", e))?;
    if bytes.len() < 20 {
        return Err(DbError::Corrupt("snapshot too small".into()));
    }
    let body_len = bytes.len() - 8;
    let mut tail = &bytes[body_len..];
    let stored = tail.get_u64_le();
    if fnv1a(&bytes[..body_len]) != stored {
        return Err(DbError::Corrupt("snapshot checksum mismatch".into()));
    }
    let mut buf = &bytes[..body_len];
    if &buf[..4] != SNAPSHOT_MAGIC {
        return Err(DbError::Corrupt("bad snapshot magic".into()));
    }
    buf.advance(4);
    let version = buf.get_u32_le();
    let generation = match version {
        1 => 0,
        2 => {
            if buf.remaining() < 8 {
                return Err(DbError::Corrupt("truncated snapshot header".into()));
            }
            buf.get_u64_le()
        }
        v => {
            return Err(DbError::Corrupt(format!(
                "unsupported snapshot version {v}"
            )));
        }
    };
    if buf.remaining() < 4 {
        return Err(DbError::Corrupt("truncated snapshot header".into()));
    }
    let ntables = buf.get_u32_le() as usize;
    let mut tables = Vec::with_capacity(ntables);
    for _ in 0..ntables {
        let schema = get_schema(&mut buf)?;
        if buf.remaining() < 16 {
            return Err(DbError::Corrupt("truncated table header".into()));
        }
        let next_auto = buf.get_i64_le();
        let nrows = buf.get_u64_le() as usize;
        let mut table = Table::new(schema);
        for _ in 0..nrows {
            if buf.remaining() < 8 {
                return Err(DbError::Corrupt("truncated row id".into()));
            }
            let id = buf.get_u64_le();
            let row = get_row(&mut buf)?;
            table.insert_at(id, row)?;
        }
        table.set_next_auto_value(next_auto);
        if buf.remaining() < 4 {
            return Err(DbError::Corrupt("truncated index count".into()));
        }
        let nix = buf.get_u32_le() as usize;
        for _ in 0..nix {
            let name = get_str(&mut buf)?;
            let column = get_str(&mut buf)?;
            if buf.remaining() < 1 {
                return Err(DbError::Corrupt("truncated index flags".into()));
            }
            let unique = buf.get_u8() != 0;
            table.create_index(&name, &column, unique)?;
        }
        tables.push(table);
    }
    Ok((tables, generation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;
    use std::io::Write;

    fn sample_schema() -> TableSchema {
        TableSchema::new(
            "trial",
            vec![
                ColumnDef::new("id", DataType::Integer)
                    .primary_key()
                    .auto_increment(),
                ColumnDef::new("name", DataType::Text).not_null(),
                ColumnDef::new("nodes", DataType::Integer).default_value(1i64),
                ColumnDef::new("score", DataType::Double),
                ColumnDef::new("experiment", DataType::Integer).references("experiment", "id"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn value_roundtrip() {
        let vals = vec![
            Value::Null,
            Value::Int(-42),
            Value::Float(3.5),
            Value::Float(f64::NAN),
            Value::Text("λ profile".into()),
            Value::Bool(true),
            Value::Bytes(vec![0, 1, 255]),
        ];
        for v in vals {
            let mut buf = Vec::new();
            put_value(&mut buf, &v);
            let mut slice = buf.as_slice();
            let back = get_value(&mut slice).unwrap();
            assert_eq!(back, v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn schema_roundtrip() {
        let s = sample_schema();
        let mut buf = Vec::new();
        put_schema(&mut buf, &s);
        let mut slice = buf.as_slice();
        assert_eq!(get_schema(&mut slice).unwrap(), s);
    }

    #[test]
    fn record_roundtrip() {
        let records = vec![
            WalRecord::Insert {
                table: "t".into(),
                id: 7,
                row: vec![Value::Int(1), Value::Text("x".into())],
            },
            WalRecord::Delete {
                table: "t".into(),
                id: 7,
            },
            WalRecord::Update {
                table: "t".into(),
                id: 3,
                row: vec![Value::Null],
            },
            WalRecord::CreateTable {
                schema: sample_schema(),
            },
            WalRecord::DropTable { name: "t".into() },
            WalRecord::AddColumn {
                table: "t".into(),
                column: ColumnDef::new("c", DataType::Text),
            },
            WalRecord::DropColumn {
                table: "t".into(),
                column: "c".into(),
            },
            WalRecord::CreateIndex {
                table: "t".into(),
                name: "ix".into(),
                column: "c".into(),
                unique: true,
            },
            WalRecord::DropIndex {
                table: "t".into(),
                name: "ix".into(),
            },
            WalRecord::Commit,
        ];
        for rec in records {
            let enc = encode_record(&rec);
            assert_eq!(decode_record(&enc).unwrap(), rec);
        }
    }

    #[test]
    fn wal_append_and_read() {
        let dir = std::env::temp_dir().join(format!("pdmf_wal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal_append.pdmf");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&[
            WalRecord::Insert {
                table: "t".into(),
                id: 0,
                row: vec![Value::Int(1)],
            },
            WalRecord::Commit,
        ])
        .unwrap();
        wal.append(&[WalRecord::Delete {
            table: "t".into(),
            id: 0,
        }])
        .unwrap(); // no commit marker: must be dropped on read
        let recs = read_wal(&path).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1], WalRecord::Commit);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wal_torn_tail_recovery() {
        let dir = std::env::temp_dir().join(format!("pdmf_wal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal_torn.pdmf");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&[
            WalRecord::Insert {
                table: "t".into(),
                id: 0,
                row: vec![Value::Int(1)],
            },
            WalRecord::Commit,
        ])
        .unwrap();
        drop(wal);
        // Simulate a crash mid-append: write garbage bytes at the end.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[9, 9, 9]).unwrap();
        drop(f);
        let recs = read_wal(&path).unwrap();
        assert_eq!(recs.len(), 2, "committed prefix survives torn tail");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wal_corrupt_checksum_recovery() {
        let dir = std::env::temp_dir().join(format!("pdmf_wal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal_sum.pdmf");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&[WalRecord::Commit]).unwrap();
        let good_len = std::fs::metadata(&path).unwrap().len();
        wal.append(&[WalRecord::DropTable { name: "x".into() }, WalRecord::Commit])
            .unwrap();
        drop(wal);
        // Flip a byte inside the second batch.
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = good_len as usize + 5;
        bytes[idx] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let recs = read_wal(&path).unwrap();
        assert_eq!(recs, vec![WalRecord::Commit]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut table = Table::new(sample_schema());
        table
            .insert(vec![
                Value::Null,
                "a".into(),
                Value::Int(4),
                Value::Float(1.5),
                Value::Null,
            ])
            .unwrap();
        table
            .insert(vec![
                Value::Null,
                "b".into(),
                Value::Int(8),
                Value::Null,
                Value::Null,
            ])
            .unwrap();
        table.create_index("ix_nodes", "nodes", false).unwrap();
        // Leave a tombstone to verify ids survive.
        let c = table
            .insert(vec![
                Value::Null,
                "c".into(),
                Value::Int(2),
                Value::Null,
                Value::Null,
            ])
            .unwrap();
        table.delete(1).unwrap();
        assert_eq!(c, 2);

        let dir = std::env::temp_dir().join(format!("pdmf_snap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.pdmf");
        let name = "trial".to_string();
        write_snapshot(&path, &[(&name, &table)]).unwrap();
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back.len(), 1);
        let t2 = &back[0];
        assert_eq!(t2.schema, table.schema);
        assert_eq!(t2.len(), 2);
        assert_eq!(t2.row(0).unwrap()[1], Value::Text("a".into()));
        assert!(t2.row(1).is_none());
        assert_eq!(t2.row(2).unwrap()[1], Value::Text("c".into()));
        assert_eq!(t2.next_auto_value(), table.next_auto_value());
        assert!(t2.indexes.contains_key("ix_nodes"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_detects_corruption() {
        let table = Table::new(sample_schema());
        let dir = std::env::temp_dir().join(format!("pdmf_snap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap_bad.pdmf");
        let name = "trial".to_string();
        write_snapshot(&path, &[(&name, &table)]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_snapshot(&path), Err(DbError::Corrupt(_))));
        std::fs::remove_file(&path).unwrap();
    }
}
