/root/repo/target/debug/deps/multi_format_archive-985ce0b48bb9f513.d: tests/multi_format_archive.rs

/root/repo/target/debug/deps/multi_format_archive-985ce0b48bb9f513: tests/multi_format_archive.rs

tests/multi_format_archive.rs:
