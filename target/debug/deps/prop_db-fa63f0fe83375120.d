/root/repo/target/debug/deps/prop_db-fa63f0fe83375120.d: crates/db/tests/prop_db.rs

/root/repo/target/debug/deps/prop_db-fa63f0fe83375120: crates/db/tests/prop_db.rs

crates/db/tests/prop_db.rs:
