//! Property tests: randomized ground-truth profiles written in each tool
//! format parse back with their measurements intact.

use perfdmf_profile::{IntervalData, IntervalEvent, Metric, Profile, ThreadId};
use perfdmf_workload::{
    dynaprof_report_text, gprof_report_text, psrun_xml_text, sppm_timing_text, tau_file_text,
};
use proptest::prelude::*;

/// Random single-metric profile: `events` events × `threads` threads with
/// positive times and calls.
fn arb_profile() -> impl Strategy<Value = Profile> {
    (
        1usize..6, // events
        1usize..4, // threads
        proptest::collection::vec(0.001f64..1e4, 24),
        proptest::collection::vec(1u32..1000, 24),
    )
        .prop_map(|(n_events, n_threads, times, calls)| {
            let mut p = Profile::new("prop");
            let m = p.add_metric(Metric::measured("GET_TIME_OF_DAY"));
            let events: Vec<_> = (0..n_events)
                .map(|i| p.add_event(IntervalEvent::new(format!("routine_{i}"), "G")))
                .collect();
            p.add_threads((0..n_threads as u32).map(|n| ThreadId::new(n, 0, 0)));
            let mut k = 0;
            for &e in &events {
                for &t in p.threads().to_vec().iter() {
                    let excl = times[k % times.len()];
                    let c = calls[k % calls.len()] as f64;
                    k += 1;
                    p.set_interval(e, t, m, IntervalData::new(excl * 1.25, excl, c, 0.0));
                }
            }
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tau_text_roundtrips(p in arb_profile()) {
        let m = p.find_metric("GET_TIME_OF_DAY").unwrap();
        for &t in p.threads() {
            let text = tau_file_text(&p, m, t, false);
            let mut back = Profile::new("b");
            perfdmf_import::tau::parse_tau_text(&text, t, &mut back).unwrap();
            let bm = back.find_metric("GET_TIME_OF_DAY").unwrap();
            for (ei, ev) in p.events().iter().enumerate() {
                let orig = p.interval(perfdmf_profile::EventId(ei), t, m).unwrap();
                let be = back.find_event(&ev.name).unwrap();
                let got = back.interval(be, t, bm).unwrap();
                // TAU text uses shortest-float formatting: exact roundtrip
                prop_assert_eq!(got.exclusive(), orig.exclusive());
                prop_assert_eq!(got.inclusive(), orig.inclusive());
                prop_assert_eq!(got.calls(), orig.calls());
            }
        }
    }

    #[test]
    fn dynaprof_text_roundtrips(p in arb_profile()) {
        let m = p.find_metric("GET_TIME_OF_DAY").unwrap();
        let t = ThreadId::ZERO;
        let text = dynaprof_report_text(&p, m, t);
        let mut back = Profile::new("b");
        perfdmf_import::dynaprof::parse_dynaprof_text(&text, &mut back).unwrap();
        let bm = back.find_metric("GET_TIME_OF_DAY").unwrap();
        for (ei, ev) in p.events().iter().enumerate() {
            let orig = p.interval(perfdmf_profile::EventId(ei), t, m).unwrap();
            let be = back.find_event(&ev.name).unwrap();
            let got = back.interval(be, t, bm).unwrap();
            prop_assert_eq!(got.exclusive(), orig.exclusive());
            prop_assert_eq!(got.inclusive(), orig.inclusive());
        }
    }

    #[test]
    fn sppm_text_roundtrips(p in arb_profile()) {
        let m = p.find_metric("GET_TIME_OF_DAY").unwrap();
        let text = sppm_timing_text(&p, m);
        let mut back = Profile::new("b");
        perfdmf_import::sppm::parse_sppm_text(&text, &mut back).unwrap();
        let bm = back.find_metric("SPPM_TIME").unwrap();
        for (ei, ev) in p.events().iter().enumerate() {
            for &t in p.threads() {
                let orig = p.interval(perfdmf_profile::EventId(ei), t, m).unwrap();
                let name = ev.name.replace(' ', "_");
                let be = back.find_event(&name).unwrap();
                let got = back.interval(be, t, bm).unwrap();
                prop_assert_eq!(got.exclusive(), orig.exclusive());
                prop_assert_eq!(got.calls(), orig.calls());
            }
        }
    }

    #[test]
    fn psrun_xml_roundtrips(p in arb_profile()) {
        // psrun carries one event (whole program) with per-metric counters;
        // project the first event of the random profile.
        let t = ThreadId::ZERO;
        let text = psrun_xml_text(&p, t);
        let mut back = Profile::new("b");
        perfdmf_import::psrun::parse_psrun_text(&text, t, &mut back).unwrap();
        let orig = p
            .interval(perfdmf_profile::EventId(0), t, p.find_metric("GET_TIME_OF_DAY").unwrap())
            .unwrap();
        let bm = back.find_metric("GET_TIME_OF_DAY").unwrap();
        let be = back.find_event(&p.events()[0].name).unwrap();
        prop_assert_eq!(back.interval(be, t, bm).unwrap().inclusive(), orig.inclusive());
    }

    #[test]
    fn gprof_text_roundtrips_approximately(p in arb_profile()) {
        // gprof output has fixed decimal places; compare with tolerance.
        let m = p.find_metric("GET_TIME_OF_DAY").unwrap();
        let t = ThreadId::ZERO;
        let text = gprof_report_text(&p, m, t);
        let mut back = Profile::new("b");
        perfdmf_import::gprof::parse_gprof_text(&text, t, &mut back).unwrap();
        let bm = back.find_metric("GPROF_TIME").unwrap();
        for (ei, ev) in p.events().iter().enumerate() {
            let orig = p.interval(perfdmf_profile::EventId(ei), t, m).unwrap();
            let be = back.find_event(&ev.name).unwrap();
            let got = back.interval(be, t, bm).unwrap();
            let o = orig.exclusive().unwrap();
            let g = got.exclusive().unwrap();
            prop_assert!((o - g).abs() <= 5e-5 * (1.0 + o.abs()) + 5e-5, "{o} vs {g}");
            prop_assert_eq!(got.calls(), orig.calls());
        }
    }

    #[test]
    fn perfdmf_xml_roundtrips_exactly(p in arb_profile()) {
        let xml = perfdmf_import::export_xml(&p);
        let back = perfdmf_import::import_xml(&xml).unwrap();
        prop_assert_eq!(back.data_point_count(), p.data_point_count());
        let m = p.find_metric("GET_TIME_OF_DAY").unwrap();
        let bm = back.find_metric("GET_TIME_OF_DAY").unwrap();
        for (e, t, d) in p.iter_metric(m) {
            let be = back.find_event(&p.events()[e.0].name).unwrap();
            let got = back.interval(be, t, bm).unwrap();
            prop_assert_eq!(got.exclusive(), d.exclusive());
            prop_assert_eq!(got.inclusive(), d.inclusive());
            prop_assert_eq!(got.calls(), d.calls());
        }
    }

    #[test]
    fn cube_roundtrips_exclusives(p in arb_profile()) {
        let xml = perfdmf_import::export_cube(&p);
        let back = perfdmf_import::import_cube(&xml).unwrap();
        let m = p.find_metric("GET_TIME_OF_DAY").unwrap();
        let bm = back.find_metric("GET_TIME_OF_DAY").unwrap();
        for (e, t, d) in p.iter_metric(m) {
            let be = back.find_event(&p.events()[e.0].name).unwrap();
            let got = back.interval(be, t, bm).unwrap();
            prop_assert_eq!(got.exclusive(), d.exclusive());
        }
    }
}
