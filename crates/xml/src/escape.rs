//! Entity escaping and unescaping.
//!
//! Only the five predefined XML entities (`lt`, `gt`, `amp`, `apos`,
//! `quot`) and numeric character references (`&#nnn;`, `&#xhh;`) are
//! supported; this is what profile-tool XML uses in practice.

use crate::error::{Error, Result};
use std::borrow::Cow;

/// Escape text content: `&`, `<`, `>`.
///
/// Returns a borrowed string when no escaping is needed, avoiding an
/// allocation on the (overwhelmingly common) clean path.
pub fn escape_text(s: &str) -> Cow<'_, str> {
    escape_impl(s, false)
}

/// Escape attribute-value content: `&`, `<`, `>`, `"`, `'`.
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    escape_impl(s, true)
}

fn escape_impl(s: &str, attr: bool) -> Cow<'_, str> {
    let needs = |c: char| matches!(c, '&' | '<' | '>') || (attr && matches!(c, '"' | '\''));
    if !s.chars().any(needs) {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            '\'' if attr => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    Cow::Owned(out)
}

/// Resolve entity and character references in `s`.
///
/// `offset` is the byte position of `s` in the overall document and is used
/// only to report accurate error locations.
pub fn unescape(s: &str) -> Result<Cow<'_, str>> {
    unescape_at(s, 0)
}

pub(crate) fn unescape_at(s: &str, offset: usize) -> Result<Cow<'_, str>> {
    if !s.contains('&') {
        return Ok(Cow::Borrowed(s));
    }
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Copy a run of non-entity bytes at once.
            let start = i;
            while i < bytes.len() && bytes[i] != b'&' {
                i += 1;
            }
            out.push_str(&s[start..i]);
            continue;
        }
        let semi = s[i..]
            .find(';')
            .map(|p| i + p)
            .ok_or(Error::UnexpectedEof {
                context: "entity reference",
            })?;
        let name = &s[i + 1..semi];
        match name {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ if name.starts_with('#') => {
                let code = if let Some(hex) = name.strip_prefix("#x").or(name.strip_prefix("#X")) {
                    u32::from_str_radix(hex, 16)
                } else {
                    name[1..].parse::<u32>()
                };
                let c = code
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| Error::UnknownEntity {
                        name: name.to_string(),
                        offset: offset + i,
                    })?;
                out.push(c);
            }
            _ => {
                return Err(Error::UnknownEntity {
                    name: name.to_string(),
                    offset: offset + i,
                })
            }
        }
        i = semi + 1;
    }
    Ok(Cow::Owned(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_text_borrows() {
        assert!(matches!(escape_text("hello world"), Cow::Borrowed(_)));
        assert!(matches!(unescape("hello world").unwrap(), Cow::Borrowed(_)));
    }

    #[test]
    fn escapes_text_specials() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
    }

    #[test]
    fn escapes_attr_quotes() {
        assert_eq!(
            escape_attr(r#"say "hi" & 'bye'"#),
            "say &quot;hi&quot; &amp; &apos;bye&apos;"
        );
        // Text escaping leaves quotes alone.
        assert_eq!(escape_text(r#""q""#), r#""q""#);
    }

    #[test]
    fn unescape_predefined() {
        assert_eq!(
            unescape("&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos;").unwrap(),
            "<x> & \"y\" 'z'"
        );
    }

    #[test]
    fn unescape_numeric() {
        assert_eq!(unescape("&#65;&#x42;&#X43;").unwrap(), "ABC");
        assert_eq!(unescape("&#955;").unwrap(), "λ");
    }

    #[test]
    fn unescape_rejects_unknown() {
        assert!(matches!(
            unescape("&bogus;"),
            Err(Error::UnknownEntity { .. })
        ));
        assert!(matches!(
            unescape("&#xZZ;"),
            Err(Error::UnknownEntity { .. })
        ));
        // Surrogate code point is not a valid char.
        assert!(unescape("&#xD800;").is_err());
    }

    #[test]
    fn unescape_unterminated() {
        assert!(matches!(unescape("&amp"), Err(Error::UnexpectedEof { .. })));
    }

    #[test]
    fn roundtrip_escape_unescape() {
        let cases = [
            "",
            "plain",
            "a<b",
            "x & y",
            "\"quoted\" 'single'",
            "λ→μ",
            "MPI_Send()",
        ];
        for c in cases {
            assert_eq!(unescape(&escape_attr(c)).unwrap(), c, "case {c:?}");
            assert_eq!(unescape(&escape_text(c)).unwrap(), c, "case {c:?}");
        }
    }
}
