//! End-to-end tests of the `perfdmf` command-line tool: import into a
//! persistent archive, browse, query, export, derive, and cluster.

use perfdmf::workload::{write_tau_directory, Evh1Model, SppmModel};
use std::path::PathBuf;
use std::process::Command;

fn bin() -> PathBuf {
    // target/debug/perfdmf next to the test binary
    let mut p = std::env::current_exe().unwrap();
    p.pop(); // deps/
    p.pop(); // debug/
    p.push("perfdmf");
    p
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("spawn perfdmf CLI");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "pdmf_cli_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn full_cli_workflow() {
    let root = tmpdir("flow");
    let db = root.join("archive");
    let db_s = db.to_string_lossy().into_owned();

    // --- make tool output and import it ---
    let run_dir = root.join("tau_run");
    write_tau_directory(&Evh1Model::default_mix(77).generate(4), &run_dir).unwrap();
    let (out, err, ok) = run(&[
        "import",
        "--db",
        &db_s,
        "--app",
        "evh1",
        "--exp",
        "cli",
        &run_dir.to_string_lossy(),
    ]);
    assert!(ok, "import failed: {err}");
    assert!(out.contains("as trial 1"), "{out}");

    // --- list ---
    let (out, _, ok) = run(&["list", "--db", &db_s]);
    assert!(ok);
    assert!(out.contains("application 1: evh1"));
    assert!(out.contains("trial 1:"));

    // --- raw SQL ---
    let (out, _, ok) = run(&[
        "sql",
        "--db",
        &db_s,
        "SELECT COUNT(*) AS n FROM interval_location_profile",
    ]);
    assert!(ok);
    assert!(out.contains("(1 rows)"), "{out}");

    // --- derive a metric, visible afterwards ---
    let (_, err, ok) = run(&[
        "derive",
        "--db",
        &db_s,
        "--trial",
        "1",
        "TIME_MS",
        "GET_TIME_OF_DAY * 1000",
    ]);
    assert!(ok, "derive failed: {err}");
    let (out, _, ok) = run(&[
        "sql",
        "--db",
        &db_s,
        "SELECT name FROM metric WHERE derived = TRUE",
    ]);
    assert!(ok);
    assert!(out.contains("TIME_MS"), "{out}");

    // --- export to XML and reimport via the library ---
    let xml_path = root.join("trial1.xml");
    let (_, err, ok) = run(&[
        "export",
        "--db",
        &db_s,
        "--trial",
        "1",
        "--out",
        &xml_path.to_string_lossy(),
    ]);
    assert!(ok, "export failed: {err}");
    let xml = std::fs::read_to_string(&xml_path).unwrap();
    let back = perfdmf::import::import_xml(&xml).unwrap();
    assert_eq!(back.threads().len(), 4);
    assert!(back.find_metric("TIME_MS").is_some());

    // --- dump the archive and restore it into a second database ---
    let dump_dir = root.join("exported");
    let (out, err, ok) = run(&["dump", "--db", &db_s, "--out", &dump_dir.to_string_lossy()]);
    assert!(ok, "dump failed: {err}");
    assert!(out.contains("dumped 1 trial"), "{out}");
    let db2 = root.join("archive2");
    let (out, err, ok) = run(&[
        "restore",
        "--db",
        &db2.to_string_lossy(),
        "--from",
        &dump_dir.to_string_lossy(),
    ]);
    assert!(ok, "restore failed: {err}");
    assert!(out.contains("restored 1 trial"), "{out}");
    let (out, _, ok) = run(&["list", "--db", &db2.to_string_lossy()]);
    assert!(ok);
    assert!(out.contains("evh1"), "{out}");

    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn cli_speedup_and_cluster() {
    let root = tmpdir("analysis");
    let db = root.join("archive");
    let db_s = db.to_string_lossy().into_owned();

    // several scaling trials
    let model = Evh1Model::default_mix(3);
    for p in [1usize, 2, 4, 8] {
        let dir = root.join(format!("run_p{p}"));
        write_tau_directory(&model.generate(p), &dir).unwrap();
        let (_, err, ok) = run(&[
            "import",
            "--db",
            &db_s,
            "--app",
            "evh1",
            "--exp",
            "scaling",
            &dir.to_string_lossy(),
        ]);
        assert!(ok, "{err}");
    }
    let (out, err, ok) = run(&[
        "speedup",
        "--db",
        &db_s,
        "--exp",
        "1",
        "--metric",
        "GET_TIME_OF_DAY",
    ]);
    assert!(ok, "speedup failed: {err}");
    assert!(out.contains("speedup"), "{out}");
    assert!(out.contains("sweep_x_stage1"), "{out}");

    // a counter trial for clustering
    let (sppm, _) = SppmModel::default_classes(5).generate(64, &[0.5, 0.3, 0.2]);
    {
        // store through the library (CLI imports files; this trial is synthetic)
        let conn = perfdmf::db::Connection::open(&db).unwrap();
        let mut session = perfdmf::core::DatabaseSession::new(conn.clone()).unwrap();
        session.store_profile("sppm", "counters", &sppm).unwrap();
        conn.checkpoint().unwrap();
    }
    // regression scan over the scaling history (MPI routines regress with scale)
    let (out, err, ok) = run(&[
        "regress",
        "--db",
        &db_s,
        "--exp",
        "1",
        "--threshold",
        "0.25",
    ]);
    assert!(ok, "regress failed: {err}");
    assert!(out.contains("compared 3 consecutive trial pairs"), "{out}");
    // doubling processors halves the compute sweeps: flagged as "faster"
    assert!(out.contains("(faster)"), "{out}");
    assert!(out.contains("sweep_"), "{out}");

    let (out, err, ok) = run(&[
        "cluster",
        "--db",
        &db_s,
        "--trial",
        "5",
        "--event",
        "sppm_timestep",
    ]);
    assert!(ok, "cluster failed: {err}\n{out}");
    assert!(out.contains("k = 3"), "{out}");
    assert!(out.contains("PAPI_FP_OPS"), "{out}");

    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn cli_errors_are_clean() {
    let (_, err, ok) = run(&["bogus-command"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
    let (_, err, ok) = run(&["sql"]);
    assert!(!ok);
    assert!(err.contains("--db"));
    let root = tmpdir("err");
    let db_s = root.join("db").to_string_lossy().into_owned();
    let (_, err, ok) = run(&["sql", "--db", &db_s, "SELEKT 1"]);
    assert!(!ok);
    assert!(err.contains("parse error"), "{err}");
    std::fs::remove_dir_all(&root).unwrap();
}
