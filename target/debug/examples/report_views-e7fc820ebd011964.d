/root/repo/target/debug/examples/report_views-e7fc820ebd011964.d: examples/report_views.rs

/root/repo/target/debug/examples/report_views-e7fc820ebd011964: examples/report_views.rs

examples/report_views.rs:
