//! Regression tests for the idempotency and session-lifecycle defects
//! found in review:
//!
//! * key spaces are **server-assigned** (granted in `HelloAck`), so two
//!   clients — even in different processes — can never draw colliding
//!   keys and replay each other's cached responses;
//! * a retry that arrives while the original keyed request is still
//!   executing waits for its outcome instead of executing the write a
//!   second time (in-flight replay-cache markers);
//! * fault-injection requests (`Stall`, `InjectPanic`) are rejected at
//!   the network boundary unless the server opts in for testing;
//! * finished session thread handles are reaped by the acceptor instead
//!   of accumulating for the life of the server.

use perfdmf_core::DatabaseSession;
use perfdmf_db::Connection;
use perfdmf_explorer::{ClusterMethod, FeatureSpace, Request, Response, RetryPolicy};
use perfdmf_profile::{IntervalData, IntervalEvent, Metric, Profile, ThreadId};
use perfdmf_server::{ExecutorMode, NetClient, NetFaultPlan, PerfdmfServer, ServerConfig};
use std::time::{Duration, Instant};

/// Small two-group trial so clustering requests do real work.
fn seeded_database() -> (Connection, i64) {
    let conn = Connection::open_in_memory();
    let mut session = DatabaseSession::new(conn.clone()).expect("schema");
    let mut p = Profile::new("idem");
    let m = p.add_metric(Metric::measured("TIME"));
    let a = p.add_event(IntervalEvent::ungrouped("compute"));
    let b = p.add_event(IntervalEvent::ungrouped("exchange"));
    p.add_threads((0..8).map(|n| ThreadId::new(n, 0, 0)));
    for (i, &t) in p.threads().to_vec().iter().enumerate() {
        let (ca, cb) = if i < 4 { (100.0, 5.0) } else { (10.0, 80.0) };
        p.set_interval(a, t, m, IntervalData::new(ca, ca, 10.0, 0.0));
        p.set_interval(b, t, m, IntervalData::new(cb, cb, 10.0, 0.0));
    }
    let trial = session
        .store_profile("idem-app", "idem-exp", &p)
        .expect("store");
    (conn, trial)
}

fn cluster_request(trial_id: i64) -> Request {
    Request::ClusterTrial {
        trial_id,
        features: FeatureSpace::EventsOfMetric("TIME".into()),
        k: None,
        max_k: 4,
        pca_components: 0,
        method: ClusterMethod::KMeans,
    }
}

#[test]
fn key_spaces_are_server_assigned_distinct_and_stable() {
    let (conn, _trial) = seeded_database();
    let server = PerfdmfServer::start(conn).expect("server start");

    // Two fresh clients: each adopts the space granted in HelloAck.
    let mut a = NetClient::new(server.addr(), "space-a");
    let mut b = NetClient::new(server.addr(), "space-b");
    assert_eq!(a.key_space(), 0, "no space before the first handshake");
    assert!(a.ping());
    assert!(b.ping());
    assert_ne!(a.key_space(), 0, "handshake must grant a key space");
    assert_ne!(b.key_space(), 0);
    assert_ne!(
        a.key_space(),
        b.key_space(),
        "concurrent clients must never share a key space"
    );
    assert_eq!(
        a.key_space(),
        a.session() & 0xFFFF_FFFF,
        "the space is derived from the server-unique session id"
    );
    a.close();
    b.close();

    // A reconnecting client keeps its original space: keys drawn before
    // the reconnect must stay in a space no other client can be granted.
    let mut c = NetClient::new(server.addr(), "space-c")
        .with_fault_plan(NetFaultPlan::seeded(7).disconnect_after(200));
    assert!(c.ping());
    let first_space = c.key_space();
    for _ in 0..20 {
        let _ = c.request(Request::Ping);
    }
    assert!(c.connects() > 1, "the fault plan must force reconnects");
    assert_eq!(
        c.key_space(),
        first_space,
        "the key space must survive reconnects"
    );
    c.close();
    server.shutdown();
}

#[test]
fn concurrent_duplicate_with_same_key_executes_once() {
    let (conn, trial) = seeded_database();
    let server = PerfdmfServer::start_with_config(
        conn,
        ServerConfig {
            workers: 1,
            // The staller below needs Stall over the wire.
            allow_fault_injection: true,
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    let addr = server.addr();

    // Park the single worker so both duplicates are in flight at once.
    let staller = std::thread::spawn(move || {
        let mut c = NetClient::new(addr, "staller").with_policy(RetryPolicy::none());
        c.request(Request::Stall { millis: 800 });
        c.close();
    });
    std::thread::sleep(Duration::from_millis(100));

    // Two clients race the same idempotency key while the original is
    // still queued/executing. Without the in-flight marker both would
    // miss the replay cache and the write would apply twice — visible
    // as two distinct settings_ids.
    let key = 0x5EED_0001u64;
    let racers: Vec<_> = (0..2)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = NetClient::new(addr, format!("racer-{i}"));
                let response = c.request_keyed(cluster_request(trial), key);
                c.close();
                response
            })
        })
        .collect();
    let settings: Vec<i64> = racers
        .into_iter()
        .map(|h| match h.join().expect("racer must not panic") {
            Response::Clustering { settings_id, .. } => settings_id,
            other => panic!("duplicate race must still answer the request: {other:?}"),
        })
        .collect();
    assert_eq!(
        settings[0], settings[1],
        "a concurrent retry of an in-flight key must replay, not re-execute"
    );
    staller.join().unwrap();
    server.shutdown();
}

#[test]
fn fault_injection_requests_are_rejected_by_default() {
    let (conn, _trial) = seeded_database();
    let server = PerfdmfServer::start(conn).expect("server start");
    let mut client = NetClient::new(server.addr(), "hostile").with_policy(RetryPolicy::none());
    for request in [
        Request::Stall { millis: 10 },
        Request::InjectPanic("boom".into()),
        Request::Shutdown,
    ] {
        match client.request(request.clone()) {
            Response::Error(reason) => assert!(
                reason.contains("not accepted over the network"),
                "unexpected rejection reason for {request:?}: {reason}"
            ),
            other => panic!("{request:?} must be rejected at the boundary, got {other:?}"),
        }
    }
    // The server is still healthy afterwards.
    assert!(client.ping());
    client.close();
    server.shutdown();
}

/// A threaded-executor server (the event loop tracks no per-session
/// thread handles, so these reap tests pin [`ExecutorMode::Threads`]).
fn threads_server(conn: Connection) -> PerfdmfServer {
    PerfdmfServer::start_with_config(
        conn,
        ServerConfig {
            executor: ExecutorMode::Threads,
            ..ServerConfig::default()
        },
    )
    .expect("server start")
}

#[test]
fn finished_session_handles_are_reaped() {
    let (conn, _trial) = seeded_database();
    let server = threads_server(conn);

    for i in 0..8 {
        let mut c = NetClient::new(server.addr(), format!("churn-{i}"));
        assert!(c.ping());
        c.close();
    }

    // Session threads take a moment to finish after the close; poll
    // with fresh connections until the tracked-handle count collapses
    // to the live tail.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut c = NetClient::new(server.addr(), "reap-probe");
        assert!(c.ping());
        c.close();
        let tracked = server.tracked_session_handles();
        if tracked <= 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "handles never reaped: still tracking {tracked}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    server.shutdown();
}

#[test]
fn finished_session_handles_are_reaped_without_new_connections() {
    // Regression: the acceptor used to sweep finished handles only on
    // *accept*, so a server that went quiet after a burst kept every
    // dead handle for its lifetime. The sweep now also runs on the
    // acceptor's idle tick — the count must collapse with no further
    // connections arriving.
    let (conn, _trial) = seeded_database();
    let server = threads_server(conn);

    for i in 0..8 {
        let mut c = NetClient::new(server.addr(), format!("quiet-churn-{i}"));
        assert!(c.ping());
        c.close();
    }

    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let tracked = server.tracked_session_handles();
        if tracked == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "idle tick never reaped: still tracking {tracked}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    server.shutdown();
}
