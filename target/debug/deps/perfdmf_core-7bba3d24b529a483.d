/root/repo/target/debug/deps/perfdmf_core-7bba3d24b529a483.d: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/objects.rs crates/core/src/schema.rs crates/core/src/session.rs crates/core/src/upload.rs Cargo.toml

/root/repo/target/debug/deps/libperfdmf_core-7bba3d24b529a483.rmeta: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/objects.rs crates/core/src/schema.rs crates/core/src/session.rs crates/core/src/upload.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/archive.rs:
crates/core/src/objects.rs:
crates/core/src/schema.rs:
crates/core/src/session.rs:
crates/core/src/upload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
