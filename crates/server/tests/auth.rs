//! Shared-secret session authentication at the front door.
//!
//! When a server is configured with a token, every handshake must
//! present it: a match grants an authenticated session (visible in the
//! `perfdmf_sessions` system table), a mismatch or absence is rejected
//! with a typed `AuthFailed` before any session state is created, and
//! the client gives up immediately — re-presenting the same bad token
//! can never succeed, so retrying would only hammer the server.

use perfdmf_core::DatabaseSession;
use perfdmf_db::Connection;
use perfdmf_explorer::Response;
use perfdmf_server::{NetClient, PerfdmfServer, ServerConfig};
use std::time::{Duration, Instant};

fn open_database() -> Connection {
    let conn = Connection::open_in_memory();
    let _session = DatabaseSession::new(conn.clone()).expect("schema");
    conn
}

fn guarded_server(conn: Connection) -> PerfdmfServer {
    PerfdmfServer::start_with_config(
        conn,
        ServerConfig {
            workers: 2,
            token: Some("sesame".into()),
            ..ServerConfig::default()
        },
    )
    .expect("server start")
}

fn counter(name: &str) -> u64 {
    perfdmf_telemetry::snapshot()
        .counter(name)
        .map(|c| c.value)
        .unwrap_or(0)
}

#[test]
fn right_token_authenticates_and_marks_the_session() {
    let conn = open_database();
    let server = guarded_server(conn.clone());
    let mut client = NetClient::new(server.addr(), "auth-good").with_token(Some("sesame".into()));
    assert!(client.ping(), "the right token must be admitted");
    let session = client.session();
    client.close();

    // The registry row claims authentication — and so does the
    // `perfdmf_sessions` system table the registry backs.
    let record = perfdmf_telemetry::sessions::log()
        .into_iter()
        .find(|r| r.id == session)
        .expect("session record");
    assert!(record.authenticated, "verified token must mark the record");
    match conn
        .execute(
            &format!("SELECT authenticated FROM perfdmf_sessions WHERE id = {session}"),
            &[],
        )
        .expect("query sessions table")
    {
        perfdmf_db::Outcome::Rows(rs) => {
            assert_eq!(rs.rows[0][0].as_int(), Some(1), "authenticated column");
        }
        other => panic!("unexpected outcome {other:?}"),
    }
    server.shutdown();
}

#[test]
fn wrong_token_is_rejected_without_retries() {
    let conn = open_database();
    let server = guarded_server(conn);
    let failures_before = counter("server.auth_failures");
    let retries_before = counter("netclient.retries");

    let mut client = NetClient::new(server.addr(), "auth-bad").with_token(Some("swordfish".into()));
    let started = Instant::now();
    let response = client.request(perfdmf_explorer::Request::Ping);
    let elapsed = started.elapsed();
    match response {
        Response::Error(reason) => assert!(
            reason.contains("authentication rejected") && reason.contains("mismatch"),
            "got: {reason}"
        ),
        other => panic!("expected a terminal auth error, got {other:?}"),
    }
    // Terminal means terminal: no backoff retries burned on a
    // credential that cannot start working.
    assert_eq!(
        counter("netclient.retries"),
        retries_before,
        "auth rejection must not be retried"
    );
    assert!(
        elapsed < Duration::from_secs(2),
        "rejection must be immediate, took {elapsed:?}"
    );
    assert!(
        counter("server.auth_failures") > failures_before,
        "the failure must be counted server-side"
    );
    // No session record exists for the rejected handshake.
    assert!(
        !perfdmf_telemetry::sessions::log()
            .iter()
            .any(|r| r.tenant == "auth-bad"),
        "a rejected handshake must not create a session record"
    );
    server.shutdown();
}

#[test]
fn missing_token_is_rejected_when_required() {
    let conn = open_database();
    let server = guarded_server(conn);
    let mut client = NetClient::new(server.addr(), "auth-none").with_token(None);
    match client.request(perfdmf_explorer::Request::Ping) {
        Response::Error(reason) => assert!(reason.contains("required"), "got: {reason}"),
        other => panic!("expected a terminal auth error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn open_server_admits_but_does_not_claim_authentication() {
    let conn = open_database();
    let server = PerfdmfServer::start_with_config(
        conn,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    // Even a client that volunteers a token is admitted — but nothing
    // was verified, so the session must not claim authentication.
    let mut client =
        NetClient::new(server.addr(), "auth-open").with_token(Some("unchecked".into()));
    assert!(client.ping());
    let session = client.session();
    client.close();
    let record = perfdmf_telemetry::sessions::log()
        .into_iter()
        .find(|r| r.id == session)
        .expect("session record");
    assert!(
        !record.authenticated,
        "an open server verifies nothing and must claim nothing"
    );
    server.shutdown();
}
