//! Logical-plan IR, rule-based optimizer, and physical access selection
//! for SELECT execution.
//!
//! Pipeline (entry point [`plan_select`]):
//!
//! 1. [`ir::lower`] turns a parsed `Select` into the canonical
//!    [`ir::LogicalPlan`] operator tree.
//! 2. [`rules::optimize`] applies the enabled rewrite rules (predicate
//!    pushdown, join reordering, sort elision, LIMIT pushdown,
//!    projection pruning), recording a trail of what fired.
//! 3. [`cost::decide_access`] picks each scan's physical access method
//!    (columnar / index / index-order / seq) from table and index
//!    statistics. This runs even with the optimizer off.
//!
//! The executor and the EXPLAIN renderer in `exec::select` both consume
//! the resulting [`ir::PlannedSelect`], so the printed plan cannot
//! drift from what actually runs. Plan-build and rewrite timings feed
//! the `db.plan.*` telemetry counters (queryable through the
//! `perfdmf_counters` system table).

pub(crate) mod cost;
pub(crate) mod ir;
pub mod rules;

pub use rules::{optimizer_config, override_for_thread, OptimizerConfig, OptimizerOverrideGuard};

use crate::database::Database;
use crate::error::Result;
use crate::sql::ast::Select;
use crate::value::Value;
use perfdmf_telemetry as telemetry;

/// Lower, optimize, and access-annotate a SELECT.
///
/// `had_subqueries` reports whether the *original* statement contained
/// subqueries (the executor plans the resolved statement, EXPLAIN the
/// unresolved one; gating rules on this shared flag keeps their plan
/// shapes identical).
pub(crate) fn plan_select<'a>(
    db: &'a Database,
    sel: &Select,
    params: &[Value],
    had_subqueries: bool,
) -> Result<ir::PlannedSelect<'a>> {
    let t0 = std::time::Instant::now();
    let root = ir::lower(db, sel)?;
    telemetry::add("db.plan.builds", 1);
    telemetry::add("db.plan.build_ns", elapsed_ns(t0));

    let cfg = rules::optimizer_config();
    let t1 = std::time::Instant::now();
    let (mut root, trail) = rules::optimize(root, &cfg, had_subqueries);
    cost::decide_access(&mut root, params, had_subqueries)?;
    telemetry::add("db.plan.rewrite_ns", elapsed_ns(t1));
    telemetry::add("db.plan.rules_fired", trail.len() as u64);

    Ok(ir::PlannedSelect {
        root,
        trail,
        optimizer_off: !cfg.enabled,
    })
}

fn elapsed_ns(t0: std::time::Instant) -> u64 {
    t0.elapsed().as_nanos().min(u64::MAX as u128) as u64
}
