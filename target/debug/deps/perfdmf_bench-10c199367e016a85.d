/root/repo/target/debug/deps/perfdmf_bench-10c199367e016a85.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libperfdmf_bench-10c199367e016a85.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
