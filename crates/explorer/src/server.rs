//! The PerfExplorer analysis server.
//!
//! Figure 3 of the paper: client → PerfExplorer server → PerfDMF →
//! DBMS, with the statistics package (R in the paper, `perfdmf-analysis`
//! here) on the side; results are saved back through the PerfDMF API.
//!
//! "Because PerfDMF is flexible and extensible, the PerfExplorer
//! developers were able to extend the PerfDMF database API to support
//! saving and retrieving analysis results" — mirrored here by the
//! `analysis_settings` / `analysis_result` tables created on startup.

use crate::protocol::{ClusterMethod, ClusterSummary, FeatureSpace, Request, Response};
use crossbeam::channel::{bounded, Receiver, Sender};
use perfdmf_analysis::{
    correlation_matrix, kmeans, pca, select_k, silhouette_score, thread_event_matrix,
    thread_metric_matrix, FeatureMatrix,
};
use perfdmf_core::load_trial;
use perfdmf_db::{Connection, Value};
use perfdmf_profile::IntervalField;
use perfdmf_telemetry as telemetry;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;
use std::time::Instant;

/// Default bound on the request queue. Submissions beyond what the
/// workers can drain plus this backlog are shed with
/// [`Response::Overloaded`] instead of growing memory without bound.
pub const DEFAULT_QUEUE_CAPACITY: usize = 256;

/// DDL for the analysis-result schema extension.
pub const ANALYSIS_DDL: &[&str] = &[
    "CREATE TABLE IF NOT EXISTS analysis_settings (
        id INTEGER PRIMARY KEY AUTO_INCREMENT,
        trial INTEGER NOT NULL REFERENCES trial(id),
        method TEXT NOT NULL,
        metric TEXT,
        parameters TEXT)",
    "CREATE TABLE IF NOT EXISTS analysis_result (
        id INTEGER PRIMARY KEY AUTO_INCREMENT,
        settings INTEGER NOT NULL REFERENCES analysis_settings(id),
        result_type TEXT NOT NULL,
        item INTEGER,
        value DOUBLE,
        label TEXT)",
];

/// A queued request: what to do, where to reply, when it was submitted
/// (for the `explorer.queue_wait_ns` histogram), and the optional
/// deadline after which a worker discards it unserved.
pub(crate) struct Job {
    pub(crate) request: Request,
    pub(crate) reply: Sender<Response>,
    pub(crate) submitted: Instant,
    pub(crate) deadline: Option<Instant>,
    /// Trace context captured on the submitting thread, so the worker's
    /// `explorer.request` span is a child of the client-side trace.
    pub(crate) trace: Option<telemetry::SpanContext>,
    /// Resource meter captured on the submitting thread, so queue wait,
    /// execute time, and everything the handler touches (rows, chunk
    /// cache, WAL) is charged to the originating request.
    pub(crate) meter: Option<telemetry::RequestMeter>,
    /// Invoked after the reply is sent (even for sheds, panics, and
    /// expired deadlines). Event-driven callers register a waker here so
    /// they can park on readiness instead of blocking on the channel.
    pub(crate) notify: Option<std::sync::Arc<dyn Fn() + Send + Sync>>,
}

/// Send `response` on `reply` and poke the submitter's waker, if any.
/// Every dequeued job goes through here so the "answered exactly once,
/// notified exactly once" contract has a single enforcement point.
fn send_reply(
    reply: &Sender<Response>,
    notify: &Option<std::sync::Arc<dyn Fn() + Send + Sync>>,
    response: Response,
) {
    let _ = reply.send(response);
    if let Some(notify) = notify {
        notify();
    }
}

/// How one incarnation of a worker loop ended.
enum WorkerExit {
    /// A `Shutdown` request was dequeued; the thread should exit.
    Shutdown,
    /// The channel closed (server dropped); the thread should exit.
    Disconnected,
    /// A request handler panicked. The panic was isolated, the client
    /// was answered with [`Response::Failed`], and the loop should be
    /// restarted with fresh state.
    Panicked,
}

/// A running analysis server with a pool of worker threads.
pub struct AnalysisServer {
    tx: Sender<Job>,
    workers: Vec<JoinHandle<()>>,
}

impl AnalysisServer {
    /// Start `workers` worker threads over the shared database, with the
    /// [`DEFAULT_QUEUE_CAPACITY`] request-queue bound.
    pub fn start(conn: Connection, workers: usize) -> perfdmf_db::Result<AnalysisServer> {
        AnalysisServer::start_with_capacity(conn, workers, DEFAULT_QUEUE_CAPACITY)
    }

    /// Start `workers` worker threads with an explicit bound on the
    /// request queue. When the queue is full, clients shed new requests
    /// as [`Response::Overloaded`] instead of blocking.
    pub fn start_with_capacity(
        conn: Connection,
        workers: usize,
        queue_capacity: usize,
    ) -> perfdmf_db::Result<AnalysisServer> {
        for ddl in ANALYSIS_DDL {
            conn.execute(ddl, &[])?;
        }
        let (tx, rx) = bounded::<Job>(queue_capacity.max(1));
        let mut handles = Vec::with_capacity(workers.max(1));
        for _ in 0..workers.max(1) {
            let rx = rx.clone();
            let conn = conn.clone();
            handles.push(std::thread::spawn(move || loop {
                match worker_loop(&conn, &rx) {
                    WorkerExit::Shutdown | WorkerExit::Disconnected => break,
                    WorkerExit::Panicked => {
                        telemetry::add("explorer.worker_restarts", 1);
                    }
                }
            }));
        }
        Ok(AnalysisServer {
            tx,
            workers: handles,
        })
    }

    /// A submission handle for building clients.
    pub(crate) fn sender(&self) -> Sender<Job> {
        self.tx.clone()
    }

    /// Stop all workers and wait for them.
    pub fn shutdown(self) {
        for _ in &self.workers {
            let (rtx, _rrx) = bounded(1);
            let _ = self.tx.send(Job {
                request: Request::Shutdown,
                reply: rtx,
                submitted: Instant::now(),
                deadline: None,
                trace: None,
                meter: None,
                notify: None,
            });
        }
        for h in self.workers {
            let _ = h.join();
        }
    }
}

/// One incarnation of a worker: drain the queue until shutdown,
/// disconnect, or a handler panic (which the caller turns into a
/// restart). Every dequeued job is answered exactly once — including
/// panicking and expired ones — so clients never wait on a reply that
/// will not come.
fn worker_loop(conn: &Connection, rx: &Receiver<Job>) -> WorkerExit {
    while let Ok(job) = rx.recv() {
        let Job {
            request,
            reply,
            submitted,
            deadline,
            trace,
            meter,
            notify,
        } = job;
        // Resume the client's trace on this worker thread: everything
        // below — queue-expiry shedding, the handler, panic recovery —
        // shows up as children of the caller's span in a trace dump.
        let _adopted = trace.map(telemetry::trace::adopt_context);
        // Likewise resume the caller's resource meter, so the handler's
        // row scans, cache traffic, and WAL appends bill to the request.
        let _metered = meter.map(telemetry::adopt_meter);
        let _req_span = telemetry::span("explorer.request");
        let trace_tag = telemetry::trace::current_trace_id()
            .map(|t| format!(" [trace {}]", t.as_hex()))
            .unwrap_or_default();
        telemetry::meter::add_queue_wait_ns(
            submitted.elapsed().as_nanos().min(u64::MAX as u128) as u64
        );
        if telemetry::enabled() {
            telemetry::record_duration("explorer.queue_wait_ns", submitted.elapsed());
            telemetry::record("explorer.queue_depth", rx.len() as u64);
        }
        if request == Request::Shutdown {
            send_reply(&reply, &notify, Response::ShuttingDown);
            return WorkerExit::Shutdown;
        }
        // Deadline check happens at dequeue: if the request sat in the
        // queue past its deadline, the client has already given up —
        // doing the work would only delay requests that can still meet
        // theirs.
        if let Some(deadline) = deadline {
            if Instant::now() > deadline {
                telemetry::add("explorer.timeouts", 1);
                telemetry::emit(
                    telemetry::Event::new(telemetry::Severity::Warn, "explorer_timeout")
                        .field("where", "queue")
                        .field("queued_ns", submitted.elapsed().as_nanos() as u64),
                );
                send_reply(
                    &reply,
                    &notify,
                    Response::Failed {
                        reason: format!(
                            "deadline expired before a worker picked up the request{trace_tag}"
                        ),
                        retryable: true,
                    },
                );
                continue;
            }
        }
        let response = {
            let _span = telemetry::span("explorer.handle");
            let busy = telemetry::enabled().then(Instant::now);
            let execute_started = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                handle(conn, &request).unwrap_or_else(|e| Response::Error(e.to_string()))
            }));
            telemetry::meter::add_execute_ns(
                execute_started.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            );
            let response = match outcome {
                Ok(response) => response,
                Err(payload) => {
                    let reason = panic_message(payload.as_ref());
                    telemetry::add("explorer.request_panics", 1);
                    telemetry::emit(
                        telemetry::Event::new(telemetry::Severity::Warn, "explorer_panic")
                            .field("reason", reason),
                    );
                    send_reply(
                        &reply,
                        &notify,
                        Response::Failed {
                            reason: format!("analysis worker panicked: {reason}{trace_tag}"),
                            retryable: false,
                        },
                    );
                    return WorkerExit::Panicked;
                }
            };
            if let Some(busy) = busy {
                let busy_ns = busy.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                telemetry::add("explorer.requests", 1);
                telemetry::add("explorer.busy_ns", busy_ns);
                if matches!(response, Response::Error(_)) {
                    telemetry::add("explorer.request_errors", 1);
                }
                telemetry::record_duration("explorer.request_latency_ns", submitted.elapsed());
            }
            if let Response::Error(msg) = &response {
                telemetry::emit(
                    telemetry::Event::new(telemetry::Severity::Warn, "explorer_error")
                        .field("reason", msg.clone()),
                );
            }
            response
        };
        send_reply(&reply, &notify, response);
    }
    WorkerExit::Disconnected
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

fn handle(conn: &Connection, request: &Request) -> perfdmf_db::Result<Response> {
    match request {
        Request::ClusterTrial {
            trial_id,
            features,
            k,
            max_k,
            pca_components,
            method,
        } => cluster_trial(
            conn,
            *trial_id,
            features,
            *k,
            *max_k,
            *pca_components,
            *method,
        ),
        Request::CorrelateMetrics { trial_id, event } => correlate_metrics(conn, *trial_id, event),
        Request::FetchResult { settings_id } => fetch_result(conn, *settings_id),
        Request::SpeedupStudy {
            experiment_id,
            metric,
        } => speedup_study(conn, *experiment_id, metric),
        Request::RegressionScan {
            experiment_id,
            threshold,
        } => regression_scan(conn, *experiment_id, *threshold),
        Request::WatchdogCheck {
            experiment_id,
            trial_id,
            metric,
            min_ratio,
        } => watchdog_check(conn, *experiment_id, *trial_id, metric, *min_ratio),
        Request::Ping => Ok(Response::Pong),
        Request::Shutdown => Ok(Response::ShuttingDown),
        Request::InjectPanic(message) => panic!("{}", message.clone()),
        Request::Stall { millis } => {
            std::thread::sleep(std::time::Duration::from_millis(*millis));
            Ok(Response::Stored {
                method: "stall".into(),
                rows: Vec::new(),
            })
        }
    }
}

fn regression_scan(
    conn: &Connection,
    experiment_id: i64,
    threshold: f64,
) -> perfdmf_db::Result<Response> {
    let trials = conn.query(
        "SELECT id FROM trial WHERE experiment = ? ORDER BY id",
        &[Value::Int(experiment_id)],
    )?;
    if trials.len() < 2 {
        return Err(perfdmf_db::DbError::Unsupported(format!(
            "experiment {experiment_id} has fewer than two trials to compare"
        )));
    }
    let ids: Vec<i64> = trials
        .rows
        .iter()
        .map(|r| r[0].as_int().expect("pk"))
        .collect();
    let mut findings = Vec::new();
    let mut prev = load_trial(conn, ids[0])?;
    for pair in ids.windows(2) {
        let next = load_trial(conn, pair[1])?;
        let diffs = perfdmf_analysis::diff(&prev, &next);
        for entry in perfdmf_analysis::regressions(&diffs, threshold) {
            findings.push((
                pair[0],
                pair[1],
                entry.event.clone(),
                entry.metric.clone(),
                entry.relative.unwrap_or(0.0),
            ));
        }
        prev = next;
    }
    Ok(Response::Regressions {
        findings,
        pairs_compared: ids.len() - 1,
    })
}

fn watchdog_check(
    conn: &Connection,
    experiment_id: i64,
    trial_id: i64,
    metric: &str,
    min_ratio: f64,
) -> perfdmf_db::Result<Response> {
    let trials = conn.query(
        "SELECT id FROM trial WHERE experiment = ? AND id <> ? ORDER BY id",
        &[Value::Int(experiment_id), Value::Int(trial_id)],
    )?;
    if trials.rows.is_empty() {
        return Err(perfdmf_db::DbError::Unsupported(format!(
            "experiment {experiment_id} has no baseline trials besides {trial_id}"
        )));
    }
    let mut baseline = perfdmf_analysis::Baseline::new(metric);
    for row in &trials.rows {
        baseline.add_profile(&load_trial(conn, row[0].as_int().expect("pk"))?);
    }
    let candidate = load_trial(conn, trial_id)?;
    let config = perfdmf_analysis::WatchdogConfig {
        min_ratio,
        ..Default::default()
    };
    let context = format!("trial {trial_id} vs experiment {experiment_id} baseline");
    let findings = perfdmf_analysis::check_profile(&baseline, &candidate, &config, &context);
    Ok(Response::Watchdog {
        baseline_trials: trials.rows.len(),
        findings: findings
            .into_iter()
            .map(|f| (f.event, f.baseline_mean, f.candidate, f.ratio))
            .collect(),
    })
}

fn speedup_study(
    conn: &Connection,
    experiment_id: i64,
    metric: &str,
) -> perfdmf_db::Result<Response> {
    let trials = conn.query(
        "SELECT id, node_count FROM trial WHERE experiment = ? ORDER BY node_count",
        &[Value::Int(experiment_id)],
    )?;
    if trials.len() < 2 {
        return Err(perfdmf_db::DbError::Unsupported(format!(
            "experiment {experiment_id} has fewer than two trials"
        )));
    }
    let mut analysis = perfdmf_analysis::SpeedupAnalysis::new(metric);
    for row in &trials.rows {
        let trial_id = row[0].as_int().expect("pk");
        let procs = row[1].as_int().unwrap_or(1).max(1) as usize;
        analysis.add_trial(procs, load_trial(conn, trial_id)?);
    }
    let scaling = analysis.application_scaling().ok_or_else(|| {
        perfdmf_db::DbError::Unsupported("application scaling could not be computed".into())
    })?;
    let routines = analysis
        .routine_speedups()
        .into_iter()
        .flat_map(|r| {
            r.points
                .into_iter()
                .map(move |p| (r.event.clone(), p.processors, p.min, p.mean, p.max))
        })
        .collect();
    Ok(Response::Speedup {
        application: scaling.points,
        amdahl_serial_fraction: scaling.amdahl_serial_fraction,
        routines,
    })
}

fn extract_features(
    profile: &perfdmf_profile::Profile,
    trial_id: i64,
    space: &FeatureSpace,
) -> perfdmf_db::Result<FeatureMatrix> {
    match space {
        FeatureSpace::EventsOfMetric(metric_name) => {
            let metric = profile.find_metric(metric_name).ok_or_else(|| {
                perfdmf_db::DbError::Unsupported(format!(
                    "trial {trial_id} has no metric {metric_name}"
                ))
            })?;
            Ok(thread_event_matrix(
                profile,
                metric,
                IntervalField::Exclusive,
            ))
        }
        FeatureSpace::MetricsOfEvent(event_name) => {
            let event = profile.find_event(event_name).ok_or_else(|| {
                perfdmf_db::DbError::Unsupported(format!(
                    "trial {trial_id} has no event {event_name}"
                ))
            })?;
            Ok(thread_metric_matrix(
                profile,
                event,
                IntervalField::Exclusive,
            ))
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn cluster_trial(
    conn: &Connection,
    trial_id: i64,
    space: &FeatureSpace,
    k: Option<usize>,
    max_k: usize,
    pca_components: usize,
    method: ClusterMethod,
) -> perfdmf_db::Result<Response> {
    let profile = load_trial(conn, trial_id)?;
    let mut features = extract_features(&profile, trial_id, space)?;
    features.standardize();
    let mut rows = features.rows.clone();
    if pca_components > 0 && pca_components < features.columns.len() {
        if let Some(p) = pca(&rows) {
            rows = p.transform(&rows, pca_components);
        }
    }
    let seed = trial_id as u64 ^ 0x5045_5246;
    let (chosen_k, assignments_vec) = match method {
        ClusterMethod::KMeans => {
            let (chosen_k, result) = match k {
                Some(k) => (k, kmeans(&rows, k, seed, 200)),
                None => select_k(&rows, 2..=max_k.max(2), seed),
            };
            (chosen_k, result.assignments)
        }
        ClusterMethod::Hierarchical => {
            let tree = perfdmf_analysis::hierarchical(&rows);
            match k {
                Some(k) => (k, tree.cut(k)),
                None => {
                    // silhouette-select the cut level
                    let mut best: Option<(f64, usize, Vec<usize>)> = None;
                    for kk in 2..=max_k.max(2) {
                        let cut = tree.cut(kk);
                        let score = silhouette_score(&rows, &cut, kk);
                        if best.as_ref().is_none_or(|(s, _, _)| score > *s) {
                            best = Some((score, kk, cut));
                        }
                    }
                    let (_, kk, cut) = best.expect("k range non-empty");
                    (kk, cut)
                }
            }
        }
    };
    let silhouette = silhouette_score(&rows, &assignments_vec, chosen_k);

    // Per-cluster summary in *original* (unstandardized) feature space:
    // recompute means from the raw matrix for interpretability.
    let raw = extract_features(&profile, trial_id, space)?;
    let d = raw.columns.len();
    let mut sums = vec![vec![0.0f64; d]; chosen_k];
    let mut counts = vec![0usize; chosen_k];
    for (row, &a) in raw.rows.iter().zip(&assignments_vec) {
        counts[a] += 1;
        for (s, &x) in sums[a].iter_mut().zip(row) {
            *s += x;
        }
    }
    let summaries: Vec<ClusterSummary> = (0..chosen_k)
        .map(|c| ClusterSummary {
            cluster: c,
            size: counts[c],
            centroid: if counts[c] > 0 {
                sums[c].iter().map(|s| s / counts[c] as f64).collect()
            } else {
                vec![0.0; d]
            },
        })
        .collect();

    // Persist through the PerfDMF API path (settings + result rows).
    let (space_kind, space_name) = match space {
        FeatureSpace::EventsOfMetric(m) => ("events-of-metric", m.as_str()),
        FeatureSpace::MetricsOfEvent(e) => ("metrics-of-event", e.as_str()),
    };
    let method_name = match method {
        ClusterMethod::KMeans => "kmeans",
        ClusterMethod::Hierarchical => "hierarchical",
    };
    let params = format!(
        "k={chosen_k};pca={pca_components};features={space_kind};field=exclusive;seed={seed}"
    );
    let settings_id = conn.transaction(|tx| {
        let sid = tx
            .insert(
                "INSERT INTO analysis_settings (trial, method, metric, parameters)
                 VALUES (?, ?, ?, ?)",
                &[
                    Value::Int(trial_id),
                    Value::Text(method_name.into()),
                    Value::Text(space_name.into()),
                    Value::Text(params.as_str().into()),
                ],
            )?
            .expect("auto id");
        let ins = conn.prepare(
            "INSERT INTO analysis_result (settings, result_type, item, value, label)
             VALUES (?, ?, ?, ?, ?)",
        )?;
        for (i, &a) in assignments_vec.iter().enumerate() {
            tx.execute_prepared(
                &ins,
                &[
                    Value::Int(sid),
                    Value::Text("assignment".into()),
                    Value::Int(i as i64),
                    Value::Float(a as f64),
                    Value::Text(raw.threads[i].to_string().into()),
                ],
            )?;
        }
        for s in &summaries {
            tx.execute_prepared(
                &ins,
                &[
                    Value::Int(sid),
                    Value::Text("cluster_size".into()),
                    Value::Int(s.cluster as i64),
                    Value::Float(s.size as f64),
                    Value::Text("".into()),
                ],
            )?;
            for (ci, &v) in s.centroid.iter().enumerate() {
                tx.execute_prepared(
                    &ins,
                    &[
                        Value::Int(sid),
                        Value::Text("centroid".into()),
                        Value::Int((s.cluster * d + ci) as i64),
                        Value::Float(v),
                        Value::Text(raw.columns[ci].as_str().into()),
                    ],
                )?;
            }
        }
        tx.execute_prepared(
            &ins,
            &[
                Value::Int(sid),
                Value::Text("silhouette".into()),
                Value::Int(0),
                Value::Float(silhouette),
                Value::Text("".into()),
            ],
        )?;
        Ok(sid)
    })?;

    Ok(Response::Clustering {
        settings_id,
        k: chosen_k,
        assignments: assignments_vec,
        summaries,
        silhouette,
        columns: raw.columns,
    })
}

fn correlate_metrics(
    conn: &Connection,
    trial_id: i64,
    event_name: &str,
) -> perfdmf_db::Result<Response> {
    let profile = load_trial(conn, trial_id)?;
    let event = profile.find_event(event_name).ok_or_else(|| {
        perfdmf_db::DbError::Unsupported(format!("trial {trial_id} has no event {event_name}"))
    })?;
    let fm = perfdmf_analysis::thread_metric_matrix(&profile, event, IntervalField::Exclusive);
    // columns of the matrix = metrics; build column-major data
    let d = fm.columns.len();
    let columns_data: Vec<Vec<f64>> = (0..d)
        .map(|c| fm.rows.iter().map(|r| r[c]).collect())
        .collect();
    let matrix = correlation_matrix(&columns_data);
    let settings_id = conn.transaction(|tx| {
        let sid = tx
            .insert(
                "INSERT INTO analysis_settings (trial, method, metric, parameters)
                 VALUES (?, 'correlation', NULL, ?)",
                &[
                    Value::Int(trial_id),
                    Value::Text(format!("event={event_name}").into()),
                ],
            )?
            .expect("auto id");
        let ins = conn.prepare(
            "INSERT INTO analysis_result (settings, result_type, item, value, label)
             VALUES (?, 'correlation', ?, ?, ?)",
        )?;
        for (i, row) in matrix.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                tx.execute_prepared(
                    &ins,
                    &[
                        Value::Int(sid),
                        Value::Int((i * d + j) as i64),
                        Value::Float(v),
                        Value::Text(format!("{}~{}", fm.columns[i], fm.columns[j]).into()),
                    ],
                )?;
            }
        }
        Ok(sid)
    })?;
    Ok(Response::Correlation {
        settings_id,
        metrics: fm.columns,
        matrix,
    })
}

fn fetch_result(conn: &Connection, settings_id: i64) -> perfdmf_db::Result<Response> {
    let meta = conn.query(
        "SELECT method FROM analysis_settings WHERE id = ?",
        &[Value::Int(settings_id)],
    )?;
    if meta.is_empty() {
        return Ok(Response::Error(format!(
            "no analysis_settings row {settings_id}"
        )));
    }
    let method = meta
        .get(0, "method")
        .and_then(|v| v.as_text())
        .unwrap_or("")
        .to_string();
    let rs = conn.query(
        "SELECT result_type, item, value, label FROM analysis_result
         WHERE settings = ? ORDER BY id",
        &[Value::Int(settings_id)],
    )?;
    let rows = rs
        .rows
        .iter()
        .map(|r| {
            (
                r[0].as_text().unwrap_or("").to_string(),
                r[1].as_int().unwrap_or(0),
                r[2].as_float().unwrap_or(0.0),
                r[3].as_text().unwrap_or("").to_string(),
            )
        })
        .collect();
    Ok(Response::Stored { method, rows })
}
