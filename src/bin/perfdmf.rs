//! `perfdmf` — command-line interface to the performance data management
//! framework.
//!
//! ```text
//! perfdmf import  --db DIR --app NAME --exp NAME PATH...   import profiles
//! perfdmf list    --db DIR                                 browse the archive
//! perfdmf sql     --db DIR "SELECT ..."                    raw SQL access
//! perfdmf export  --db DIR --trial ID [--out FILE]         XML exchange export
//! perfdmf derive  --db DIR --trial ID NAME EXPR            add derived metric
//! perfdmf speedup --db DIR --exp ID --metric NAME          speedup analysis
//! perfdmf cluster --db DIR --trial ID (--metric M | --event E) [--max-k K]
//! perfdmf regress --db DIR --exp ID [--threshold 0.10]      regression scan
//! perfdmf serve   --db DIR --addr HOST:PORT [--workers N]   network server
//! perfdmf ping    --connect HOST:PORT                       liveness probe
//! ```
//!
//! `cluster` and `regress` also accept `--connect HOST:PORT` instead of
//! `--db DIR` to run the analysis on a remote `perfdmf serve` instance
//! over the wire protocol, with the client's reconnect/retry machinery.

use perfdmf::analysis::SpeedupAnalysis;
use perfdmf::core::{append_derived_metric, DatabaseSession};
use perfdmf::db::{Connection, Value};
use perfdmf::explorer::{
    AnalysisServer, ClusterMethod, ExplorerClient, FeatureSpace, Request, Response,
};
use perfdmf::import::{export_xml, load_path};
use perfdmf::server::{NetClient, PerfdmfServer, ServerConfig};
use std::collections::HashMap;
use std::net::ToSocketAddrs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("perfdmf: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Split `--flag value` pairs from positional arguments.
fn parse_flags(args: &[String]) -> (HashMap<String, String>, Vec<String>) {
    let mut flags = HashMap::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(name.to_string(), String::new());
                i += 1;
            }
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    (flags, positional)
}

fn run(args: Vec<String>) -> Result<(), String> {
    let Some(command) = args.first().cloned() else {
        return Err(usage());
    };
    let (flags, positional) = parse_flags(&args[1..]);
    let open_db = || -> Result<Connection, String> {
        let dir = flags
            .get("db")
            .ok_or("missing --db DIR (the archive directory)")?;
        Connection::open(PathBuf::from(dir)).map_err(|e| e.to_string())
    };
    // Analysis requests route either to an in-process worker pool over
    // --db, or across the wire to a `perfdmf serve` instance named by
    // --connect — same request, same rendering.
    let dispatch = |request: Request| -> Result<Response, String> {
        if let Some(target) = flags.get("connect") {
            let addr = resolve_addr(target)?;
            let tenant = flags.get("tenant").cloned().unwrap_or_else(|| "cli".into());
            let mut client = NetClient::new(addr, tenant);
            let response = client.request(request);
            client.close();
            Ok(response)
        } else {
            let conn = open_db()?;
            let server = AnalysisServer::start(conn, 2).map_err(|e| e.to_string())?;
            let client = ExplorerClient::connect(&server);
            let response = client.request(request);
            server.shutdown();
            Ok(response)
        }
    };
    match command.as_str() {
        "import" => {
            let conn = open_db()?;
            let app = flags
                .get("app")
                .cloned()
                .unwrap_or_else(|| "default".into());
            let exp = flags
                .get("exp")
                .cloned()
                .unwrap_or_else(|| "default".into());
            if positional.is_empty() {
                return Err("import: no input paths given".into());
            }
            let mut session = DatabaseSession::new(conn.clone()).map_err(|e| e.to_string())?;
            for path in &positional {
                let profile = load_path(std::path::Path::new(path)).map_err(|e| e.to_string())?;
                let trial = session
                    .store_profile(&app, &exp, &profile)
                    .map_err(|e| e.to_string())?;
                println!(
                    "imported {path} ({} events, {} threads, {} points, format {}) as trial {trial}",
                    profile.events().len(),
                    profile.threads().len(),
                    profile.data_point_count(),
                    profile.source_format
                );
            }
            conn.checkpoint().map_err(|e| e.to_string())?;
            Ok(())
        }
        "list" => {
            let conn = open_db()?;
            let mut session = DatabaseSession::new(conn).map_err(|e| e.to_string())?;
            for app in session.application_list().map_err(|e| e.to_string())? {
                println!("application {}: {}", app.id.unwrap_or(-1), app.name);
                session.set_application(app.id.unwrap_or(-1));
                for exp in session.experiment_list().map_err(|e| e.to_string())? {
                    println!("  experiment {}: {}", exp.id.unwrap_or(-1), exp.name);
                    session.set_experiment(exp.id.unwrap_or(-1));
                    for trial in session.trial_list().map_err(|e| e.to_string())? {
                        let nodes = trial
                            .field("node_count")
                            .and_then(Value::as_int)
                            .unwrap_or(0);
                        println!(
                            "    trial {}: {} ({nodes} nodes, {})",
                            trial.id.unwrap_or(-1),
                            trial.name,
                            trial
                                .field("source_format")
                                .and_then(|v| v.as_text().map(str::to_string))
                                .unwrap_or_default()
                        );
                    }
                }
            }
            Ok(())
        }
        "sql" => {
            let conn = open_db()?;
            let sql = positional.first().ok_or("sql: missing statement")?;
            match conn.execute(sql, &[]).map_err(|e| e.to_string())? {
                perfdmf::db::Outcome::Rows(rs) => {
                    print!("{}", rs.to_table_string());
                    println!("({} rows)", rs.len());
                }
                perfdmf::db::Outcome::Affected { count, .. } => {
                    println!("{count} rows affected");
                    conn.checkpoint().map_err(|e| e.to_string())?;
                }
                perfdmf::db::Outcome::Done => {
                    println!("ok");
                    conn.checkpoint().map_err(|e| e.to_string())?;
                }
            }
            Ok(())
        }
        "export" => {
            let conn = open_db()?;
            let trial: i64 = flags
                .get("trial")
                .ok_or("export: missing --trial ID")?
                .parse()
                .map_err(|_| "export: bad trial id")?;
            let profile = perfdmf::core::load_trial(&conn, trial).map_err(|e| e.to_string())?;
            let xml = export_xml(&profile);
            match flags.get("out") {
                Some(path) => {
                    std::fs::write(path, &xml).map_err(|e| e.to_string())?;
                    println!("wrote {} bytes to {path}", xml.len());
                }
                None => println!("{xml}"),
            }
            Ok(())
        }
        "derive" => {
            let conn = open_db()?;
            let trial: i64 = flags
                .get("trial")
                .ok_or("derive: missing --trial ID")?
                .parse()
                .map_err(|_| "derive: bad trial id")?;
            let name = positional.first().ok_or("derive: missing metric name")?;
            let expr = positional.get(1).ok_or("derive: missing expression")?;
            let id = append_derived_metric(&conn, trial, name, expr).map_err(|e| e.to_string())?;
            conn.checkpoint().map_err(|e| e.to_string())?;
            println!("derived metric {name} (id {id}) added to trial {trial}");
            Ok(())
        }
        "speedup" => {
            let conn = open_db()?;
            let exp: i64 = flags
                .get("exp")
                .ok_or("speedup: missing --exp ID")?
                .parse()
                .map_err(|_| "speedup: bad experiment id")?;
            let metric = flags
                .get("metric")
                .cloned()
                .unwrap_or_else(|| "GET_TIME_OF_DAY".into());
            let mut session = DatabaseSession::new(conn).map_err(|e| e.to_string())?;
            session.set_experiment(exp);
            let mut analysis = SpeedupAnalysis::new(metric);
            for trial in session.trial_list().map_err(|e| e.to_string())? {
                let nodes = trial
                    .field("node_count")
                    .and_then(Value::as_int)
                    .unwrap_or(1) as usize;
                session.set_trial(trial.id.unwrap_or(-1));
                analysis.add_trial(nodes, session.load_profile().map_err(|e| e.to_string())?);
            }
            if analysis.trial_count() < 2 {
                return Err("speedup: need at least two trials in the experiment".into());
            }
            if let Some(s) = analysis.application_scaling() {
                println!("{:>8} {:>10} {:>12}", "procs", "speedup", "efficiency");
                for (p, sp, eff) in &s.points {
                    println!("{p:>8} {sp:>10.3} {eff:>12.3}");
                }
                if let Some(frac) = s.amdahl_serial_fraction {
                    println!("Amdahl serial fraction ≈ {frac:.4}");
                }
            }
            print!("{}", analysis.report());
            Ok(())
        }
        "cluster" => {
            let trial: i64 = flags
                .get("trial")
                .ok_or("cluster: missing --trial ID")?
                .parse()
                .map_err(|_| "cluster: bad trial id")?;
            let max_k: usize = flags
                .get("max-k")
                .map(|s| s.parse().map_err(|_| "cluster: bad --max-k"))
                .transpose()?
                .unwrap_or(6);
            let features = match (flags.get("metric"), flags.get("event")) {
                (Some(metric), None) => FeatureSpace::EventsOfMetric(metric.clone()),
                (None, Some(event)) => FeatureSpace::MetricsOfEvent(event.clone()),
                _ => return Err("cluster: pass exactly one of --metric or --event".into()),
            };
            let response = dispatch(Request::ClusterTrial {
                trial_id: trial,
                features,
                k: None,
                max_k,
                pca_components: 0,
                method: ClusterMethod::KMeans,
            })?;
            match response {
                Response::Clustering {
                    k,
                    summaries,
                    silhouette,
                    columns,
                    settings_id,
                    ..
                } => {
                    println!(
                        "k = {k} (silhouette {silhouette:.3}), stored as settings {settings_id}"
                    );
                    for s in summaries {
                        println!("cluster {} ({} threads):", s.cluster, s.size);
                        for (c, v) in columns.iter().zip(&s.centroid) {
                            println!("    {c:<28} {v:.4e}");
                        }
                    }
                    Ok(())
                }
                Response::Error(e) => Err(e),
                other => Err(format!("unexpected response {other:?}")),
            }
        }
        "dump" => {
            let conn = open_db()?;
            let out = flags.get("out").ok_or("dump: missing --out DIR")?;
            let n = perfdmf::core::dump_archive(&conn, std::path::Path::new(out))
                .map_err(|e| e.to_string())?;
            println!("dumped {n} trial(s) to {out}");
            Ok(())
        }
        "restore" => {
            let conn = open_db()?;
            let input = flags.get("from").ok_or("restore: missing --from DIR")?;
            let ids = perfdmf::core::restore_archive(&conn, std::path::Path::new(input))
                .map_err(|e| e.to_string())?;
            conn.checkpoint().map_err(|e| e.to_string())?;
            println!("restored {} trial(s): {:?}", ids.len(), ids);
            Ok(())
        }
        "regress" => {
            let exp: i64 = flags
                .get("exp")
                .ok_or("regress: missing --exp ID")?
                .parse()
                .map_err(|_| "regress: bad experiment id")?;
            let threshold: f64 = flags
                .get("threshold")
                .map(|s| s.parse().map_err(|_| "regress: bad --threshold"))
                .transpose()?
                .unwrap_or(0.10);
            let response = dispatch(Request::RegressionScan {
                experiment_id: exp,
                threshold,
            })?;
            match response {
                Response::Regressions {
                    findings,
                    pairs_compared,
                } => {
                    println!(
                        "compared {pairs_compared} consecutive trial pairs at ±{:.0}%:",
                        threshold * 100.0
                    );
                    if findings.is_empty() {
                        println!("no regressions found");
                    }
                    for (older, newer, event, metric, rel) in findings {
                        let dir = if rel > 0.0 { "slower" } else { "faster" };
                        println!(
                            "  trial {older} -> {newer}: {event} [{metric}] {:+.1}% ({dir})",
                            rel * 100.0
                        );
                    }
                    Ok(())
                }
                Response::Error(e) => Err(e),
                other => Err(format!("unexpected response {other:?}")),
            }
        }
        "ping" => {
            let target = flags
                .get("connect")
                .ok_or("ping: missing --connect HOST:PORT")?;
            let addr = resolve_addr(target)?;
            let tenant = flags.get("tenant").cloned().unwrap_or_else(|| "cli".into());
            let mut client = NetClient::new(addr, tenant);
            // First ping pays for connect + handshake; time the second
            // so the printed RTT is the steady-state round trip.
            if !client.ping() {
                return Err(format!("ping: no Pong from {target}"));
            }
            let started = Instant::now();
            let alive = client.ping();
            let rtt = started.elapsed();
            client.close();
            if !alive {
                return Err(format!("ping: no Pong from {target}"));
            }
            println!("pong from {target} (session established, rtt {rtt:?})");
            Ok(())
        }
        "serve" => {
            let conn = open_db()?;
            // The schema must exist before the analysis layer resolves
            // its tables.
            let _session = DatabaseSession::new(conn.clone()).map_err(|e| e.to_string())?;
            let target = flags
                .get("addr")
                .cloned()
                .unwrap_or_else(|| "127.0.0.1:0".into());
            let addr = resolve_addr(&target)?;
            let mut config = ServerConfig {
                addr,
                ..ServerConfig::default()
            };
            if let Some(workers) = flags.get("workers") {
                config.workers = workers.parse().map_err(|_| "serve: bad --workers")?;
            }
            let server =
                PerfdmfServer::start_with_config(conn, config).map_err(|e| e.to_string())?;
            println!("perfdmf-server listening on {}", server.addr());
            println!("press Ctrl-D (EOF on stdin) to drain and stop");
            // Park until stdin closes, then drain gracefully — in-flight
            // requests finish, new ones get ShuttingDown.
            let mut sink = String::new();
            while std::io::Read::read_to_string(&mut std::io::stdin(), &mut sink).is_ok() {
                if sink.is_empty() {
                    break;
                }
                sink.clear();
            }
            server.shutdown();
            println!("perfdmf-server drained");
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

/// Resolve `HOST:PORT` to a socket address (first resolution wins).
fn resolve_addr(target: &str) -> Result<std::net::SocketAddr, String> {
    target
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {target:?}: {e}"))?
        .next()
        .ok_or_else(|| format!("{target:?} resolved to no addresses"))
}

fn usage() -> String {
    "usage: perfdmf <command> [flags]\n\
     commands:\n\
       import  --db DIR [--app NAME] [--exp NAME] PATH...\n\
       list    --db DIR\n\
       sql     --db DIR \"STATEMENT\"\n\
       export  --db DIR --trial ID [--out FILE]\n\
       derive  --db DIR --trial ID NAME EXPR\n\
       speedup --db DIR --exp ID [--metric NAME]\n\
       cluster (--db DIR | --connect HOST:PORT) --trial ID (--metric M | --event E) [--max-k K]\n\
       regress (--db DIR | --connect HOST:PORT) --exp ID [--threshold 0.10]\n\
       serve   --db DIR [--addr HOST:PORT] [--workers N]\n\
       ping    --connect HOST:PORT\n\
       dump    --db DIR --out DIR\n\
       restore --db DIR --from DIR\n\
     serve honors PERFDMF_SERVER_TOKEN (required client token),\n\
     PERFDMF_SERVER_EXECUTOR (eventloop|threads), PERFDMF_SERVER_EXECUTORS,\n\
     and PERFDMF_SERVER_WINDOW; clients send PERFDMF_SERVER_TOKEN when set"
        .to_string()
}
