/root/repo/target/debug/deps/self_profile_roundtrip-78a8aab8515acc74.d: crates/core/tests/self_profile_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libself_profile_roundtrip-78a8aab8515acc74.rmeta: crates/core/tests/self_profile_roundtrip.rs Cargo.toml

crates/core/tests/self_profile_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
