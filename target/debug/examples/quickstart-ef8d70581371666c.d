/root/repo/target/debug/examples/quickstart-ef8d70581371666c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ef8d70581371666c: examples/quickstart.rs

examples/quickstart.rs:
