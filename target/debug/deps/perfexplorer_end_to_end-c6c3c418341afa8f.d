/root/repo/target/debug/deps/perfexplorer_end_to_end-c6c3c418341afa8f.d: tests/perfexplorer_end_to_end.rs

/root/repo/target/debug/deps/perfexplorer_end_to_end-c6c3c418341afa8f: tests/perfexplorer_end_to_end.rs

tests/perfexplorer_end_to_end.rs:
