//! Agglomerative hierarchical clustering.
//!
//! PerfExplorer grew dendrogram views alongside k-means; this module
//! provides average-linkage agglomerative clustering with a cut-at-k
//! extraction, as the second mining method behind the analysis server.
//!
//! Complexity is O(n²·steps) with an O(n²) distance matrix — fine for the
//! thread counts cluster analysis targets (hundreds to a few thousand);
//! sample first for more.

/// One merge step of the dendrogram: clusters `a` and `b` (ids as below)
/// merged at `distance` into a new cluster with id `n + step`.
///
/// Ids 0..n are the leaves; merged clusters get ids n, n+1, ... in merge
/// order (scipy linkage convention).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergeStep {
    /// First merged cluster id.
    pub a: usize,
    /// Second merged cluster id.
    pub b: usize,
    /// Average-linkage distance at which the merge happened.
    pub distance: f64,
    /// Size of the merged cluster.
    pub size: usize,
}

/// Result of hierarchical clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    /// Number of leaves (input rows).
    pub n: usize,
    /// Merge steps, n−1 of them for n > 0.
    pub merges: Vec<MergeStep>,
}

impl Dendrogram {
    /// Cut the tree to produce exactly `k` clusters (k clamped to 1..=n).
    /// Returns cluster indices 0..k per leaf, numbered by order of first
    /// appearance.
    pub fn cut(&self, k: usize) -> Vec<usize> {
        let n = self.n;
        if n == 0 {
            return Vec::new();
        }
        let k = k.clamp(1, n);
        // Union-find over leaves, applying merges until k clusters remain.
        let mut parent: Vec<usize> = (0..n + self.merges.len()).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        let mut clusters = n;
        for (step, m) in self.merges.iter().enumerate() {
            if clusters <= k {
                break;
            }
            let new_id = n + step;
            let ra = find(&mut parent, m.a);
            let rb = find(&mut parent, m.b);
            parent[ra] = new_id;
            parent[rb] = new_id;
            clusters -= 1;
        }
        // Relabel roots densely in order of first appearance.
        let mut labels = std::collections::HashMap::new();
        let mut out = Vec::with_capacity(n);
        for leaf in 0..n {
            let root = find(&mut parent, leaf);
            let next = labels.len();
            let label = *labels.entry(root).or_insert(next);
            out.push(label);
        }
        out
    }

    /// The distance of the final merge (tree height); 0.0 for n < 2.
    pub fn height(&self) -> f64 {
        self.merges.last().map(|m| m.distance).unwrap_or(0.0)
    }
}

/// Average-linkage agglomerative clustering over row-major data.
pub fn hierarchical(data: &[Vec<f64>]) -> Dendrogram {
    let n = data.len();
    if n == 0 {
        return Dendrogram {
            n,
            merges: Vec::new(),
        };
    }
    // Active clusters: id, member leaf indices.
    let mut active: Vec<(usize, Vec<usize>)> = (0..n).map(|i| (i, vec![i])).collect();
    // Pairwise distances between *points*.
    let dist = |a: usize, b: usize| -> f64 {
        data[a]
            .iter()
            .zip(&data[b])
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    };
    // Average-linkage between member lists.
    let linkage = |ma: &[usize], mb: &[usize]| -> f64 {
        let mut s = 0.0;
        for &a in ma {
            for &b in mb {
                s += dist(a, b);
            }
        }
        s / (ma.len() * mb.len()) as f64
    };
    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    let mut next_id = n;
    while active.len() > 1 {
        // find the closest pair
        let mut best = (0usize, 1usize, f64::INFINITY);
        for i in 0..active.len() {
            for j in (i + 1)..active.len() {
                let d = linkage(&active[i].1, &active[j].1);
                if d < best.2 {
                    best = (i, j, d);
                }
            }
        }
        let (i, j, d) = best;
        let (id_b, members_b) = active.remove(j);
        let (id_a, members_a) = active.remove(i);
        let mut merged = members_a;
        merged.extend(members_b);
        merges.push(MergeStep {
            a: id_a,
            b: id_b,
            distance: d,
            size: merged.len(),
        });
        active.push((next_id, merged));
        next_id += 1;
    }
    Dendrogram { n, merges }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for (c, center) in [(0.0, 0.0), (10.0, 10.0), (-8.0, 6.0)].iter().enumerate() {
            for i in 0..8 {
                data.push(vec![
                    center.0 + (i as f64 * 0.13).sin() * 0.5,
                    center.1 + (i as f64 * 0.31).cos() * 0.5,
                ]);
                labels.push(c);
            }
        }
        (data, labels)
    }

    #[test]
    fn recovers_blobs_at_k3() {
        let (data, truth) = blobs();
        let tree = hierarchical(&data);
        assert_eq!(tree.merges.len(), data.len() - 1);
        let cut = tree.cut(3);
        assert_eq!(crate::kmeans::adjusted_rand_index(&cut, &truth), 1.0);
    }

    #[test]
    fn cut_extremes() {
        let (data, _) = blobs();
        let tree = hierarchical(&data);
        let all_one = tree.cut(1);
        assert!(all_one.iter().all(|&c| c == 0));
        let singletons = tree.cut(usize::MAX);
        let distinct: std::collections::HashSet<_> = singletons.iter().collect();
        assert_eq!(distinct.len(), data.len());
    }

    #[test]
    fn merge_distances_monotone_for_average_linkage_on_blobs() {
        // not guaranteed in general for average linkage, but holds for
        // well-separated blobs: within-cluster merges precede between-
        // cluster ones
        let (data, _) = blobs();
        let tree = hierarchical(&data);
        let within_max = tree.merges[..data.len() - 3]
            .iter()
            .map(|m| m.distance)
            .fold(0.0f64, f64::max);
        let between_min = tree.merges[data.len() - 3..]
            .iter()
            .map(|m| m.distance)
            .fold(f64::INFINITY, f64::min);
        assert!(within_max < between_min);
        assert!(tree.height() >= between_min);
    }

    #[test]
    fn degenerate_inputs() {
        let empty = hierarchical(&[]);
        assert!(empty.cut(3).is_empty());
        let single = hierarchical(&[vec![1.0]]);
        assert_eq!(single.cut(2), vec![0]);
        assert_eq!(single.height(), 0.0);
        // identical points still produce a full tree
        let same = hierarchical(&vec![vec![2.0, 2.0]; 5]);
        assert_eq!(same.merges.len(), 4);
        assert_eq!(same.cut(2).len(), 5);
    }

    #[test]
    fn sizes_track_merges() {
        let (data, _) = blobs();
        let tree = hierarchical(&data);
        assert_eq!(tree.merges.last().unwrap().size, data.len());
        for m in &tree.merges {
            assert!(m.size >= 2);
        }
    }
}
