//! Experiment E9 — crash-recovery cost.
//!
//! Measures `Connection::open` against a database directory in three
//! states: a clean WAL that must be replayed (cost linear in log
//! length), a just-checkpointed directory (snapshot read, empty log —
//! the payoff of checkpointing), and a torn WAL tail (replay plus the
//! atomic rewrite that truncates the tail). Recovery is the hot path of
//! the crash-consistency harness (`crates/db/tests/crash_consistency.rs`),
//! which runs it at every crash point; this bench prices it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use perfdmf_db::{Connection, Value};
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pdmf_e9_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Create a database whose WAL holds `rows` single-row transactions
/// (insert + commit marker each). No checkpoint: reopen must replay.
fn populate(dir: &Path, rows: usize) {
    let conn = Connection::open(dir).expect("open");
    conn.execute(
        "CREATE TABLE trial (
            id INTEGER PRIMARY KEY AUTO_INCREMENT,
            name TEXT NOT NULL,
            node_count INTEGER NOT NULL)",
        &[],
    )
    .expect("ddl");
    for i in 0..rows {
        conn.insert(
            "INSERT INTO trial (name, node_count) VALUES (?, ?)",
            &[
                Value::Text(format!("t{i}").into()),
                Value::Int((i % 1024) as i64),
            ],
        )
        .expect("insert");
    }
}

fn bench_reopen_wal_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_reopen_wal_replay");
    group.sample_size(20);
    for rows in [100usize, 1_000, 10_000] {
        let dir = fresh_dir(&format!("replay_{rows}"));
        populate(&dir, rows);
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| Connection::open(&dir).expect("recover"));
        });
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
    group.finish();
}

fn bench_reopen_after_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_reopen_after_checkpoint");
    group.sample_size(20);
    for rows in [100usize, 1_000, 10_000] {
        let dir = fresh_dir(&format!("ckpt_{rows}"));
        populate(&dir, rows);
        Connection::open(&dir)
            .expect("open")
            .checkpoint()
            .expect("checkpoint");
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| Connection::open(&dir).expect("recover"));
        });
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
    group.finish();
}

fn bench_reopen_torn_tail(c: &mut Criterion) {
    let rows = 1_000usize;
    let dir = fresh_dir("torn");
    populate(&dir, rows);
    let wal = dir.join("wal.pdmf");
    c.bench_function("e9_reopen_torn_tail_1000", |b| {
        // Each iteration re-tears the tail (a few appended garbage
        // bytes — cheap next to the replay + rewrite being measured),
        // because recovery repairs the file it reopens.
        b.iter(|| {
            let mut f = OpenOptions::new().append(true).open(&wal).expect("wal");
            f.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0x99]).expect("tear");
            drop(f);
            Connection::open(&dir).expect("recover")
        });
    });
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

criterion_group!(
    benches,
    bench_reopen_wal_replay,
    bench_reopen_after_checkpoint,
    bench_reopen_torn_tail
);
criterion_main!(benches);
