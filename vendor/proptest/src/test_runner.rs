//! Case loop, config, failure type, and the PRNG behind generation.

use std::fmt;

/// How many random cases a `proptest!` block runs per test.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases, unless the `PROPTEST_CASES`
    /// environment variable overrides the count (so CI can crank every
    /// property suite up without code edits).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(cases),
        }
    }
}

/// `PROPTEST_CASES` override, mirroring upstream's env knob.
fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .filter(|&n| n > 0)
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps this offline suite quick
        // while still exploring the input space.
        ProptestConfig {
            cases: env_cases().unwrap_or(64),
        }
    }
}

/// A single case's failure (assertion message). No shrinking metadata.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fail the current case with `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generation source (xoshiro256++ seeded by SplitMix64).
/// Fixed seed: failures reproduce run-to-run without env plumbing.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` in `[0, n)`; rejection-samples the biased tail.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample an empty range");
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Drives the configured number of cases against a property closure.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner {
            config,
            // First 16 hex digits of pi: arbitrary but memorable.
            rng: TestRng::from_seed(0x243F_6A88_85A3_08D3),
        }
    }

    /// Run the property once per configured case; stops at the first
    /// failure, annotated with the case number.
    pub fn run<F>(&mut self, mut property: F) -> Result<(), TestCaseError>
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for case in 0..self.config.cases {
            if let Err(e) = property(&mut self.rng) {
                return Err(TestCaseError::fail(format!(
                    "case {}/{}: {}",
                    case + 1,
                    self.config.cases,
                    e
                )));
            }
        }
        Ok(())
    }
}
