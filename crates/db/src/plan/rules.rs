//! Rule-based plan rewrites, each independently toggleable.
//!
//! | rule                 | rewrite                                              |
//! |----------------------|------------------------------------------------------|
//! | `predicate-pushdown` | move single-table WHERE conjuncts into scans of a    |
//! |                      | join pipeline (base always; join right sides only    |
//! |                      | for INNER/CROSS — LEFT right sides would turn        |
//! |                      | filtered matches into NULL extensions)               |
//! | `join-reorder`       | joins of an ungrouped aggregate query run smallest   |
//! |                      | right side first (table stats), when ON conditions   |
//! |                      | are qualified and local to base + own right table    |
//! | `sort-elision`       | `ORDER BY col ASC ... LIMIT` with an index on `col`  |
//! |                      | drops the Sort and scans in index key order          |
//! | `limit-pushdown`     | single-table `LIMIT` fuses the WHERE into the scan   |
//! |                      | and stops after OFFSET+LIMIT matches — never under a |
//! |                      | Sort unless sort-elision removed it first            |
//! | `projection-pruning` | columns no operator reads are masked to NULL at      |
//! |                      | materialization time, per scan                       |
//!
//! Every rewrite preserves the result multiset AND row order of the
//! unoptimized plan (float aggregate reassociation under join-reorder
//! excepted), which is what the differential oracle's optimizer legs
//! and the per-rule rewrite-equivalence suite check.
//!
//! Configuration: `PERFDMF_OPTIMIZER=off|0|false` disables every rule;
//! `PERFDMF_OPT_DISABLE=rule[,rule...]` disables individual rules by
//! the names above. Tests pin a config per thread with
//! [`override_for_thread`], which shadows both variables.

use std::cell::Cell;

use super::ir::{base_scan_mut, contains_join, map_pipeline, LogicalPlan, ScanNode, TrailEntry};
use crate::exec::select::{collect_columns, conjuncts, has_bare_column, refs_only_layout};
use crate::sql::ast::{Expr, JoinKind, Projection};

/// Which rewrite rules run. `enabled: false` turns the optimizer off
/// wholesale (physical access selection — index and columnar — is not a
/// rewrite and stays active).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizerConfig {
    pub enabled: bool,
    pub predicate_pushdown: bool,
    pub projection_pruning: bool,
    pub limit_pushdown: bool,
    pub sort_elision: bool,
    pub join_reorder: bool,
}

impl OptimizerConfig {
    /// Every rule on (the default).
    pub fn all_on() -> Self {
        OptimizerConfig {
            enabled: true,
            predicate_pushdown: true,
            projection_pruning: true,
            limit_pushdown: true,
            sort_elision: true,
            join_reorder: true,
        }
    }

    /// No rewrites at all — the naive plan runs as lowered.
    pub fn disabled() -> Self {
        OptimizerConfig {
            enabled: false,
            predicate_pushdown: false,
            projection_pruning: false,
            limit_pushdown: false,
            sort_elision: false,
            join_reorder: false,
        }
    }

    /// All rules on except the named one (rule names as in the module
    /// docs). Unknown names leave everything on.
    pub fn without(rule: &str) -> Self {
        let mut cfg = Self::all_on();
        cfg.disable(rule);
        cfg
    }

    fn disable(&mut self, rule: &str) {
        match rule.trim() {
            "predicate-pushdown" => self.predicate_pushdown = false,
            "projection-pruning" => self.projection_pruning = false,
            "limit-pushdown" => self.limit_pushdown = false,
            "sort-elision" => self.sort_elision = false,
            "join-reorder" => self.join_reorder = false,
            _ => {}
        }
    }

    fn from_env() -> Self {
        if matches!(
            std::env::var("PERFDMF_OPTIMIZER").ok().as_deref(),
            Some("off") | Some("0") | Some("false")
        ) {
            return Self::disabled();
        }
        let mut cfg = Self::all_on();
        if let Ok(list) = std::env::var("PERFDMF_OPT_DISABLE") {
            for rule in list.split(',') {
                cfg.disable(rule);
            }
        }
        cfg
    }
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self::all_on()
    }
}

thread_local! {
    static CONFIG_OVERRIDE: Cell<Option<OptimizerConfig>> = const { Cell::new(None) };
}

/// The effective optimizer configuration: a thread-local override if
/// set, else the environment.
pub fn optimizer_config() -> OptimizerConfig {
    CONFIG_OVERRIDE
        .with(|c| c.get())
        .unwrap_or_else(OptimizerConfig::from_env)
}

/// Force an optimizer configuration for the current thread until the
/// guard drops. The differential oracle and the rewrite-equivalence
/// suite use this to run the same query with rules on, off, and
/// individually disabled, in-process.
pub fn override_for_thread(cfg: OptimizerConfig) -> OptimizerOverrideGuard {
    let prev = CONFIG_OVERRIDE.with(|c| c.replace(Some(cfg)));
    OptimizerOverrideGuard { prev }
}

/// Restores the previous thread-local config on drop.
pub struct OptimizerOverrideGuard {
    prev: Option<OptimizerConfig>,
}

impl Drop for OptimizerOverrideGuard {
    fn drop(&mut self) {
        CONFIG_OVERRIDE.with(|c| c.set(self.prev));
    }
}

/// Run the enabled rules over a lowered plan, returning the rewritten
/// tree and the trail of fired rules.
pub(crate) fn optimize<'a>(
    root: LogicalPlan<'a>,
    cfg: &OptimizerConfig,
    had_subqueries: bool,
) -> (LogicalPlan<'a>, Vec<TrailEntry>) {
    let mut trail = Vec::new();
    if !cfg.enabled {
        return (root, trail);
    }
    let mut root = root;
    if cfg.predicate_pushdown {
        root = predicate_pushdown(root, &mut trail);
    }
    if cfg.join_reorder {
        join_reorder(&mut root, &mut trail);
    }
    limit_rules(&mut root, cfg, had_subqueries, &mut trail);
    if cfg.projection_pruning {
        projection_pruning(&mut root, &mut trail);
    }
    (root, trail)
}

// ---------------- predicate pushdown ----------------

/// Push single-table WHERE conjuncts of a join query into the scans
/// that own their columns. The residual Filter keeps the full predicate
/// (re-evaluating a pushed conjunct is cheap and keeps the residual a
/// verbatim copy of the WHERE clause), so the rewrite only shrinks the
/// rows materialized for the join — it cannot change the result.
fn predicate_pushdown<'a>(root: LogicalPlan<'a>, trail: &mut Vec<TrailEntry>) -> LogicalPlan<'a> {
    map_pipeline(root, &mut |pipe| {
        let LogicalPlan::Filter {
            mut input,
            predicate,
        } = pipe
        else {
            return pipe;
        };
        if !contains_join(&input) {
            // Single-table WHERE stays a residual filter: the main
            // filter pass is partition-parallel, a pushed conjunct
            // would run serially in the scan.
            return LogicalPlan::Filter { input, predicate };
        }
        let mut pushed: Vec<(String, usize)> = Vec::new();
        let mut note = |table: String| match pushed.iter_mut().find(|(t, _)| *t == table) {
            Some((_, n)) => *n += 1,
            None => pushed.push((table, 1)),
        };
        for c in conjuncts(&predicate) {
            if c.contains_aggregate() {
                continue;
            }
            if let Some(base) = base_scan_mut(&mut input) {
                if refs_only_layout(c, &base.layout1()) {
                    let t = base.table_name.clone();
                    base.pushed.push(c.clone());
                    note(t);
                    continue;
                }
            }
            if let Some(t) = try_push_right(&mut input, c) {
                note(t);
            }
        }
        for (table, n) in pushed {
            trail.push(TrailEntry {
                rule: "predicate-pushdown",
                detail: format!("{n} conjunct(s) into scan of {table}"),
            });
        }
        LogicalPlan::Filter { input, predicate }
    })
}

/// Push one conjunct into the left-most INNER/CROSS join right scan
/// whose single-table layout resolves every column it references. LEFT
/// join right sides are never eligible: prefiltering them would turn
/// would-be-filtered matches into NULL extensions (visible to e.g.
/// `right.col IS NULL` in the residual WHERE).
fn try_push_right(node: &mut LogicalPlan<'_>, c: &Expr) -> Option<String> {
    match node {
        LogicalPlan::Join {
            left, right, kind, ..
        } => {
            if let Some(t) = try_push_right(left, c) {
                return Some(t);
            }
            if matches!(kind, JoinKind::Inner | JoinKind::Cross)
                && refs_only_layout(c, &right.layout1())
            {
                right.pushed.push(c.clone());
                return Some(right.table_name.clone());
            }
            None
        }
        _ => None,
    }
}

// ---------------- join reordering ----------------

/// Reorder the joins of an ungrouped aggregate query so smaller right
/// sides join first, shrinking intermediate row counts. Gated hard:
/// only full-query aggregates with no bare column references (their
/// result is order-insensitive up to float reassociation), only INNER
/// joins, and only ON conditions whose columns are explicitly qualified
/// with the base or their own right binding — so any permutation
/// resolves names identically and joins legally.
fn join_reorder(root: &mut LogicalPlan<'_>, trail: &mut Vec<TrailEntry>) {
    // Walk the tail, proving the query shape is order-insensitive.
    let mut node = &mut *root;
    loop {
        match node {
            LogicalPlan::Limit { input, .. } | LogicalPlan::Distinct { input } => {
                node = &mut **input;
            }
            LogicalPlan::Sort { input, keys } => {
                if keys.iter().any(|k| has_bare_column(&k.expr)) {
                    return;
                }
                node = &mut **input;
            }
            LogicalPlan::Project { input, projections } => {
                let pure_aggregates = projections.iter().all(|p| match p {
                    Projection::Expr { expr, .. } => !has_bare_column(expr),
                    _ => false,
                });
                if !pure_aggregates {
                    return;
                }
                node = &mut **input;
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                having,
            } => {
                if !group_by.is_empty() || having.as_ref().is_some_and(has_bare_column) {
                    return;
                }
                node = &mut **input;
                break;
            }
            _ => return, // no Aggregate in the tail: row order is the result
        }
    }
    let pipe = match node {
        LogicalPlan::Filter { input, .. } => &mut **input,
        other => other,
    };
    if !matches!(pipe, LogicalPlan::Join { .. }) {
        return;
    }
    let owned = std::mem::replace(pipe, LogicalPlan::Empty);
    let (base, joins) = flatten_joins(owned);
    let rebuilt = reorder_chain(base, joins, trail);
    *pipe = rebuilt;
}

type JoinPart<'a> = (JoinKind, Option<Expr>, Box<ScanNode<'a>>);

fn flatten_joins(node: LogicalPlan<'_>) -> (LogicalPlan<'_>, Vec<JoinPart<'_>>) {
    match node {
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
        } => {
            let (base, mut v) = flatten_joins(*left);
            v.push((kind, on, right));
            (base, v)
        }
        other => (other, Vec::new()),
    }
}

fn rebuild_joins<'a>(base: LogicalPlan<'a>, joins: Vec<JoinPart<'a>>) -> LogicalPlan<'a> {
    let mut node = base;
    for (kind, on, right) in joins {
        node = LogicalPlan::Join {
            left: Box::new(node),
            right,
            kind,
            on,
        };
    }
    node
}

fn reorder_chain<'a>(
    base: LogicalPlan<'a>,
    joins: Vec<JoinPart<'a>>,
    trail: &mut Vec<TrailEntry>,
) -> LogicalPlan<'a> {
    let base_binding = match &base {
        LogicalPlan::Scan(s) => s.binding.clone(),
        _ => return rebuild_joins(base, joins),
    };
    let eligible = joins.len() >= 2
        && joins.iter().all(|(kind, on, right)| {
            *kind == JoinKind::Inner
                && on.as_ref().is_some_and(|on| {
                    let mut cols = Vec::new();
                    collect_columns(on, &mut cols);
                    !cols.is_empty()
                        && cols.iter().all(|(t, _)| {
                            t.is_some_and(|t| {
                                t.eq_ignore_ascii_case(&base_binding)
                                    || t.eq_ignore_ascii_case(&right.binding)
                            })
                        })
                })
        });
    if !eligible {
        return rebuild_joins(base, joins);
    }
    let mut order: Vec<usize> = (0..joins.len()).collect();
    order.sort_by_key(|&i| joins[i].2.source.len());
    if order.iter().enumerate().all(|(pos, &i)| pos == i) {
        return rebuild_joins(base, joins); // already smallest-first
    }
    let detail = order
        .iter()
        .map(|&i| format!("{}({})", joins[i].2.table_name, joins[i].2.source.len()))
        .collect::<Vec<_>>()
        .join(" ⋈ ");
    trail.push(TrailEntry {
        rule: "join-reorder",
        detail: format!("smallest right side first: {detail} (table stats)"),
    });
    let mut by_order: Vec<Option<JoinPart<'a>>> = joins.into_iter().map(Some).collect();
    let reordered: Vec<JoinPart<'a>> = order
        .into_iter()
        .map(|i| by_order[i].take().expect("each join moved once"))
        .collect();
    rebuild_joins(base, reordered)
}

// ---------------- LIMIT pushdown + sort elision ----------------

/// Top-k rewrites under a `Limit` node. Two shapes fire:
///
/// * `Limit(Project(Filter?(Scan)))` — the classic early exit: fuse the
///   WHERE into the scan and stop after OFFSET+LIMIT matches.
/// * `Limit(Sort(Project(Filter?(Scan))))` with a single ascending
///   bare-column key backed by an index — sort elision: drop the Sort,
///   scan in index key order, and early-exit as above. Without the
///   index the Sort blocks the pushdown (every row must be seen), which
///   is exactly the regression the plan-equivalence harness pins.
fn limit_rules(
    root: &mut LogicalPlan<'_>,
    cfg: &OptimizerConfig,
    had_subqueries: bool,
    trail: &mut Vec<TrailEntry>,
) {
    // EXPLAIN plans the unresolved statement, execution the resolved
    // one; skip whenever subqueries were present so both agree (the
    // pre-IR engine made the same call).
    if !cfg.limit_pushdown || had_subqueries {
        return;
    }
    let LogicalPlan::Limit {
        input,
        limit: Some(limit),
        offset,
    } = root
    else {
        return;
    };
    let take = (offset.unwrap_or(0) as usize).saturating_add(*limit as usize);
    match &mut **input {
        LogicalPlan::Project { input: pinput, .. } => {
            if let Some((scan, n_fused)) = fuse_filter_into_scan(pinput) {
                scan.stop_after = Some(take);
                trail.push(TrailEntry {
                    rule: "limit-pushdown",
                    detail: format!(
                        "{} early-exits after {take} match(es){}",
                        scan.table_name,
                        if n_fused > 0 {
                            format!(", {n_fused} WHERE conjunct(s) fused into the scan")
                        } else {
                            String::new()
                        }
                    ),
                });
            }
        }
        LogicalPlan::Sort { keys, .. } if cfg.sort_elision => {
            // Single ascending bare-column key only.
            let [key] = keys.as_slice() else { return };
            let (key_table, key_col) = match (&key.expr, key.descending) {
                (Expr::Column { table, column }, false) => (table.clone(), column.clone()),
                _ => return,
            };
            let saved_keys = keys.clone();
            let LogicalPlan::Sort { input: sinput, .. } =
                std::mem::replace(&mut **input, LogicalPlan::Empty)
            else {
                unreachable!("matched above");
            };
            **input = *sinput; // tentatively drop the Sort
            let restore = |input: &mut Box<LogicalPlan>, keys: Vec<crate::sql::ast::OrderItem>| {
                let inner = std::mem::replace(&mut **input, LogicalPlan::Empty);
                **input = LogicalPlan::Sort {
                    input: Box::new(inner),
                    keys,
                };
            };
            let LogicalPlan::Project {
                input: pinput,
                projections,
            } = &mut **input
            else {
                restore(input, saved_keys.clone());
                return;
            };
            // A projection alias with the key's name shadows the table
            // column in ORDER BY resolution; don't second-guess that.
            let shadowed = projections.iter().any(|p| {
                matches!(p, Projection::Expr { alias: Some(a), .. }
                         if a.eq_ignore_ascii_case(&key_col))
            });
            let index = (!shadowed)
                .then(|| match peel_filter(pinput) {
                    LogicalPlan::Scan(scan) => {
                        let col = match &key_table {
                            Some(t) if !t.eq_ignore_ascii_case(&scan.binding) => None,
                            _ => scan.layout1().resolve(None, &key_col).ok(),
                        }?;
                        scan.source.index_on(col).map(|ix| ix.name.clone())
                    }
                    _ => None,
                })
                .flatten();
            let Some(index_name) = index else {
                restore(input, saved_keys.clone());
                return;
            };
            let Some((scan, n_fused)) = fuse_filter_into_scan(pinput) else {
                restore(input, saved_keys.clone());
                return;
            };
            scan.access = super::ir::Access::IndexOrder {
                index_name: index_name.clone(),
                column: key_col.clone(),
            };
            scan.stop_after = Some(take);
            let table = scan.table_name.clone();
            trail.push(TrailEntry {
                rule: "sort-elision",
                detail: format!(
                    "ORDER BY {key_col} satisfied by index {index_name} on {table}: \
                     Sort dropped, scanning in key order"
                ),
            });
            trail.push(TrailEntry {
                rule: "limit-pushdown",
                detail: format!(
                    "{table} early-exits after {take} match(es){}",
                    if n_fused > 0 {
                        format!(", {n_fused} WHERE conjunct(s) fused into the scan")
                    } else {
                        String::new()
                    }
                ),
            });
        }
        _ => {} // Sort without an index, Distinct, Aggregate: no early exit
    }
}

fn peel_filter<'p, 'a>(node: &'p mut LogicalPlan<'a>) -> &'p mut LogicalPlan<'a> {
    match node {
        LogicalPlan::Filter { input, .. } => input,
        other => other,
    }
}

/// If `node` is `Filter?(Scan)` over a single table, fuse the filter's
/// conjuncts into the scan (removing the Filter node) and return the
/// scan plus the number of fused conjuncts. The fused conjunction is
/// equivalent to the whole predicate because `conjuncts` splits on
/// top-level AND only.
fn fuse_filter_into_scan<'p, 'a>(
    node: &'p mut Box<LogicalPlan<'a>>,
) -> Option<(&'p mut ScanNode<'a>, usize)> {
    match &mut **node {
        LogicalPlan::Scan(_) => match &mut **node {
            LogicalPlan::Scan(s) => Some((s, 0)),
            _ => unreachable!(),
        },
        LogicalPlan::Filter { input, .. } if matches!(&**input, LogicalPlan::Scan(_)) => {
            let LogicalPlan::Filter { input, predicate } =
                std::mem::replace(&mut **node, LogicalPlan::Empty)
            else {
                unreachable!("matched above");
            };
            **node = *input;
            let LogicalPlan::Scan(s) = &mut **node else {
                unreachable!("matched above");
            };
            let fused: Vec<Expr> = conjuncts(&predicate).into_iter().cloned().collect();
            let n = fused.len();
            s.pushed.extend(fused);
            Some((s, n))
        }
        _ => None,
    }
}

// ---------------- projection pruning ----------------

/// Mask columns no operator reads to NULL at materialization time —
/// the masked slots never leave the scan, which avoids cloning large
/// dimension-table strings into every joined fact row.
fn projection_pruning(root: &mut LogicalPlan<'_>, trail: &mut Vec<TrailEntry>) {
    let mut needed: Vec<(Option<String>, String)> = Vec::new();
    if !collect_needed(root, &mut needed) {
        return; // a wildcard projection reads everything
    }
    let mut details = Vec::new();
    mask_scans(root, &needed, &mut details);
    for d in details {
        trail.push(TrailEntry {
            rule: "projection-pruning",
            detail: d,
        });
    }
}

/// Gather every column the tree reads; `false` means a wildcard needs
/// them all.
fn collect_needed(node: &LogicalPlan<'_>, out: &mut Vec<(Option<String>, String)>) -> bool {
    let mut collect = |e: &Expr| {
        let mut cols = Vec::new();
        collect_columns(e, &mut cols);
        out.extend(
            cols.into_iter()
                .map(|(t, c)| (t.map(str::to_string), c.to_string())),
        );
    };
    match node {
        LogicalPlan::Empty => true,
        LogicalPlan::Scan(s) => {
            s.pushed.iter().for_each(&mut collect);
            true
        }
        LogicalPlan::Join {
            left, right, on, ..
        } => {
            right.pushed.iter().for_each(&mut collect);
            if let Some(on) = on {
                collect(on);
            }
            collect_needed(left, out)
        }
        LogicalPlan::Filter { input, predicate } => {
            collect(predicate);
            collect_needed(input, out)
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            having,
        } => {
            group_by.iter().for_each(&mut collect);
            if let Some(h) = having {
                collect(h);
            }
            collect_needed(input, out)
        }
        LogicalPlan::Project { input, projections } => {
            for p in projections {
                match p {
                    Projection::Wildcard | Projection::TableWildcard(_) => return false,
                    Projection::Expr { expr, .. } => collect(expr),
                }
            }
            collect_needed(input, out)
        }
        LogicalPlan::Distinct { input } => collect_needed(input, out),
        LogicalPlan::Sort { input, keys } => {
            keys.iter().for_each(|k| collect(&k.expr));
            collect_needed(input, out)
        }
        LogicalPlan::Limit { input, .. } => collect_needed(input, out),
    }
}

fn mask_scans(
    node: &mut LogicalPlan<'_>,
    needed: &[(Option<String>, String)],
    details: &mut Vec<String>,
) {
    let mask_one = |s: &mut ScanNode<'_>, details: &mut Vec<String>| {
        if let Some(mask) = column_mask(&s.binding, &s.columns, needed) {
            let masked = mask.iter().filter(|&&k| !k).count();
            details.push(format!(
                "{}: {masked}/{} column(s) masked",
                s.table_name,
                s.columns.len()
            ));
            s.mask = Some(mask);
        }
    };
    match node {
        LogicalPlan::Scan(s) => mask_one(s, details),
        LogicalPlan::Join { left, right, .. } => {
            mask_scans(left, needed, details);
            mask_one(right, details);
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => mask_scans(input, needed, details),
        LogicalPlan::Empty => {}
    }
}

/// Per-column keep flags for one binding; `None` when nothing prunes.
pub(crate) fn column_mask(
    binding: &str,
    columns: &[String],
    needed: &[(Option<String>, String)],
) -> Option<Vec<bool>> {
    let mask: Vec<bool> = columns
        .iter()
        .map(|col| {
            needed.iter().any(|(t, c)| {
                c.eq_ignore_ascii_case(col)
                    && t.as_deref().is_none_or(|t| t.eq_ignore_ascii_case(binding))
            })
        })
        .collect();
    if mask.iter().all(|&k| k) {
        None // nothing to prune
    } else {
        Some(mask)
    }
}
