/root/repo/target/debug/examples/large_scale_miranda-3ba758e517bbdf1f.d: examples/large_scale_miranda.rs Cargo.toml

/root/repo/target/debug/examples/liblarge_scale_miranda-3ba758e517bbdf1f.rmeta: examples/large_scale_miranda.rs Cargo.toml

examples/large_scale_miranda.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
