//! Experiment E3 (paper §5.2): the trial browser / speedup analyzer over
//! EVH1-style scalability data, driven end-to-end through the database.

use perfdmf::analysis::SpeedupAnalysis;
use perfdmf::core::DatabaseSession;
use perfdmf::db::{Connection, Value};
use perfdmf::workload::Evh1Model;

#[test]
fn evh1_speedup_study_through_database() {
    let model = Evh1Model::default_mix(2005);
    let conn = Connection::open_in_memory();
    let mut session = DatabaseSession::new(conn).unwrap();
    let procs = [1usize, 2, 4, 8, 16];
    for &p in &procs {
        session
            .store_profile("evh1", "scaling", &model.generate(p))
            .unwrap();
    }

    // Reload from the database (not the in-memory profiles!) and analyze.
    session.reset();
    let mut analysis = SpeedupAnalysis::new("GET_TIME_OF_DAY");
    for trial in session.trial_list().unwrap() {
        let nodes = trial.field("node_count").and_then(Value::as_int).unwrap() as usize;
        session.set_trial(trial.id.unwrap());
        analysis.add_trial(nodes, session.load_profile().unwrap());
    }
    assert_eq!(analysis.trial_count(), procs.len());

    let routines = analysis.routine_speedups();
    assert!(routines.len() > 30, "every profiled routine is analyzed");

    // Shape checks against the model's ground truth:
    // 1. compute sweeps scale nearly linearly
    let sweep = routines
        .iter()
        .find(|r| r.event == "sweep_x_stage1")
        .unwrap();
    let at16 = sweep.points.iter().find(|p| p.processors == 16).unwrap();
    assert!(
        at16.mean > 13.0 && at16.mean < 18.0,
        "sweep mean {}",
        at16.mean
    );
    assert!(at16.min <= at16.mean && at16.mean <= at16.max);

    // 2. serial setup stays flat
    let setup = routines.iter().find(|r| r.event == "init_grid").unwrap();
    let s16 = setup.points.iter().find(|p| p.processors == 16).unwrap();
    assert!(s16.mean < 1.3, "serial speedup {}", s16.mean);

    // 3. MPI routines slow down (negative scaling)
    let mpi = routines
        .iter()
        .find(|r| r.event == "MPI_Allreduce()")
        .unwrap();
    let m16 = mpi.points.iter().find(|p| p.processors == 16).unwrap();
    assert!(m16.mean < 1.0, "mpi speedup {}", m16.mean);

    // 4. application-level Amdahl fit recovers the model's serial share
    let scaling = analysis.application_scaling().unwrap();
    assert_eq!(scaling.points.len(), procs.len());
    // speedups monotone increasing, efficiency decreasing
    for w in scaling.points.windows(2) {
        assert!(
            w[1].1 > w[0].1,
            "speedup should increase: {:?}",
            scaling.points
        );
        assert!(w[1].2 < w[0].2 + 1e-9, "efficiency should decrease");
    }
    let frac = scaling.amdahl_serial_fraction.unwrap();
    assert!(frac > 0.005 && frac < 0.12, "serial fraction {frac}");

    // 5. the report table renders every routine
    let report = analysis.report();
    assert!(report.contains("init_grid"));
    assert!(report.contains("MPI_Allreduce()"));
}

#[test]
fn aggregates_via_sql_match_analysis_toolkit() {
    // Experiment E7: the DBMS's MIN/MAX/AVG/STDDEV agree with the toolkit.
    let model = Evh1Model::default_mix(31);
    let profile = model.generate(8);
    let conn = Connection::open_in_memory();
    let mut session = DatabaseSession::new(conn).unwrap();
    let trial = session.store_profile("evh1", "agg", &profile).unwrap();
    session.set_trial(trial);
    let aggs = session.event_aggregates("GET_TIME_OF_DAY").unwrap();
    let m = profile.find_metric("GET_TIME_OF_DAY").unwrap();
    let mut checked = 0;
    for a in &aggs {
        let Some(e) = profile.find_event(&a.event_name) else {
            continue;
        };
        let Some(stats) = profile.event_stats(e, m, perfdmf::profile::IntervalField::Exclusive)
        else {
            continue;
        };
        if stats.count == 0 {
            continue;
        }
        assert_eq!(a.count as usize, stats.count, "{}", a.event_name);
        assert!((a.min_exclusive.unwrap() - stats.min).abs() < 1e-9);
        assert!((a.max_exclusive.unwrap() - stats.max).abs() < 1e-9);
        assert!((a.mean_exclusive.unwrap() - stats.mean).abs() < 1e-9);
        if stats.count > 1 {
            assert!(
                (a.stddev_exclusive.unwrap() - stats.stddev).abs() < 1e-9 * (1.0 + stats.stddev),
                "{}: sql {} vs toolkit {}",
                a.event_name,
                a.stddev_exclusive.unwrap(),
                stats.stddev
            );
        }
        checked += 1;
    }
    assert!(checked > 30, "checked {checked} events");
}
