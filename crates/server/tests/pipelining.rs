//! Request pipelining on the event-loop executor.
//!
//! A v4 connection may keep a bounded window of calls outstanding; the
//! server admits them concurrently and writes replies as executions
//! finish — possibly out of the order the calls were sent. These tests
//! pin the three load-bearing properties:
//!
//! 1. **Out-of-order replies match by seq.** A slow call does not delay
//!    fast calls behind it, and every reply lands at the index of the
//!    request that caused it.
//! 2. **The window is a hard bound.** Calls beyond it are answered
//!    immediately with a typed error, not queued, not dropped, and not
//!    a connection teardown.
//! 3. **Retries stay at-most-once.** A pipelined batch torn by
//!    connection faults resends only unanswered calls under their
//!    original idempotency keys, so every acknowledged write executed
//!    exactly once.

use perfdmf_core::DatabaseSession;
use perfdmf_db::Connection;
use perfdmf_explorer::{ClusterMethod, FeatureSpace, Request, Response};
use perfdmf_profile::{IntervalData, IntervalEvent, Metric, Profile, ThreadId};
use perfdmf_server::wire::{parse_header, verify_body, Message, HEADER_LEN};
use perfdmf_server::{NetClient, NetFaultPlan, PerfdmfServer, ServerConfig, PROTOCOL_VERSION};
use proptest::prelude::*;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn seeded_database() -> (Connection, i64) {
    let conn = Connection::open_in_memory();
    let mut session = DatabaseSession::new(conn.clone()).expect("schema");
    let mut p = Profile::new("pipeline");
    let m = p.add_metric(Metric::measured("TIME"));
    let a = p.add_event(IntervalEvent::ungrouped("compute"));
    let b = p.add_event(IntervalEvent::ungrouped("exchange"));
    p.add_threads((0..8).map(|n| ThreadId::new(n, 0, 0)));
    for (i, &t) in p.threads().to_vec().iter().enumerate() {
        let (ca, cb) = if i < 4 { (100.0, 5.0) } else { (10.0, 80.0) };
        p.set_interval(a, t, m, IntervalData::new(ca, ca, 10.0, 0.0));
        p.set_interval(b, t, m, IntervalData::new(cb, cb, 10.0, 0.0));
    }
    let trial = session
        .store_profile("pipe-app", "pipe-exp", &p)
        .expect("store");
    (conn, trial)
}

fn cluster_request(trial_id: i64) -> Request {
    Request::ClusterTrial {
        trial_id,
        features: FeatureSpace::EventsOfMetric("TIME".into()),
        k: None,
        max_k: 4,
        pca_components: 0,
        method: ClusterMethod::KMeans,
    }
}

/// Read one complete frame off a blocking socket.
fn read_frame(stream: &mut TcpStream) -> Message {
    let mut header = [0u8; HEADER_LEN];
    stream.read_exact(&mut header).expect("frame header");
    let (len, crc) = parse_header(&header).expect("valid header");
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body).expect("frame body");
    verify_body(crc, &body).expect("valid checksum");
    Message::decode(&body).expect("decodable frame")
}

/// Raw v4 handshake on a plain socket (the pipelining shape under test
/// is below the `NetClient` API, so the test speaks wire directly).
fn raw_handshake(addr: std::net::SocketAddr, tenant: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            &Message::Hello {
                protocol: PROTOCOL_VERSION,
                tenant: tenant.into(),
                token: None,
            }
            .to_frame(),
        )
        .expect("hello");
    match read_frame(&mut stream) {
        Message::HelloAck { .. } => stream,
        other => panic!("expected HelloAck, got {other:?}"),
    }
}

/// Property 2, deterministically: one worker, window of 2. A burst of
/// [Stall, 5×Ping] written in a single sweep admits exactly two calls
/// (the stall occupies the worker, so nothing can complete and free a
/// slot) and rejects the other four with the typed window error —
/// immediately, while the admitted calls are still executing.
#[test]
fn calls_beyond_the_window_get_typed_errors() {
    let (conn, _trial) = seeded_database();
    let server = PerfdmfServer::start_with_config(
        conn,
        ServerConfig {
            workers: 1,
            window: 2,
            allow_fault_injection: true,
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    let mut stream = raw_handshake(server.addr(), "window-burst");

    let mut burst = Vec::new();
    for seq in 1..=6u64 {
        let request = if seq == 1 {
            Request::Stall { millis: 300 }
        } else {
            Request::Ping
        };
        burst.extend_from_slice(
            &Message::Call {
                seq,
                deadline_ms: 0,
                idempotency: 0,
                trace: None,
                request,
            }
            .to_frame(),
        );
    }
    stream.write_all(&burst).expect("burst write");

    let mut replies: HashMap<u64, Response> = HashMap::new();
    for _ in 0..6 {
        match read_frame(&mut stream) {
            Message::Reply { seq, response, .. } => {
                assert!(replies.insert(seq, response).is_none(), "duplicate seq");
            }
            other => panic!("expected Reply, got {other:?}"),
        }
    }
    // Seq 1 (the stall) and seq 2 (one ping) were admitted.
    assert!(
        matches!(replies[&1], Response::Stored { .. }),
        "stall reply: {:?}",
        replies[&1]
    );
    assert!(
        matches!(replies[&2], Response::Pong),
        "admitted ping reply: {:?}",
        replies[&2]
    );
    // Seqs 3..=6 overflowed the window of 2.
    for seq in 3..=6u64 {
        match &replies[&seq] {
            Response::Error(reason) => assert!(
                reason.contains("window"),
                "seq {seq}: rejection must name the window, got {reason:?}"
            ),
            other => panic!("seq {seq}: expected a window error, got {other:?}"),
        }
    }
    server.shutdown();
}

/// Property 1, deterministically: with two workers, a slow call and a
/// fast call pipelined together answer fast-first on the wire — and the
/// reply seqs prove the out-of-order matching.
#[test]
fn fast_calls_overtake_slow_ones_and_replies_match_by_seq() {
    let (conn, _trial) = seeded_database();
    let server = PerfdmfServer::start_with_config(
        conn,
        ServerConfig {
            workers: 2,
            allow_fault_injection: true,
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    let mut stream = raw_handshake(server.addr(), "overtake");

    let mut burst = Vec::new();
    for (seq, request) in [
        (1u64, Request::Stall { millis: 400 }),
        (2u64, Request::Ping),
    ] {
        burst.extend_from_slice(
            &Message::Call {
                seq,
                deadline_ms: 0,
                idempotency: 0,
                trace: None,
                request,
            }
            .to_frame(),
        );
    }
    stream.write_all(&burst).expect("burst write");

    let first = match read_frame(&mut stream) {
        Message::Reply { seq, response, .. } => (seq, response),
        other => panic!("expected Reply, got {other:?}"),
    };
    let second = match read_frame(&mut stream) {
        Message::Reply { seq, response, .. } => (seq, response),
        other => panic!("expected Reply, got {other:?}"),
    };
    assert_eq!(first.0, 2, "the ping must overtake the 400ms stall");
    assert!(matches!(first.1, Response::Pong));
    assert_eq!(second.0, 1);
    assert!(matches!(second.1, Response::Stored { .. }));
    server.shutdown();
}

/// Property 3: a pipelined batch of effectful writes driven through
/// disconnect/corruption faults still applies each write exactly once.
/// Every acknowledged settings_id must replay (not re-execute) when its
/// key is presented again by a clean client.
#[test]
fn pipelined_retries_apply_at_most_once_under_faults() {
    let (conn, trial) = seeded_database();
    let server = PerfdmfServer::start_with_config(
        conn.clone(),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    let addr = server.addr();
    let settings_rows = |conn: &Connection| -> i64 {
        match conn
            .execute("SELECT COUNT(*) FROM analysis_settings", &[])
            .expect("count settings")
        {
            perfdmf_db::Outcome::Rows(rs) => rs.rows[0][0].as_int().expect("count"),
            other => panic!("unexpected outcome {other:?}"),
        }
    };
    let rows_before = settings_rows(&conn);

    let mut client = NetClient::new(addr, "pipeline-faulted")
        .with_deadline(Duration::from_secs(10))
        .with_key_space(0x00AB_CDEF)
        .with_window(4)
        .with_fault_plan(
            NetFaultPlan::seeded(0xFEED)
                .partial_io(7)
                .disconnect_after(900),
        );
    let batch: Vec<Request> = (0..6).map(|_| cluster_request(trial)).collect();
    let responses = client.pipeline(&batch);
    assert!(
        client.connects() > 1,
        "the fault plan must force reconnects"
    );
    client.close();

    let mut settings = Vec::new();
    for (i, response) in responses.iter().enumerate() {
        match response {
            Response::Clustering { settings_id, .. } => settings.push(*settings_id),
            other => panic!("batch item {i} unanswered under faults: {other:?}"),
        }
    }
    // Each batch item drew its own key, so each executed independently —
    // the acked ids must be pairwise distinct...
    let mut dedup = settings.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(
        dedup.len(),
        batch.len(),
        "acked ids must be distinct: {settings:?}"
    );
    // ...and at-most-once means the archive gained *exactly* one
    // settings row per batch item: a retry whose predecessor executed
    // (only the ack was torn) must have replayed, never re-run.
    let rows_after = settings_rows(&conn);
    assert_eq!(
        rows_after - rows_before,
        batch.len() as i64,
        "faulted pipelined retries wrote extra settings rows"
    );
    // And every acked id is durably fetchable (no acknowledged write lost).
    let mut clean = NetClient::new(addr, "pipeline-verify");
    for (i, &id) in settings.iter().enumerate() {
        match clean.request(Request::FetchResult { settings_id: id }) {
            Response::Stored { .. } => {}
            other => panic!("batch item {i}: acked settings_id {id} lost: {other:?}"),
        }
    }
    clean.close();
    server.shutdown();
}

proptest! {
    // Full server per case: keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property 1, generatively: any mix of request kinds pipelined in
    /// any order comes back index-aligned — each slot holds the reply
    /// type its request demands, regardless of wire arrival order.
    #[test]
    fn pipelined_replies_always_line_up_with_requests(kinds in proptest::collection::vec(0u8..3, 1..12)) {
        let (conn, trial) = seeded_database();
        let server = PerfdmfServer::start_with_config(
            conn,
            ServerConfig { workers: 3, ..ServerConfig::default() },
        ).expect("server start");
        let mut client = NetClient::new(server.addr(), "pipeline-prop").with_window(5);
        let batch: Vec<Request> = kinds.iter().map(|k| match k {
            0 => Request::Ping,
            1 => cluster_request(trial),
            _ => Request::CorrelateMetrics { trial_id: trial, event: "compute".into() },
        }).collect();
        let responses = client.pipeline(&batch);
        prop_assert_eq!(responses.len(), batch.len());
        for (i, (kind, response)) in kinds.iter().zip(&responses).enumerate() {
            let ok = match kind {
                0 => matches!(response, Response::Pong),
                1 => matches!(response, Response::Clustering { .. }),
                _ => matches!(response, Response::Correlation { .. }),
            };
            prop_assert!(ok, "slot {} (kind {}) got mismatched reply {:?}", i, kind, response);
        }
        client.close();
        server.shutdown();
    }
}
