/root/repo/target/release/deps/perfdmf-7fdb8b9aeb242d5c.d: src/bin/perfdmf.rs

/root/repo/target/release/deps/perfdmf-7fdb8b9aeb242d5c: src/bin/perfdmf.rs

src/bin/perfdmf.rs:
