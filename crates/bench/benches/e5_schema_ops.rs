//! Experiment E5 — flexible-schema operations (paper §3.2).
//!
//! Measures the cost of the operations that make the schema "flexible":
//! ALTER TABLE ADD/DROP COLUMN on a populated trial table, runtime
//! metadata discovery, and FlexRow save/load. Expected shape: ALTER cost
//! is linear in row count (every row is rewritten); metadata discovery is
//! O(columns) and effectively free.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perfdmf_core::{create_schema, FlexRow};
use perfdmf_db::{Connection, Value};

fn populated(rows: usize) -> Connection {
    let conn = Connection::open_in_memory();
    create_schema(&conn).expect("schema");
    let mut app = FlexRow::new("app");
    let app_id = app.save(&conn, "application").expect("app");
    let mut exp = FlexRow::new("exp").with_field("application", app_id);
    let exp_id = exp.save(&conn, "experiment").expect("exp");
    let ins = conn
        .prepare("INSERT INTO trial (experiment, name, node_count) VALUES (?, ?, ?)")
        .expect("prepare");
    conn.transaction(|tx| {
        for i in 0..rows {
            tx.execute_prepared(
                &ins,
                &[
                    Value::Int(exp_id),
                    Value::Text(format!("t{i}").into()),
                    Value::Int((i % 1024) as i64),
                ],
            )?;
        }
        Ok(())
    })
    .expect("populate");
    conn
}

fn bench_alter_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_alter_add_drop");
    group.sample_size(20);
    for rows in [100usize, 1000, 10000] {
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &rows| {
            let conn = populated(rows);
            b.iter(|| {
                conn.execute("ALTER TABLE trial ADD COLUMN scratch TEXT DEFAULT 'x'", &[])
                    .expect("add");
                conn.execute("ALTER TABLE trial DROP COLUMN scratch", &[])
                    .expect("drop");
            });
        });
    }
    group.finish();
}

fn bench_metadata_discovery(c: &mut Criterion) {
    let conn = populated(100);
    // widen the table so discovery walks a realistic column set
    for i in 0..12 {
        conn.execute(&format!("ALTER TABLE trial ADD COLUMN meta_{i} TEXT"), &[])
            .expect("widen");
    }
    c.bench_function("e5_table_meta", |b| {
        b.iter(|| conn.table_meta("trial").expect("meta"));
    });
}

fn bench_flexrow_save_load(c: &mut Criterion) {
    let conn = populated(10);
    conn.execute("ALTER TABLE application ADD COLUMN compiler TEXT", &[])
        .expect("alter");
    let mut group = c.benchmark_group("e5_flexrow");
    group.bench_function("save_insert", |b| {
        b.iter(|| {
            let mut row = FlexRow::new("bench-app").with_field("compiler", "xlf");
            row.save(&conn, "application").expect("save")
        });
    });
    let mut row = FlexRow::new("the-one").with_field("compiler", "gcc");
    let id = row.save(&conn, "application").expect("save");
    group.bench_function("load", |b| {
        b.iter(|| FlexRow::load(&conn, "application", id).expect("load"));
    });
    group.bench_function("save_update", |b| {
        b.iter(|| {
            row.set_field("compiler", "icc");
            row.save(&conn, "application").expect("update")
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_alter_table,
    bench_metadata_discovery,
    bench_flexrow_save_load
);
criterion_main!(benches);
