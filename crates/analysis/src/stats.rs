//! Descriptive statistics and regression primitives.
//!
//! These are the reusable numeric kernels of the analysis toolkit — the
//! Rust stand-ins for the summary statistics PerfExplorer obtained from R.

/// Summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
    /// Sample variance (n−1).
    pub variance: f64,
    /// Sample standard deviation.
    pub stddev: f64,
}

/// Compute a summary; `None` for an empty slice.
pub fn summarize(xs: &[f64]) -> Option<Summary> {
    if xs.is_empty() {
        return None;
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut mean = 0.0;
    let mut m2 = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        min = min.min(x);
        max = max.max(x);
        let delta = x - mean;
        mean += delta / (i + 1) as f64;
        m2 += delta * (x - mean);
    }
    let variance = if xs.len() > 1 {
        m2 / (xs.len() - 1) as f64
    } else {
        0.0
    };
    Some(Summary {
        count: xs.len(),
        min,
        max,
        mean,
        variance,
        stddev: variance.sqrt(),
    })
}

/// Arithmetic mean; 0.0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Median (average of middle two for even length); `None` when empty.
pub fn median(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len();
    Some(if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    })
}

/// Linear-interpolated percentile, `p` in [0, 100].
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(v[lo] * (1.0 - frac) + v[hi] * frac)
}

/// Sample covariance (n−1); `None` unless both slices have the same length
/// ≥ 2.
pub fn covariance(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let s: f64 = xs.iter().zip(ys).map(|(&x, &y)| (x - mx) * (y - my)).sum();
    Some(s / (xs.len() - 1) as f64)
}

/// Pearson correlation coefficient; `None` for degenerate input.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    let cov = covariance(xs, ys)?;
    let sx = summarize(xs)?.stddev;
    let sy = summarize(ys)?.stddev;
    if sx == 0.0 || sy == 0.0 {
        return None;
    }
    Some(cov / (sx * sy))
}

/// Correlation matrix of column-major data: `data[c]` is column `c`.
/// Degenerate pairs get correlation 0.
pub fn correlation_matrix(data: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = data.len();
    let mut out = vec![vec![0.0; n]; n];
    for i in 0..n {
        out[i][i] = 1.0;
        for j in (i + 1)..n {
            let r = pearson(&data[i], &data[j]).unwrap_or(0.0);
            out[i][j] = r;
            out[j][i] = r;
        }
    }
    out
}

/// Ordinary least squares fit `y = a + b·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Intercept.
    pub intercept: f64,
    /// Slope.
    pub slope: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

/// Fit a line by least squares; `None` for degenerate input.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let sxx: f64 = xs.iter().map(|&x| (x - mx) * (x - mx)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(&x, &y)| (x - mx) * (y - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = ys.iter().map(|&y| (y - my) * (y - my)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(&x, &y)| {
            let f = intercept + slope * x;
            (y - f) * (y - f)
        })
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(LinearFit {
        intercept,
        slope,
        r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count, 8);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.variance - 32.0 / 7.0).abs() < 1e-12);
        assert!(summarize(&[]).is_none());
        let one = summarize(&[3.0]).unwrap();
        assert_eq!(one.stddev, 0.0);
    }

    #[test]
    fn median_and_percentile() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.0), Some(1.0));
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0, 5.0], 100.0), Some(5.0));
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0, 5.0], 50.0), Some(3.0));
        assert_eq!(percentile(&[1.0, 2.0], 50.0), Some(1.5));
    }

    #[test]
    fn correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[1.0, 1.0, 1.0, 1.0]), None);
        assert_eq!(pearson(&xs, &ys[..2]), None);
    }

    #[test]
    fn correlation_matrix_shape() {
        let m = correlation_matrix(&[
            vec![1.0, 2.0, 3.0],
            vec![2.0, 4.0, 6.0],
            vec![3.0, 1.0, 2.0],
        ]);
        assert_eq!(m.len(), 3);
        assert_eq!(m[0][0], 1.0);
        assert!((m[0][1] - 1.0).abs() < 1e-12);
        assert_eq!(m[1][2], m[2][1]);
    }

    #[test]
    fn linear_fit_exact_and_noisy() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let f = linear_fit(&xs, &ys).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 3.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
        assert!(linear_fit(&xs, &ys[..2]).is_none());
        assert!(linear_fit(&[1.0, 1.0], &[2.0, 3.0]).is_none());
    }
}
