//! Experiment E7 — SQL aggregate layer (paper §5.2: "standard SQL
//! aggregate operations such as minimum, maximum, mean, standard
//! deviation").
//!
//! Measures the grouped-aggregate query that powers the speedup analyzer
//! (per-event MIN/MAX/AVG/STDDEV across threads) against the equivalent
//! toolkit-side computation on a loaded profile. Expected shape: both
//! scale linearly in location rows; SQL pays the relational overhead,
//! the toolkit pays the full-trial load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use perfdmf_bench::store_fresh;
use perfdmf_core::{load_trial, DatabaseSession};
use perfdmf_profile::IntervalField;
use perfdmf_workload::Evh1Model;

fn bench_sql_aggregates(c: &mut Criterion) {
    let model = Evh1Model::default_mix(41);
    let mut group = c.benchmark_group("e7_sql_event_aggregates");
    group.sample_size(20);
    for procs in [16usize, 64, 256] {
        let profile = model.generate(procs);
        let points = profile.data_point_count() as u64;
        let (conn, trial) = store_fresh(&profile);
        let mut session = DatabaseSession::new(conn).expect("session");
        session.set_trial(trial);
        group.throughput(Throughput::Elements(points));
        group.bench_with_input(BenchmarkId::from_parameter(procs), &(), |b, _| {
            b.iter(|| session.event_aggregates("GET_TIME_OF_DAY").expect("aggs"));
        });
    }
    group.finish();
}

fn bench_toolkit_aggregates(c: &mut Criterion) {
    let model = Evh1Model::default_mix(41);
    let mut group = c.benchmark_group("e7_toolkit_event_stats");
    for procs in [16usize, 64, 256] {
        let profile = model.generate(procs);
        let m = profile.find_metric("GET_TIME_OF_DAY").expect("metric");
        group.throughput(Throughput::Elements(profile.data_point_count() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(procs), &(), |b, _| {
            b.iter(|| {
                (0..profile.events().len())
                    .filter_map(|e| {
                        profile.event_stats(
                            perfdmf_profile::EventId(e),
                            m,
                            IntervalField::Exclusive,
                        )
                    })
                    .count()
            });
        });
    }
    group.finish();
}

fn bench_load_then_analyze(c: &mut Criterion) {
    // the paper's tradeoff: database-only access vs loading the whole
    // trial and analyzing in memory
    let model = Evh1Model::default_mix(43);
    let profile = model.generate(64);
    let (conn, trial) = store_fresh(&profile);
    let mut group = c.benchmark_group("e7_access_methods");
    group.sample_size(20);
    let mut session = DatabaseSession::new(conn.clone()).expect("session");
    session.set_trial(trial);
    group.bench_function("database_only_aggregates", |b| {
        b.iter(|| session.event_aggregates("GET_TIME_OF_DAY").expect("aggs"));
    });
    group.bench_function("load_trial_then_stats", |b| {
        b.iter(|| {
            let p = load_trial(&conn, trial).expect("load");
            let m = p.find_metric("GET_TIME_OF_DAY").expect("metric");
            (0..p.events().len())
                .filter_map(|e| {
                    p.event_stats(perfdmf_profile::EventId(e), m, IntervalField::Exclusive)
                })
                .count()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sql_aggregates,
    bench_toolkit_aggregates,
    bench_load_then_analyze
);
criterion_main!(benches);
