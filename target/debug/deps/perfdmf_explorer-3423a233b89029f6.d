/root/repo/target/debug/deps/perfdmf_explorer-3423a233b89029f6.d: crates/explorer/src/lib.rs crates/explorer/src/client.rs crates/explorer/src/protocol.rs crates/explorer/src/server.rs

/root/repo/target/debug/deps/libperfdmf_explorer-3423a233b89029f6.rlib: crates/explorer/src/lib.rs crates/explorer/src/client.rs crates/explorer/src/protocol.rs crates/explorer/src/server.rs

/root/repo/target/debug/deps/libperfdmf_explorer-3423a233b89029f6.rmeta: crates/explorer/src/lib.rs crates/explorer/src/client.rs crates/explorer/src/protocol.rs crates/explorer/src/server.rs

crates/explorer/src/lib.rs:
crates/explorer/src/client.rs:
crates/explorer/src/protocol.rs:
crates/explorer/src/server.rs:
