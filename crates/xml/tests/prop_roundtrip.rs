//! Property tests: arbitrary trees of elements serialize and parse back
//! identically, and arbitrary strings survive escape/unescape.

use perfdmf_xml::{escape_attr, escape_text, unescape, Element};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    "[A-Za-z_][A-Za-z0-9_.-]{0,12}"
}

fn arb_text() -> impl Strategy<Value = String> {
    // Avoid raw control chars (writer passes them through; parser too) but
    // exercise all escape-relevant characters and unicode.
    proptest::collection::vec(
        prop_oneof![
            Just('a'),
            Just('Z'),
            Just('0'),
            Just(' '),
            Just('<'),
            Just('>'),
            Just('&'),
            Just('"'),
            Just('\''),
            Just('λ'),
            Just('('),
            Just(')'),
            Just('/'),
            Just('='),
            Just(';'),
        ],
        0..24,
    )
    .prop_map(|v| v.into_iter().collect())
}

fn arb_element(depth: u32) -> BoxedStrategy<Element> {
    let leaf = (
        arb_name(),
        proptest::collection::vec((arb_name(), arb_text()), 0..4),
        arb_text(),
    )
        .prop_map(|(name, attrs, text)| {
            let mut e = Element::new(name).with_text(text);
            for (n, v) in attrs {
                e = e.with_attr(n, v);
            }
            e
        });
    if depth == 0 {
        return leaf.boxed();
    }
    (
        leaf,
        proptest::collection::vec(arb_element(depth - 1), 0..4),
    )
        .prop_map(|(mut e, kids)| {
            for k in kids {
                e = e.with_child(k);
            }
            e
        })
        .boxed()
}

fn dedupe_attrs(e: &mut Element) {
    let mut seen = std::collections::HashSet::new();
    e.attributes.retain(|(n, _)| seen.insert(n.clone()));
    for c in &mut e.children {
        dedupe_attrs(c);
    }
}

proptest! {
    #[test]
    fn escape_text_roundtrips(s in arb_text()) {
        let esc = escape_text(&s).into_owned();
        prop_assert_eq!(unescape(&esc).unwrap(), s);
    }

    #[test]
    fn escape_attr_roundtrips(s in arb_text()) {
        let esc = escape_attr(&s).into_owned();
        prop_assert_eq!(unescape(&esc).unwrap(), s);
    }

    #[test]
    fn element_tree_roundtrips_compact(mut e in arb_element(3)) {
        dedupe_attrs(&mut e);
        let xml = e.to_xml(false);
        let back = Element::parse(&xml).unwrap();
        prop_assert_eq!(back, e);
    }

    #[test]
    fn element_tree_roundtrips_pretty(mut e in arb_element(2)) {
        dedupe_attrs(&mut e);
        // Pretty printing inserts whitespace between child elements; text
        // content of elements *with children* may gain whitespace, so only
        // compare structure for childless text. To keep the property exact,
        // strip text from nodes that have children.
        fn strip_mixed(e: &mut Element) {
            if !e.children.is_empty() {
                e.text_content.clear();
            }
            for c in &mut e.children { strip_mixed(c); }
        }
        strip_mixed(&mut e);
        let xml = e.to_xml(true);
        let mut back = Element::parse(&xml).unwrap();
        // Indentation shows up as whitespace-only text on parents; trim it.
        fn trim_ws(e: &mut Element) {
            if e.text_content.trim().is_empty() { e.text_content.clear(); }
            else { e.text_content = e.text_content.trim().to_string(); }
            for c in &mut e.children { trim_ws(c); }
        }
        trim_ws(&mut back);
        fn trim_leaf(e: &mut Element) {
            e.text_content = e.text_content.trim().to_string();
            for c in &mut e.children { trim_leaf(c); }
        }
        trim_leaf(&mut e);
        prop_assert_eq!(back, e);
    }

    #[test]
    fn parser_never_panics(s in "\\PC{0,200}") {
        let _ = Element::parse(&s);
    }
}
