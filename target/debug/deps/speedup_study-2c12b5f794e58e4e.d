/root/repo/target/debug/deps/speedup_study-2c12b5f794e58e4e.d: tests/speedup_study.rs

/root/repo/target/debug/deps/speedup_study-2c12b5f794e58e4e: tests/speedup_study.rs

tests/speedup_study.rs:
