//! The length-prefixed binary wire protocol.
//!
//! Every frame on the wire is `magic(u32) | len(u32) | crc(u32) |
//! body`, little endian, where `body` encodes one [`Message`] and `crc`
//! is the CRC-32 (IEEE) of the body. The body is a tagged tree: one
//! `u8` tag per enum variant, `u64`/`i64`/`u32` little-endian integers,
//! `f64` as IEEE bits, strings and vectors as `u32` length + elements.
//!
//! Decoding is **total**: any byte sequence yields either a value or a
//! typed [`WireError`] — never a panic and never an unbounded
//! allocation. Three guards enforce that:
//!
//! * frames longer than [`MAX_FRAME_LEN`] are rejected from the header
//!   alone, before any body byte is read or buffered;
//! * the body checksum must match the header's `crc` before decoding —
//!   in-flight corruption becomes a typed error and a clean retry, not
//!   a structurally valid frame with silently altered values (a flipped
//!   bit in an idempotency key or a clustering parameter would
//!   otherwise *execute*, as the chaos harness demonstrated);
//! * every declared collection length is checked against the bytes
//!   actually remaining in the frame before allocating, so a forged
//!   length can never make the decoder reserve more memory than the
//!   attacker sent.
//!
//! The codec is versioned by [`PROTOCOL_VERSION`], carried in the
//! [`Message::Hello`] handshake; servers reject clients speaking a
//! version outside [`MIN_PROTOCOL_VERSION`]..=[`PROTOCOL_VERSION`] with
//! a `Goodbye`.
//!
//! **Version 3** added end-to-end tracing and metering without breaking
//! version 2 peers: a `Call` *may* carry a trace context and a `Reply`
//! *may* carry the server-side [`ResourceUsage`], each encoded under a
//! new message tag (5 and 6). A `Call` without trace context and a
//! `Reply` without usage still encode under their v2 tags (2 and 3),
//! bit-identical to version 2 — so a v2 peer's frames decode unchanged
//! on a v3 server, and a v3 server answering a v2 session simply never
//! sends tag 6. The trace context rides *inside* the CRC-protected
//! body, so a corrupted trace id is caught at the frame boundary like
//! any other field.
//!
//! **Version 4** adds session authentication and request pipelining,
//! again additively. A `Hello` *may* carry a shared-secret token under
//! a new tag (7); a token-less `Hello` still encodes under tag 0,
//! bit-identical to earlier versions. A server that rejects the token
//! answers with a typed [`Message::AuthFailed`] (tag 8) before any
//! request is admitted. Pipelining required no new frames at all:
//! `Call` already carries a per-session `seq` and every `Reply` echoes
//! it, so a client may keep a bounded window of calls outstanding and
//! match replies out of order; the server bounds the window
//! (`PERFDMF_SERVER_WINDOW`) and answers overflow calls with a typed
//! `Response::Error` naming the window.

use perfdmf_explorer::{ClusterMethod, ClusterSummary, FeatureSpace, Request, Response};
use perfdmf_telemetry::{ResourceUsage, SpanContext, SpanId, TraceId};

/// Frame magic: `"PDMF"` little-endian.
pub const MAGIC: u32 = 0x464D_4450;

/// Bytes in a frame header: magic, body length, body CRC-32.
pub const HEADER_LEN: usize = 12;

/// Hard cap on a frame body. Large enough for any real analysis
/// response (a 16K-thread clustering reply is well under 1 MiB);
/// anything bigger is a corrupt or hostile frame and is rejected before
/// allocation.
pub const MAX_FRAME_LEN: u32 = 8 * 1024 * 1024;

/// Wire-protocol version carried in the handshake. Version 2 added the
/// server-assigned `key_space` field to [`Message::HelloAck`] and the
/// body CRC-32 to the frame header; version 3 added optional trace
/// context on [`Message::Call`] and optional [`ResourceUsage`] on
/// [`Message::Reply`]; version 4 added the optional auth token on
/// [`Message::Hello`], the typed [`Message::AuthFailed`] rejection, and
/// pipelined (out-of-order) replies (see the module docs for the compat
/// scheme).
pub const PROTOCOL_VERSION: u32 = 4;

/// Oldest protocol version the server still accepts in a handshake.
/// Version 2 peers never send trace context or auth tokens and are
/// never sent resource usage; everything else is identical.
pub const MIN_PROTOCOL_VERSION: u32 = 2;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`. Chosen over a fast non-cryptographic hash
/// because it *guarantees* detection of any single-bit error — exactly
/// the corruption model the chaos harness injects.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Why a frame or body failed to decode. Every variant is a protocol
/// error: the connection that produced it cannot be trusted to stay in
/// frame sync and should be closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame header carried the wrong magic — the peer is not
    /// speaking this protocol (or the stream lost sync).
    BadMagic(u32),
    /// The declared frame length exceeds [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// The body ended before the value it declared was complete.
    Truncated {
        /// What was being decoded when bytes ran out.
        context: &'static str,
    },
    /// A declared collection length exceeds the bytes remaining in the
    /// frame — a forged length that would otherwise force a huge
    /// allocation.
    BadLength {
        /// What was being decoded.
        context: &'static str,
        /// The declared element count.
        declared: u32,
    },
    /// An enum tag outside the known range.
    UnknownTag {
        /// Which enum was being decoded.
        context: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// The body's CRC-32 did not match the header's — the frame was
    /// corrupted in flight.
    ChecksumMismatch {
        /// The checksum the header declared.
        declared: u32,
        /// The checksum of the body as received.
        actual: u32,
    },
    /// The body decoded completely but bytes were left over — a framing
    /// bug or tampering.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            WireError::Oversized(len) => {
                write!(f, "frame length {len} exceeds cap {MAX_FRAME_LEN}")
            }
            WireError::Truncated { context } => {
                write!(f, "truncated frame while decoding {context}")
            }
            WireError::BadLength { context, declared } => {
                write!(
                    f,
                    "declared length {declared} of {context} exceeds frame size"
                )
            }
            WireError::UnknownTag { context, tag } => {
                write!(f, "unknown tag {tag} for {context}")
            }
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::ChecksumMismatch { declared, actual } => write!(
                f,
                "body checksum {actual:#010x} does not match header {declared:#010x}"
            ),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after message"),
        }
    }
}

impl std::error::Error for WireError {}

/// One protocol message, the unit carried by a frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → server, first frame on a connection.
    Hello {
        /// Must equal [`PROTOCOL_VERSION`].
        protocol: u32,
        /// Tenant tag attached to the session (multi-tenant accounting;
        /// surfaces in the `perfdmf_sessions` system table).
        tenant: String,
        /// Shared-secret session token (v4; `None` from older peers or
        /// when the deployment runs open). Compared in constant time
        /// against `PERFDMF_SERVER_TOKEN` before any request is
        /// admitted.
        token: Option<String>,
    },
    /// Server → client handshake acknowledgement.
    HelloAck {
        /// Server-assigned session id.
        session: u64,
        /// Server-assigned idempotency-key space (the high 32 bits of
        /// every key this client draws). Server-wide uniqueness is what
        /// keeps two clients — possibly in different processes — from
        /// ever colliding in the replay cache.
        key_space: u64,
    },
    /// Client → server: one analysis request.
    Call {
        /// Statement sequence number; must be strictly increasing per
        /// session.
        seq: u64,
        /// Milliseconds of deadline remaining when the frame was sent
        /// (0 = no deadline). The server converts this to an absolute
        /// deadline that covers queue wait and execution.
        deadline_ms: u32,
        /// Idempotency key (0 = none). Retries of an effectful request
        /// must carry the same key; the server replays the recorded
        /// response instead of applying the write twice.
        idempotency: u64,
        /// Trace context of the client span issuing this call (v3;
        /// `None` from v2 peers or when tracing/sampling skips the
        /// request). The server adopts it so its `server.request` span
        /// joins the client's causal trace.
        trace: Option<SpanContext>,
        /// The request itself.
        request: Request,
    },
    /// Server → client: the answer to the `Call` with the same `seq`.
    Reply {
        /// Echo of the request's sequence number.
        seq: u64,
        /// Server-side resource accounting for this request (v3; `None`
        /// to v2 peers or when the server did not meter the request).
        usage: Option<ResourceUsage>,
        /// The response.
        response: Response,
    },
    /// Either direction: the sender is about to close the connection
    /// cleanly. Carries a human-readable reason.
    Goodbye {
        /// Why the connection is closing.
        reason: String,
    },
    /// Server → client (v4): the `Hello` token was rejected. Sent
    /// instead of `HelloAck`, after which the server closes the
    /// connection; no request was admitted.
    AuthFailed {
        /// Why authentication failed (never echoes the token).
        reason: String,
    },
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
        }
    }

    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { context });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, context)?[0])
    }

    fn bool(&mut self, context: &'static str) -> Result<bool, WireError> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::UnknownTag { context, tag }),
        }
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self, context: &'static str) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self, context: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Declared element count, pre-checked so `count * min_elem_bytes`
    /// never exceeds the bytes actually present — the allocation bound.
    fn len(&mut self, min_elem_bytes: usize, context: &'static str) -> Result<usize, WireError> {
        let declared = self.u32(context)?;
        let need = (declared as usize).saturating_mul(min_elem_bytes.max(1));
        if need > self.remaining() {
            return Err(WireError::BadLength { context, declared });
        }
        Ok(declared as usize)
    }

    fn str(&mut self, context: &'static str) -> Result<String, WireError> {
        let n = self.len(1, context)?;
        let bytes = self.take(n, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn opt_f64(&mut self, context: &'static str) -> Result<Option<f64>, WireError> {
        match self.u8(context)? {
            0 => Ok(None),
            1 => Ok(Some(self.f64(context)?)),
            tag => Err(WireError::UnknownTag { context, tag }),
        }
    }

    fn opt_u64(&mut self, context: &'static str) -> Result<Option<u64>, WireError> {
        match self.u8(context)? {
            0 => Ok(None),
            1 => Ok(Some(self.u64(context)?)),
            tag => Err(WireError::UnknownTag { context, tag }),
        }
    }
}

// ---------------------------------------------------------------------
// Request / Response codecs
// ---------------------------------------------------------------------

fn encode_feature_space(w: &mut Writer, fs: &FeatureSpace) {
    match fs {
        FeatureSpace::EventsOfMetric(m) => {
            w.u8(0);
            w.str(m);
        }
        FeatureSpace::MetricsOfEvent(e) => {
            w.u8(1);
            w.str(e);
        }
    }
}

fn decode_feature_space(r: &mut Reader) -> Result<FeatureSpace, WireError> {
    match r.u8("FeatureSpace")? {
        0 => Ok(FeatureSpace::EventsOfMetric(r.str("FeatureSpace metric")?)),
        1 => Ok(FeatureSpace::MetricsOfEvent(r.str("FeatureSpace event")?)),
        tag => Err(WireError::UnknownTag {
            context: "FeatureSpace",
            tag,
        }),
    }
}

fn encode_request(w: &mut Writer, req: &Request) {
    match req {
        Request::ClusterTrial {
            trial_id,
            features,
            k,
            max_k,
            pca_components,
            method,
        } => {
            w.u8(0);
            w.i64(*trial_id);
            encode_feature_space(w, features);
            w.opt_u64(k.map(|v| v as u64));
            w.u64(*max_k as u64);
            w.u64(*pca_components as u64);
            w.u8(match method {
                ClusterMethod::KMeans => 0,
                ClusterMethod::Hierarchical => 1,
            });
        }
        Request::CorrelateMetrics { trial_id, event } => {
            w.u8(1);
            w.i64(*trial_id);
            w.str(event);
        }
        Request::FetchResult { settings_id } => {
            w.u8(2);
            w.i64(*settings_id);
        }
        Request::SpeedupStudy {
            experiment_id,
            metric,
        } => {
            w.u8(3);
            w.i64(*experiment_id);
            w.str(metric);
        }
        Request::RegressionScan {
            experiment_id,
            threshold,
        } => {
            w.u8(4);
            w.i64(*experiment_id);
            w.f64(*threshold);
        }
        Request::WatchdogCheck {
            experiment_id,
            trial_id,
            metric,
            min_ratio,
        } => {
            w.u8(5);
            w.i64(*experiment_id);
            w.i64(*trial_id);
            w.str(metric);
            w.f64(*min_ratio);
        }
        Request::Ping => w.u8(6),
        Request::Shutdown => w.u8(7),
        Request::InjectPanic(msg) => {
            w.u8(8);
            w.str(msg);
        }
        Request::Stall { millis } => {
            w.u8(9);
            w.u64(*millis);
        }
    }
}

fn decode_request(r: &mut Reader) -> Result<Request, WireError> {
    match r.u8("Request")? {
        0 => Ok(Request::ClusterTrial {
            trial_id: r.i64("ClusterTrial trial_id")?,
            features: decode_feature_space(r)?,
            k: r.opt_u64("ClusterTrial k")?.map(|v| v as usize),
            max_k: r.u64("ClusterTrial max_k")? as usize,
            pca_components: r.u64("ClusterTrial pca_components")? as usize,
            method: match r.u8("ClusterMethod")? {
                0 => ClusterMethod::KMeans,
                1 => ClusterMethod::Hierarchical,
                tag => {
                    return Err(WireError::UnknownTag {
                        context: "ClusterMethod",
                        tag,
                    })
                }
            },
        }),
        1 => Ok(Request::CorrelateMetrics {
            trial_id: r.i64("CorrelateMetrics trial_id")?,
            event: r.str("CorrelateMetrics event")?,
        }),
        2 => Ok(Request::FetchResult {
            settings_id: r.i64("FetchResult settings_id")?,
        }),
        3 => Ok(Request::SpeedupStudy {
            experiment_id: r.i64("SpeedupStudy experiment_id")?,
            metric: r.str("SpeedupStudy metric")?,
        }),
        4 => Ok(Request::RegressionScan {
            experiment_id: r.i64("RegressionScan experiment_id")?,
            threshold: r.f64("RegressionScan threshold")?,
        }),
        5 => Ok(Request::WatchdogCheck {
            experiment_id: r.i64("WatchdogCheck experiment_id")?,
            trial_id: r.i64("WatchdogCheck trial_id")?,
            metric: r.str("WatchdogCheck metric")?,
            min_ratio: r.f64("WatchdogCheck min_ratio")?,
        }),
        6 => Ok(Request::Ping),
        7 => Ok(Request::Shutdown),
        8 => Ok(Request::InjectPanic(r.str("InjectPanic message")?)),
        9 => Ok(Request::Stall {
            millis: r.u64("Stall millis")?,
        }),
        tag => Err(WireError::UnknownTag {
            context: "Request",
            tag,
        }),
    }
}

fn encode_response(w: &mut Writer, resp: &Response) {
    match resp {
        Response::Clustering {
            settings_id,
            k,
            assignments,
            summaries,
            silhouette,
            columns,
        } => {
            w.u8(0);
            w.i64(*settings_id);
            w.u64(*k as u64);
            w.u32(assignments.len() as u32);
            for &a in assignments {
                w.u64(a as u64);
            }
            w.u32(summaries.len() as u32);
            for s in summaries {
                w.u64(s.cluster as u64);
                w.u64(s.size as u64);
                w.u32(s.centroid.len() as u32);
                for &c in &s.centroid {
                    w.f64(c);
                }
            }
            w.f64(*silhouette);
            w.u32(columns.len() as u32);
            for c in columns {
                w.str(c);
            }
        }
        Response::Correlation {
            settings_id,
            metrics,
            matrix,
        } => {
            w.u8(1);
            w.i64(*settings_id);
            w.u32(metrics.len() as u32);
            for m in metrics {
                w.str(m);
            }
            w.u32(matrix.len() as u32);
            for row in matrix {
                w.u32(row.len() as u32);
                for &v in row {
                    w.f64(v);
                }
            }
        }
        Response::Speedup {
            application,
            amdahl_serial_fraction,
            routines,
        } => {
            w.u8(2);
            w.u32(application.len() as u32);
            for &(p, s, e) in application {
                w.u64(p as u64);
                w.f64(s);
                w.f64(e);
            }
            w.opt_f64(*amdahl_serial_fraction);
            w.u32(routines.len() as u32);
            for (name, p, min, mean, max) in routines {
                w.str(name);
                w.u64(*p as u64);
                w.f64(*min);
                w.f64(*mean);
                w.f64(*max);
            }
        }
        Response::Regressions {
            findings,
            pairs_compared,
        } => {
            w.u8(3);
            w.u32(findings.len() as u32);
            for (older, newer, event, metric, rel) in findings {
                w.i64(*older);
                w.i64(*newer);
                w.str(event);
                w.str(metric);
                w.f64(*rel);
            }
            w.u64(*pairs_compared as u64);
        }
        Response::Watchdog {
            baseline_trials,
            findings,
        } => {
            w.u8(4);
            w.u64(*baseline_trials as u64);
            w.u32(findings.len() as u32);
            for (event, baseline, candidate, ratio) in findings {
                w.str(event);
                w.f64(*baseline);
                w.f64(*candidate);
                w.f64(*ratio);
            }
        }
        Response::Stored { method, rows } => {
            w.u8(5);
            w.str(method);
            w.u32(rows.len() as u32);
            for (ty, item, value, label) in rows {
                w.str(ty);
                w.i64(*item);
                w.f64(*value);
                w.str(label);
            }
        }
        Response::Pong => w.u8(6),
        Response::Error(msg) => {
            w.u8(7);
            w.str(msg);
        }
        Response::Overloaded => w.u8(8),
        Response::Failed { reason, retryable } => {
            w.u8(9);
            w.str(reason);
            w.bool(*retryable);
        }
        Response::ShuttingDown => w.u8(10),
    }
}

fn decode_response(r: &mut Reader) -> Result<Response, WireError> {
    match r.u8("Response")? {
        0 => {
            let settings_id = r.i64("Clustering settings_id")?;
            let k = r.u64("Clustering k")? as usize;
            let n = r.len(8, "Clustering assignments")?;
            let mut assignments = Vec::with_capacity(n);
            for _ in 0..n {
                assignments.push(r.u64("Clustering assignment")? as usize);
            }
            let n = r.len(20, "Clustering summaries")?;
            let mut summaries = Vec::with_capacity(n);
            for _ in 0..n {
                let cluster = r.u64("ClusterSummary cluster")? as usize;
                let size = r.u64("ClusterSummary size")? as usize;
                let d = r.len(8, "ClusterSummary centroid")?;
                let mut centroid = Vec::with_capacity(d);
                for _ in 0..d {
                    centroid.push(r.f64("ClusterSummary centroid value")?);
                }
                summaries.push(ClusterSummary {
                    cluster,
                    size,
                    centroid,
                });
            }
            let silhouette = r.f64("Clustering silhouette")?;
            let n = r.len(4, "Clustering columns")?;
            let mut columns = Vec::with_capacity(n);
            for _ in 0..n {
                columns.push(r.str("Clustering column")?);
            }
            Ok(Response::Clustering {
                settings_id,
                k,
                assignments,
                summaries,
                silhouette,
                columns,
            })
        }
        1 => {
            let settings_id = r.i64("Correlation settings_id")?;
            let n = r.len(4, "Correlation metrics")?;
            let mut metrics = Vec::with_capacity(n);
            for _ in 0..n {
                metrics.push(r.str("Correlation metric")?);
            }
            let n = r.len(4, "Correlation matrix")?;
            let mut matrix = Vec::with_capacity(n);
            for _ in 0..n {
                let d = r.len(8, "Correlation matrix row")?;
                let mut row = Vec::with_capacity(d);
                for _ in 0..d {
                    row.push(r.f64("Correlation matrix value")?);
                }
                matrix.push(row);
            }
            Ok(Response::Correlation {
                settings_id,
                metrics,
                matrix,
            })
        }
        2 => {
            let n = r.len(24, "Speedup application")?;
            let mut application = Vec::with_capacity(n);
            for _ in 0..n {
                application.push((
                    r.u64("Speedup processors")? as usize,
                    r.f64("Speedup speedup")?,
                    r.f64("Speedup efficiency")?,
                ));
            }
            let amdahl_serial_fraction = r.opt_f64("Speedup amdahl")?;
            let n = r.len(36, "Speedup routines")?;
            let mut routines = Vec::with_capacity(n);
            for _ in 0..n {
                routines.push((
                    r.str("Speedup routine name")?,
                    r.u64("Speedup routine processors")? as usize,
                    r.f64("Speedup routine min")?,
                    r.f64("Speedup routine mean")?,
                    r.f64("Speedup routine max")?,
                ));
            }
            Ok(Response::Speedup {
                application,
                amdahl_serial_fraction,
                routines,
            })
        }
        3 => {
            let n = r.len(32, "Regressions findings")?;
            let mut findings = Vec::with_capacity(n);
            for _ in 0..n {
                findings.push((
                    r.i64("Regression older")?,
                    r.i64("Regression newer")?,
                    r.str("Regression event")?,
                    r.str("Regression metric")?,
                    r.f64("Regression relative")?,
                ));
            }
            let pairs_compared = r.u64("Regressions pairs_compared")? as usize;
            Ok(Response::Regressions {
                findings,
                pairs_compared,
            })
        }
        4 => {
            let baseline_trials = r.u64("Watchdog baseline_trials")? as usize;
            let n = r.len(28, "Watchdog findings")?;
            let mut findings = Vec::with_capacity(n);
            for _ in 0..n {
                findings.push((
                    r.str("Watchdog event")?,
                    r.f64("Watchdog baseline")?,
                    r.f64("Watchdog candidate")?,
                    r.f64("Watchdog ratio")?,
                ));
            }
            Ok(Response::Watchdog {
                baseline_trials,
                findings,
            })
        }
        5 => {
            let method = r.str("Stored method")?;
            let n = r.len(24, "Stored rows")?;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push((
                    r.str("Stored result_type")?,
                    r.i64("Stored item")?,
                    r.f64("Stored value")?,
                    r.str("Stored label")?,
                ));
            }
            Ok(Response::Stored { method, rows })
        }
        6 => Ok(Response::Pong),
        7 => Ok(Response::Error(r.str("Error message")?)),
        8 => Ok(Response::Overloaded),
        9 => Ok(Response::Failed {
            reason: r.str("Failed reason")?,
            retryable: r.bool("Failed retryable")?,
        }),
        10 => Ok(Response::ShuttingDown),
        tag => Err(WireError::UnknownTag {
            context: "Response",
            tag,
        }),
    }
}

fn encode_usage(w: &mut Writer, usage: &ResourceUsage) {
    w.u64(usage.rows_scanned);
    w.u64(usage.chunk_hits);
    w.u64(usage.chunk_misses);
    w.u64(usage.pool_tasks);
    w.u64(usage.wal_bytes);
    w.u64(usage.queue_wait_ns);
    w.u64(usage.execute_ns);
}

fn decode_usage(r: &mut Reader) -> Result<ResourceUsage, WireError> {
    Ok(ResourceUsage {
        rows_scanned: r.u64("ResourceUsage rows_scanned")?,
        chunk_hits: r.u64("ResourceUsage chunk_hits")?,
        chunk_misses: r.u64("ResourceUsage chunk_misses")?,
        pool_tasks: r.u64("ResourceUsage pool_tasks")?,
        wal_bytes: r.u64("ResourceUsage wal_bytes")?,
        queue_wait_ns: r.u64("ResourceUsage queue_wait_ns")?,
        execute_ns: r.u64("ResourceUsage execute_ns")?,
    })
}

impl Message {
    /// Encode the message body (without the frame header).
    ///
    /// A `Call` without trace context and a `Reply` without usage
    /// encode under their version-2 tags, byte-identical to a v2 peer's
    /// encoding; the v3 payloads get tags of their own (5 and 6), so no
    /// version negotiation is needed to *decode* — the tag says which
    /// shape follows.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Message::Hello {
                protocol,
                tenant,
                token,
            } => {
                match token {
                    None => w.u8(0),
                    Some(_) => w.u8(7),
                }
                w.u32(*protocol);
                w.str(tenant);
                if let Some(token) = token {
                    w.str(token);
                }
            }
            Message::HelloAck { session, key_space } => {
                w.u8(1);
                w.u64(*session);
                w.u64(*key_space);
            }
            Message::Call {
                seq,
                deadline_ms,
                idempotency,
                trace,
                request,
            } => {
                match trace {
                    None => w.u8(2),
                    Some(ctx) => {
                        w.u8(5);
                        w.u64(ctx.trace.0);
                        w.u64(ctx.span.0);
                    }
                }
                w.u64(*seq);
                w.u32(*deadline_ms);
                w.u64(*idempotency);
                encode_request(&mut w, request);
            }
            Message::Reply {
                seq,
                usage,
                response,
            } => {
                match usage {
                    None => w.u8(3),
                    Some(u) => {
                        w.u8(6);
                        encode_usage(&mut w, u);
                    }
                }
                w.u64(*seq);
                encode_response(&mut w, response);
            }
            Message::Goodbye { reason } => {
                w.u8(4);
                w.str(reason);
            }
            Message::AuthFailed { reason } => {
                w.u8(8);
                w.str(reason);
            }
        }
        w.buf
    }

    /// Decode a message body. Total: every input yields a value or a
    /// typed error, and trailing bytes are rejected.
    pub fn decode(body: &[u8]) -> Result<Message, WireError> {
        let mut r = Reader::new(body);
        let msg = match r.u8("Message")? {
            0 => Message::Hello {
                protocol: r.u32("Hello protocol")?,
                tenant: r.str("Hello tenant")?,
                token: None,
            },
            1 => Message::HelloAck {
                session: r.u64("HelloAck session")?,
                key_space: r.u64("HelloAck key_space")?,
            },
            2 => Message::Call {
                seq: r.u64("Call seq")?,
                deadline_ms: r.u32("Call deadline_ms")?,
                idempotency: r.u64("Call idempotency")?,
                trace: None,
                request: decode_request(&mut r)?,
            },
            3 => Message::Reply {
                seq: r.u64("Reply seq")?,
                usage: None,
                response: decode_response(&mut r)?,
            },
            4 => Message::Goodbye {
                reason: r.str("Goodbye reason")?,
            },
            5 => {
                let trace = TraceId(r.u64("Call trace id")?);
                let span = SpanId(r.u64("Call span id")?);
                Message::Call {
                    trace: Some(SpanContext { trace, span }),
                    seq: r.u64("Call seq")?,
                    deadline_ms: r.u32("Call deadline_ms")?,
                    idempotency: r.u64("Call idempotency")?,
                    request: decode_request(&mut r)?,
                }
            }
            6 => Message::Reply {
                usage: Some(decode_usage(&mut r)?),
                seq: r.u64("Reply seq")?,
                response: decode_response(&mut r)?,
            },
            7 => Message::Hello {
                protocol: r.u32("Hello protocol")?,
                tenant: r.str("Hello tenant")?,
                token: Some(r.str("Hello token")?),
            },
            8 => Message::AuthFailed {
                reason: r.str("AuthFailed reason")?,
            },
            tag => {
                return Err(WireError::UnknownTag {
                    context: "Message",
                    tag,
                })
            }
        };
        if r.remaining() > 0 {
            return Err(WireError::TrailingBytes(r.remaining()));
        }
        Ok(msg)
    }

    /// Encode the message as a complete frame: header (magic, length,
    /// body CRC-32) + body.
    pub fn to_frame(&self) -> Vec<u8> {
        let body = self.encode();
        let mut frame = Vec::with_capacity(HEADER_LEN + body.len());
        frame.extend_from_slice(&MAGIC.to_le_bytes());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        frame
    }
}

/// Parse a frame header. Returns the declared body length and CRC-32
/// after validating magic and the [`MAX_FRAME_LEN`] cap — the caller
/// must not buffer any body byte before this check passes, and must
/// confirm the received body with [`verify_body`] before decoding it.
pub fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(u32, u32), WireError> {
    let magic = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized(len));
    }
    let crc = u32::from_le_bytes(header[8..].try_into().expect("4 bytes"));
    Ok((len, crc))
}

/// Check a received body against the checksum its header declared.
pub fn verify_body(declared: u32, body: &[u8]) -> Result<(), WireError> {
    let actual = crc32(body);
    if actual != declared {
        return Err(WireError::ChecksumMismatch { declared, actual });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let frame = msg.to_frame();
        let (len, crc) = parse_header(frame[..HEADER_LEN].try_into().unwrap()).unwrap();
        assert_eq!(len as usize, frame.len() - HEADER_LEN);
        verify_body(crc, &frame[HEADER_LEN..]).unwrap();
        assert_eq!(Message::decode(&frame[HEADER_LEN..]).unwrap(), msg);
    }

    #[test]
    fn handshake_and_control_roundtrip() {
        roundtrip(Message::Hello {
            protocol: PROTOCOL_VERSION,
            tenant: "acme/ci".into(),
            token: None,
        });
        roundtrip(Message::Hello {
            protocol: PROTOCOL_VERSION,
            tenant: "acme/ci".into(),
            token: Some("s3cret".into()),
        });
        roundtrip(Message::HelloAck {
            session: 42,
            key_space: 42,
        });
        roundtrip(Message::Goodbye {
            reason: "drain".into(),
        });
        roundtrip(Message::AuthFailed {
            reason: "token mismatch".into(),
        });
    }

    #[test]
    fn tokenless_hello_encodes_bit_identical_to_v2() {
        // Same compat contract as the traceless Call: `token: None`
        // must produce the exact byte layout older peers emit — tag 0,
        // protocol, tenant — so a v4 client running open (no token)
        // is indistinguishable on the wire from a v2/v3 client.
        let body = Message::Hello {
            protocol: 2,
            tenant: "acme".into(),
            token: None,
        }
        .encode();
        let mut v2 = vec![0u8];
        v2.extend_from_slice(&2u32.to_le_bytes());
        v2.extend_from_slice(&4u32.to_le_bytes());
        v2.extend_from_slice(b"acme");
        assert_eq!(body, v2);
    }

    #[test]
    fn every_request_variant_roundtrips() {
        for request in [
            Request::ClusterTrial {
                trial_id: -7,
                features: FeatureSpace::EventsOfMetric("TIME".into()),
                k: Some(3),
                max_k: 8,
                pca_components: 2,
                method: ClusterMethod::Hierarchical,
            },
            Request::CorrelateMetrics {
                trial_id: 1,
                event: "main".into(),
            },
            Request::FetchResult { settings_id: 9 },
            Request::SpeedupStudy {
                experiment_id: 2,
                metric: "TIME".into(),
            },
            Request::RegressionScan {
                experiment_id: 3,
                threshold: 0.1,
            },
            Request::WatchdogCheck {
                experiment_id: 4,
                trial_id: 5,
                metric: "TIME".into(),
                min_ratio: 1.25,
            },
            Request::Ping,
            Request::Shutdown,
            Request::InjectPanic("boom".into()),
            Request::Stall { millis: 10 },
        ] {
            roundtrip(Message::Call {
                seq: 1,
                deadline_ms: 250,
                idempotency: 0xDEAD_BEEF,
                trace: None,
                request: request.clone(),
            });
            roundtrip(Message::Call {
                seq: 1,
                deadline_ms: 250,
                idempotency: 0xDEAD_BEEF,
                trace: Some(SpanContext {
                    trace: TraceId(0x0123_4567_89AB_CDEF),
                    span: SpanId(0xFEDC_BA98_7654_3210),
                }),
                request,
            });
        }
    }

    #[test]
    fn traceless_call_encodes_bit_identical_to_v2() {
        // The compat contract: `trace: None` must produce the exact
        // byte layout a version-2 peer emits — tag 2, then seq,
        // deadline, idempotency, request.
        let body = Message::Call {
            seq: 0x0102_0304_0506_0708,
            deadline_ms: 250,
            idempotency: 0xAA,
            trace: None,
            request: Request::Ping,
        }
        .encode();
        let mut v2 = vec![2u8];
        v2.extend_from_slice(&0x0102_0304_0506_0708u64.to_le_bytes());
        v2.extend_from_slice(&250u32.to_le_bytes());
        v2.extend_from_slice(&0xAAu64.to_le_bytes());
        v2.push(6); // Request::Ping
        assert_eq!(body, v2);
        // And the usage-less Reply likewise: tag 3, seq, response.
        let body = Message::Reply {
            seq: 7,
            usage: None,
            response: Response::Pong,
        }
        .encode();
        let mut v2 = vec![3u8];
        v2.extend_from_slice(&7u64.to_le_bytes());
        v2.push(6); // Response::Pong
        assert_eq!(body, v2);
    }

    #[test]
    fn reply_usage_roundtrips() {
        let usage = ResourceUsage {
            rows_scanned: 1,
            chunk_hits: 2,
            chunk_misses: 3,
            pool_tasks: 4,
            wal_bytes: 5,
            queue_wait_ns: 6,
            execute_ns: 7,
        };
        roundtrip(Message::Reply {
            seq: 7,
            usage: Some(usage),
            response: Response::Pong,
        });
        roundtrip(Message::Reply {
            seq: 7,
            usage: None,
            response: Response::Pong,
        });
    }

    #[test]
    fn every_response_variant_roundtrips() {
        for response in [
            Response::Clustering {
                settings_id: 1,
                k: 2,
                assignments: vec![0, 1, 1],
                summaries: vec![ClusterSummary {
                    cluster: 0,
                    size: 1,
                    centroid: vec![1.0, -2.5],
                }],
                silhouette: 0.8,
                columns: vec!["a".into(), "b".into()],
            },
            Response::Correlation {
                settings_id: 2,
                metrics: vec!["A".into()],
                matrix: vec![vec![1.0]],
            },
            Response::Speedup {
                application: vec![(8, 6.0, 0.75)],
                amdahl_serial_fraction: Some(0.05),
                routines: vec![("f".into(), 8, 1.0, 2.0, 3.0)],
            },
            Response::Regressions {
                findings: vec![(1, 2, "e".into(), "TIME".into(), 0.5)],
                pairs_compared: 1,
            },
            Response::Watchdog {
                baseline_trials: 4,
                findings: vec![("hot".into(), 20.0, 40.0, 2.0)],
            },
            Response::Stored {
                method: "kmeans".into(),
                rows: vec![("assignment".into(), 0, 1.0, "0.0.0".into())],
            },
            Response::Pong,
            Response::Error("nope".into()),
            Response::Overloaded,
            Response::Failed {
                reason: "deadline".into(),
                retryable: true,
            },
            Response::ShuttingDown,
        ] {
            roundtrip(Message::Reply {
                seq: 7,
                usage: None,
                response,
            });
        }
    }

    #[test]
    fn nan_silhouette_survives_bit_exactly() {
        let msg = Message::Reply {
            seq: 1,
            usage: None,
            response: Response::Clustering {
                settings_id: 1,
                k: 1,
                assignments: vec![],
                summaries: vec![],
                silhouette: f64::NAN,
                columns: vec![],
            },
        };
        match Message::decode(&msg.encode()).unwrap() {
            Message::Reply {
                response: Response::Clustering { silhouette, .. },
                ..
            } => assert_eq!(silhouette.to_bits(), f64::NAN.to_bits()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn header_rejects_bad_magic_and_oversized_frames() {
        let mut header = [0u8; HEADER_LEN];
        header[..4].copy_from_slice(&0x6261_6421u32.to_le_bytes());
        assert_eq!(parse_header(&header), Err(WireError::BadMagic(0x6261_6421)));
        header[..4].copy_from_slice(&MAGIC.to_le_bytes());
        header[4..8].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert_eq!(
            parse_header(&header),
            Err(WireError::Oversized(MAX_FRAME_LEN + 1))
        );
        header[4..8].copy_from_slice(&0u32.to_le_bytes());
        header[8..].copy_from_slice(&7u32.to_le_bytes());
        assert_eq!(parse_header(&header), Ok((0, 7)));
    }

    #[test]
    fn any_single_bit_flip_in_the_body_fails_the_checksum() {
        let frame = Message::Call {
            seq: 9,
            deadline_ms: 100,
            idempotency: 0xAB_0001,
            trace: Some(SpanContext {
                trace: TraceId(0xD00D_F00D),
                span: SpanId(0xBEEF),
            }),
            request: Request::Ping,
        }
        .to_frame();
        let (_, crc) = parse_header(frame[..HEADER_LEN].try_into().unwrap()).unwrap();
        let body = &frame[HEADER_LEN..];
        verify_body(crc, body).unwrap();
        for pos in 0..body.len() {
            for bit in 0..8 {
                let mut corrupted = body.to_vec();
                corrupted[pos] ^= 1 << bit;
                assert!(
                    matches!(
                        verify_body(crc, &corrupted),
                        Err(WireError::ChecksumMismatch { .. })
                    ),
                    "flip at byte {pos} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncation_yields_typed_errors_never_panics() {
        let full = Message::Call {
            seq: 3,
            deadline_ms: 100,
            idempotency: 77,
            trace: Some(SpanContext {
                trace: TraceId(0x11),
                span: SpanId(0x22),
            }),
            request: Request::SpeedupStudy {
                experiment_id: 2,
                metric: "TIME".into(),
            },
        }
        .encode();
        for cut in 0..full.len() {
            let err = Message::decode(&full[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    WireError::Truncated { .. } | WireError::BadLength { .. }
                ),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn forged_length_is_rejected_before_allocation() {
        // A Reply/Clustering body whose assignments count claims 2^32-1
        // elements with no bytes behind it: must fail fast with
        // BadLength, not attempt a 32 GiB Vec.
        let mut body = vec![3u8]; // Message::Reply
        body.extend_from_slice(&7u64.to_le_bytes()); // seq
        body.push(0); // Response::Clustering
        body.extend_from_slice(&1i64.to_le_bytes()); // settings_id
        body.extend_from_slice(&2u64.to_le_bytes()); // k
        body.extend_from_slice(&u32::MAX.to_le_bytes()); // assignments len
        assert_eq!(
            Message::decode(&body),
            Err(WireError::BadLength {
                context: "Clustering assignments",
                declared: u32::MAX,
            })
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut body = Message::HelloAck {
            session: 1,
            key_space: 1,
        }
        .encode();
        body.push(0xFF);
        assert_eq!(Message::decode(&body), Err(WireError::TrailingBytes(1)));
    }
}
