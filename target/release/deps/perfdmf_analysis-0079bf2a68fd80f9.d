/root/repo/target/release/deps/perfdmf_analysis-0079bf2a68fd80f9.d: crates/analysis/src/lib.rs crates/analysis/src/compare.rs crates/analysis/src/features.rs crates/analysis/src/hierarchical.rs crates/analysis/src/kmeans.rs crates/analysis/src/pca.rs crates/analysis/src/report.rs crates/analysis/src/scalability.rs crates/analysis/src/speedup.rs crates/analysis/src/stats.rs

/root/repo/target/release/deps/libperfdmf_analysis-0079bf2a68fd80f9.rlib: crates/analysis/src/lib.rs crates/analysis/src/compare.rs crates/analysis/src/features.rs crates/analysis/src/hierarchical.rs crates/analysis/src/kmeans.rs crates/analysis/src/pca.rs crates/analysis/src/report.rs crates/analysis/src/scalability.rs crates/analysis/src/speedup.rs crates/analysis/src/stats.rs

/root/repo/target/release/deps/libperfdmf_analysis-0079bf2a68fd80f9.rmeta: crates/analysis/src/lib.rs crates/analysis/src/compare.rs crates/analysis/src/features.rs crates/analysis/src/hierarchical.rs crates/analysis/src/kmeans.rs crates/analysis/src/pca.rs crates/analysis/src/report.rs crates/analysis/src/scalability.rs crates/analysis/src/speedup.rs crates/analysis/src/stats.rs

crates/analysis/src/lib.rs:
crates/analysis/src/compare.rs:
crates/analysis/src/features.rs:
crates/analysis/src/hierarchical.rs:
crates/analysis/src/kmeans.rs:
crates/analysis/src/pca.rs:
crates/analysis/src/report.rs:
crates/analysis/src/scalability.rs:
crates/analysis/src/speedup.rs:
crates/analysis/src/stats.rs:
