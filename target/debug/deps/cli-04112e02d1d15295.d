/root/repo/target/debug/deps/cli-04112e02d1d15295.d: tests/cli.rs

/root/repo/target/debug/deps/cli-04112e02d1d15295: tests/cli.rs

tests/cli.rs:
