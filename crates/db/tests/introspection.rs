//! Integration coverage for the virtual system tables: plain SELECTs
//! with filters, aggregates, joins, and LIMIT against live engine
//! state; EXPLAIN naming the virtual scan; and the reserved-prefix
//! guards on DDL and DML.

use std::time::Duration;

use perfdmf_db::{Connection, DbError, Value};
use perfdmf_telemetry as telemetry;

/// Run a small workload so every counter family has activity.
fn workload(conn: &Connection) {
    workload_from(conn, 0)
}

/// Like [`workload`] but inserting ids starting at `base`, so repeated
/// runs on one connection don't collide on the primary key.
fn workload_from(conn: &Connection, base: i64) {
    conn.execute(
        "CREATE TABLE IF NOT EXISTS obs_t (id INTEGER PRIMARY KEY, grp INTEGER, x DOUBLE)",
        &[],
    )
    .unwrap();
    for i in base..base + 200 {
        conn.execute(
            "INSERT INTO obs_t VALUES (?, ?, ?)",
            &[
                Value::Int(i),
                Value::Int(i % 4),
                Value::Float(i as f64 * 0.5),
            ],
        )
        .unwrap();
    }
    conn.query("SELECT grp, SUM(x) FROM obs_t GROUP BY grp", &[])
        .unwrap();
}

#[test]
fn counters_table_is_queryable_with_filters_and_aggregates() {
    let conn = Connection::open_in_memory();
    workload(&conn);

    let all = conn.query("SELECT * FROM perfdmf_counters", &[]).unwrap();
    assert_eq!(all.columns, vec!["name", "value"]);
    assert!(!all.rows.is_empty(), "workload must register counters");

    // Filter: the statement counter exists and counts the workload.
    let stmts = conn
        .query_scalar(
            "SELECT value FROM perfdmf_counters WHERE name = 'db.statements'",
            &[],
        )
        .unwrap();
    assert!(matches!(stmts, Value::Int(n) if n >= 200), "{stmts:?}");

    // Aggregate + LIMIT compose with the virtual scan.
    let n = conn
        .query_scalar(
            "SELECT COUNT(*) FROM perfdmf_counters WHERE name LIKE 'db.%'",
            &[],
        )
        .unwrap();
    assert!(matches!(n, Value::Int(c) if c > 3), "{n:?}");
    let limited = conn
        .query(
            "SELECT name FROM perfdmf_counters ORDER BY value DESC LIMIT 3",
            &[],
        )
        .unwrap();
    assert!(limited.rows.len() <= 3);
}

#[test]
fn histograms_table_reports_quantiles_in_order() {
    let conn = Connection::open_in_memory();
    workload(&conn);
    let rows = conn
        .query(
            "SELECT name, count, p50, p95, p99 FROM perfdmf_histograms \
             WHERE name = 'db.statement_latency_ns'",
            &[],
        )
        .unwrap();
    assert_eq!(rows.rows.len(), 1, "{rows:?}");
    let row = &rows.rows[0];
    let (p50, p95, p99) = match (&row[2], &row[3], &row[4]) {
        (Value::Int(a), Value::Int(b), Value::Int(c)) => (*a, *b, *c),
        other => panic!("{other:?}"),
    };
    assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
}

#[test]
fn metrics_history_accumulates_samples() {
    let conn = Connection::open_in_memory();
    workload(&conn);
    telemetry::metrics::sample_now();
    workload_from(&conn, 200);
    telemetry::metrics::sample_now();

    let samples = conn
        .query_scalar(
            "SELECT COUNT(DISTINCT sample) FROM perfdmf_metrics_history",
            &[],
        )
        .unwrap();
    assert!(matches!(samples, Value::Int(n) if n >= 2), "{samples:?}");

    // The statement counter is monotone across samples.
    let series = conn
        .query(
            "SELECT sample, value FROM perfdmf_metrics_history \
             WHERE name = 'db.statements' AND kind = 'counter' ORDER BY sample",
            &[],
        )
        .unwrap();
    assert!(series.rows.len() >= 2, "{series:?}");
    let values: Vec<i64> = series.rows.iter().map(|r| r[1].as_int().unwrap()).collect();
    assert!(values.windows(2).all(|w| w[0] <= w[1]), "{values:?}");

    // Histogram samples carry quantile columns.
    let h = conn
        .query(
            "SELECT count, p50 FROM perfdmf_metrics_history \
             WHERE kind = 'histogram' AND name = 'db.statement_latency_ns' \
             ORDER BY sample DESC LIMIT 1",
            &[],
        )
        .unwrap();
    assert_eq!(h.rows.len(), 1);
    assert!(matches!(h.rows[0][0], Value::Int(n) if n > 0));
}

#[test]
fn background_sampler_feeds_the_history_table() {
    let conn = Connection::open_in_memory();
    let before = conn
        .query_scalar(
            "SELECT COUNT(DISTINCT sample) FROM perfdmf_metrics_history",
            &[],
        )
        .unwrap()
        .as_int()
        .unwrap();
    let sampler = telemetry::start_sampler(Duration::from_millis(5));
    workload(&conn);
    std::thread::sleep(Duration::from_millis(40));
    sampler.stop();
    let after = conn
        .query_scalar(
            "SELECT COUNT(DISTINCT sample) FROM perfdmf_metrics_history",
            &[],
        )
        .unwrap()
        .as_int()
        .unwrap();
    assert!(after > before, "sampler added samples: {before} -> {after}");
}

#[test]
fn schema_tables_describe_user_tables_and_join() {
    let conn = Connection::open_in_memory();
    workload(&conn);

    let t = conn
        .query(
            "SELECT live_rows, columns, indexes FROM perfdmf_tables WHERE name = 'obs_t'",
            &[],
        )
        .unwrap();
    assert_eq!(t.rows.len(), 1, "{t:?}");
    assert_eq!(t.rows[0][0], Value::Int(200));
    assert_eq!(t.rows[0][1], Value::Int(3));

    // Virtual tables join with each other like any tables.
    let joined = conn
        .query(
            "SELECT c.column_name FROM perfdmf_columns c \
             JOIN perfdmf_tables t ON c.table_name = t.name \
             WHERE t.name = 'obs_t' AND c.primary_key ORDER BY c.ordinal",
            &[],
        )
        .unwrap();
    assert_eq!(joined.rows.len(), 1, "{joined:?}");
    assert_eq!(joined.rows[0][0], Value::Text("id".into()));

    // The pk column surfaces index statistics.
    let stats = conn
        .query(
            "SELECT distinct_keys, min_value, max_value FROM perfdmf_columns \
             WHERE table_name = 'obs_t' AND column_name = 'id'",
            &[],
        )
        .unwrap();
    assert_eq!(stats.rows[0][0], Value::Int(200));
    assert_eq!(stats.rows[0][1], Value::Text("0".into()));
    assert_eq!(stats.rows[0][2], Value::Text("199".into()));
}

#[test]
fn single_row_tables_have_sane_values() {
    let conn = Connection::open_in_memory();
    workload(&conn);

    let pool = conn
        .query(
            "SELECT threads, runs, serial_fallbacks FROM perfdmf_pool",
            &[],
        )
        .unwrap();
    assert_eq!(pool.rows.len(), 1);
    assert!(matches!(pool.rows[0][0], Value::Int(t) if t >= 1));

    let cache = conn
        .query(
            "SELECT cached_bytes, budget_bytes FROM perfdmf_colcache",
            &[],
        )
        .unwrap();
    assert_eq!(cache.rows.len(), 1);
    assert!(matches!(cache.rows[0][1], Value::Int(b) if b > 0));
}

#[test]
fn slow_query_log_surfaces_through_sql() {
    let conn = Connection::open_in_memory();
    let before = perfdmf_db::slow_query_threshold();
    perfdmf_db::set_slow_query_threshold(Duration::ZERO); // log everything
    conn.execute("CREATE TABLE slowq_marker_xyz (a INTEGER)", &[])
        .unwrap();
    perfdmf_db::set_slow_query_threshold(before);

    let rows = conn
        .query(
            "SELECT sql, ok FROM perfdmf_slow_queries WHERE sql LIKE '%slowq_marker_xyz%'",
            &[],
        )
        .unwrap();
    assert!(!rows.rows.is_empty(), "statement must be retained");
    assert!(rows.rows.iter().all(|r| r[1] == Value::Bool(true)));
}

#[test]
fn spans_table_exposes_flight_recorder() {
    let conn = Connection::open_in_memory();
    telemetry::set_tracing(true);
    workload(&conn);
    telemetry::set_tracing(false);
    let spans = conn
        .query(
            "SELECT name, trace, dur_ns FROM perfdmf_spans WHERE name = 'db.exec' LIMIT 5",
            &[],
        )
        .unwrap();
    assert!(!spans.rows.is_empty(), "traced statements leave spans");
}

#[test]
fn explain_names_the_virtual_scan_and_row_path() {
    let conn = Connection::open_in_memory();
    workload(&conn);
    let plan = conn
        .query(
            "EXPLAIN SELECT * FROM perfdmf_counters WHERE value > 0",
            &[],
        )
        .unwrap();
    let text: Vec<String> = plan
        .rows
        .iter()
        .map(|r| match &r[0] {
            Value::Text(s) => s.to_string(),
            other => panic!("{other:?}"),
        })
        .collect();
    assert!(
        text[0].starts_with("virtual scan on perfdmf_counters"),
        "{text:?}"
    );
    assert!(
        text.iter().all(|l| !l.contains("columnar scan")),
        "virtual tables must not take the columnar path: {text:?}"
    );

    // EXPLAIN ANALYZE annotates the same line with actuals.
    let analyzed = conn
        .query("EXPLAIN ANALYZE SELECT COUNT(*) FROM perfdmf_counters", &[])
        .unwrap();
    let atext: Vec<String> = analyzed
        .rows
        .iter()
        .map(|r| match &r[0] {
            Value::Text(s) => s.to_string(),
            other => panic!("{other:?}"),
        })
        .collect();
    assert!(
        atext
            .iter()
            .any(|l| l.starts_with("virtual scan on perfdmf_counters") && l.contains("actual")),
        "{atext:?}"
    );
}

#[test]
fn reserved_prefix_rejects_ddl_and_dml() {
    let conn = Connection::open_in_memory();

    // CREATE TABLE on the prefix: clear error, case-insensitive.
    for sql in [
        "CREATE TABLE perfdmf_mine (a INTEGER)",
        "CREATE TABLE PERFDMF_other (a INTEGER)",
    ] {
        match conn.execute(sql, &[]) {
            Err(DbError::ReservedTableName(name)) => {
                assert!(name.to_ascii_lowercase().starts_with("perfdmf_"));
            }
            other => panic!("{sql}: {other:?}"),
        }
    }
    // The error message points at the reservation.
    let msg = conn
        .execute("CREATE TABLE perfdmf_mine (a INTEGER)", &[])
        .unwrap_err()
        .to_string();
    assert!(msg.contains("reserved"), "{msg}");

    // DML against system tables is rejected as read-only.
    for sql in [
        "INSERT INTO perfdmf_counters VALUES ('x', 1)",
        "UPDATE perfdmf_counters SET value = 0",
        "DELETE FROM perfdmf_counters",
    ] {
        match conn.execute(sql, &[]) {
            Err(DbError::ReadOnlySystemTable(_)) => {}
            other => panic!("{sql}: {other:?}"),
        }
    }

    // Remaining DDL forms are rejected too.
    assert!(matches!(
        conn.execute("DROP TABLE perfdmf_counters", &[]),
        Err(DbError::ReservedTableName(_))
    ));
    assert!(matches!(
        conn.execute("CREATE INDEX pc_idx ON perfdmf_counters (name)", &[]),
        Err(DbError::ReservedTableName(_))
    ));

    // Undefined reserved names read as missing, not as user tables.
    assert!(matches!(
        conn.query("SELECT * FROM perfdmf_nope", &[]),
        Err(DbError::NoSuchTable(_))
    ));

    // The differential oracle and the proptest generators build their
    // statements over a fixed table vocabulary; keep it clear of the
    // reserved prefix so generated DDL can never trip the guard.
    for name in ["t", "kv", "v", "l", "r", "big", "obs_t"] {
        assert!(
            !perfdmf_db::introspect::is_reserved_name(name),
            "generator table {name:?} collides with the system prefix"
        );
    }
}

#[test]
fn regressions_table_starts_queryable() {
    let conn = Connection::open_in_memory();
    // May or may not be empty (other tests share the process-wide log);
    // the shape must hold either way.
    let rs = conn
        .query(
            "SELECT seq, context, event, ratio FROM perfdmf_regressions ORDER BY seq",
            &[],
        )
        .unwrap();
    assert_eq!(rs.columns.len(), 4);
}

#[test]
fn sessions_table_reflects_the_session_registry() {
    use telemetry::sessions::{SessionRecord, SessionState};

    // Publish two sessions into the process-wide registry the way the
    // network server does: one live, one closed with accounting. Use
    // high ids so concurrent tests (or a real server in this process)
    // can't collide.
    let mut live = SessionRecord::new(9_000_001, "tenant-a");
    live.requests = 12;
    live.sheds = 2;
    live.last_seq = 12;
    telemetry::sessions::upsert(live);
    let mut closed = SessionRecord::new(9_000_002, "tenant-b");
    closed.state = SessionState::Closed;
    closed.requests = 3;
    closed.errors = 1;
    closed.replays = 1;
    closed.protocol_errors = 1;
    closed.connected_ms = 1234;
    closed.close_reason = Some("client goodbye".into());
    telemetry::sessions::upsert(closed);

    let conn = Connection::open_in_memory();
    let rs = conn
        .query(
            "SELECT id, tenant, state, requests, sheds, errors, replays, \
                    protocol_errors, last_seq, connected_ms, close_reason \
             FROM perfdmf_sessions WHERE id >= 9000001 ORDER BY id",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.rows[0][1], Value::Text("tenant-a".into()));
    assert_eq!(rs.rows[0][2], Value::Text("active".into()));
    assert_eq!(rs.rows[0][3], Value::Int(12));
    assert_eq!(rs.rows[0][4], Value::Int(2));
    assert_eq!(
        rs.rows[0][10],
        Value::Null,
        "live session has no close reason"
    );
    assert_eq!(rs.rows[1][2], Value::Text("closed".into()));
    assert_eq!(rs.rows[1][5], Value::Int(1));
    assert_eq!(rs.rows[1][6], Value::Int(1));
    assert_eq!(rs.rows[1][10], Value::Text("client goodbye".into()));

    // Aggregates compose like any table: shed rate per tenant.
    let agg = conn
        .query(
            "SELECT SUM(requests), SUM(sheds) FROM perfdmf_sessions WHERE id >= 9000001",
            &[],
        )
        .unwrap();
    assert_eq!(agg.rows[0][0], Value::Int(15));
    assert_eq!(agg.rows[0][1], Value::Int(2));
}

#[test]
fn sessions_table_tracks_trace_and_inflight_churn() {
    use telemetry::sessions::SessionRecord;

    let conn = Connection::open_in_memory();
    // Churn the way serve_session does: each request flips the session
    // to "one in flight, carrying this trace", then back to idle. The
    // columns must follow every flip.
    for round in 0..5u64 {
        let trace = 0xABCD_0000 + round;
        let mut rec = SessionRecord::new(9_100_001, "tenant-trace");
        rec.requests = round;
        rec.trace_id = Some(trace);
        rec.requests_inflight = 1;
        telemetry::sessions::upsert(rec.clone());
        let busy = conn
            .query(
                "SELECT trace_id, requests_inflight FROM perfdmf_sessions \
                 WHERE id = 9100001",
                &[],
            )
            .unwrap();
        assert_eq!(busy.rows.len(), 1, "round {round}");
        assert_eq!(
            busy.rows[0][0],
            Value::Text(format!("{trace:016x}").into()),
            "round {round}: in-flight trace id surfaces as hex"
        );
        assert_eq!(busy.rows[0][1], Value::Int(1), "round {round}");

        rec.trace_id = None;
        rec.requests_inflight = 0;
        rec.requests = round + 1;
        telemetry::sessions::upsert(rec);
        let idle = conn
            .query(
                "SELECT trace_id, requests_inflight, requests FROM perfdmf_sessions \
                 WHERE id = 9100001",
                &[],
            )
            .unwrap();
        assert_eq!(
            idle.rows[0][0],
            Value::Null,
            "round {round}: idle session carries no trace"
        );
        assert_eq!(idle.rows[0][1], Value::Int(0), "round {round}");
        assert_eq!(idle.rows[0][2], Value::Int(round as i64 + 1));
    }

    // Idle sessions are filterable the way an operator would look for
    // stuck requests.
    let stuck = conn
        .query_scalar(
            "SELECT COUNT(*) FROM perfdmf_sessions \
             WHERE id = 9100001 AND requests_inflight > 0",
            &[],
        )
        .unwrap();
    assert_eq!(stuck, Value::Int(0));
}

#[test]
fn requests_tables_surface_the_accounting_ring() {
    use telemetry::{RequestRecord, ResourceUsage};

    // Seed the ring the way the server does — one metered success, one
    // deadline-free failure — under a kind no other test uses.
    telemetry::requests::record(RequestRecord {
        seq: 0,
        trace_id: Some(0xC0FFEE),
        session: 9_200_001,
        tenant: "tenant-req".into(),
        kind: "introspect_probe",
        status: "ok",
        deadline_slack_ms: Some(450),
        elapsed_ns: 5_000,
        slow: false,
        usage: ResourceUsage {
            rows_scanned: 42,
            chunk_hits: 7,
            chunk_misses: 1,
            pool_tasks: 4,
            wal_bytes: 128,
            queue_wait_ns: 1_000,
            execute_ns: 2_000,
        },
    });
    telemetry::requests::record(RequestRecord {
        seq: 0,
        trace_id: None,
        session: 9_200_001,
        tenant: "tenant-req".into(),
        kind: "introspect_probe",
        status: "error",
        deadline_slack_ms: None,
        elapsed_ns: 9_000,
        slow: false,
        usage: ResourceUsage::default(),
    });

    let conn = Connection::open_in_memory();
    let rs = conn
        .query(
            "SELECT trace, session, tenant, status, deadline_slack_ms, \
                    rows_scanned, wal_bytes, execute_ns \
             FROM perfdmf_requests WHERE kind = 'introspect_probe' ORDER BY seq",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(
        rs.rows[0][0],
        Value::Text(format!("{:016x}", 0xC0FFEEu64).into()),
        "trace id surfaces as hex"
    );
    assert_eq!(rs.rows[0][1], Value::Int(9_200_001));
    assert_eq!(rs.rows[0][2], Value::Text("tenant-req".into()));
    assert_eq!(rs.rows[0][3], Value::Text("ok".into()));
    assert_eq!(rs.rows[0][4], Value::Int(450));
    assert_eq!(rs.rows[0][5], Value::Int(42));
    assert_eq!(rs.rows[0][6], Value::Int(128));
    assert_eq!(rs.rows[0][7], Value::Int(2_000));
    assert_eq!(rs.rows[1][0], Value::Null, "untraced request is NULL");
    assert_eq!(rs.rows[1][3], Value::Text("error".into()));
    assert_eq!(rs.rows[1][4], Value::Null, "no deadline, no slack");

    // The per-kind rollup: count, error count, Welford latency moments
    // (population stddev of {5000, 9000} is 2000), and resource totals.
    let s = conn
        .query(
            "SELECT count, errors, slow, mean_latency_ns, stddev_latency_ns, \
                    max_latency_ns, rows_scanned, pool_tasks \
             FROM perfdmf_request_summary WHERE kind = 'introspect_probe'",
            &[],
        )
        .unwrap();
    assert_eq!(s.rows.len(), 1);
    assert_eq!(s.rows[0][0], Value::Int(2));
    assert_eq!(s.rows[0][1], Value::Int(1));
    assert_eq!(s.rows[0][2], Value::Int(0));
    assert!(
        matches!(s.rows[0][3], Value::Float(m) if (m - 7_000.0).abs() < 1e-6),
        "mean of 5000 and 9000: {:?}",
        s.rows[0][3]
    );
    assert!(
        matches!(s.rows[0][4], Value::Float(sd) if (sd - 2_000.0).abs() < 1e-6),
        "stddev of 5000 and 9000: {:?}",
        s.rows[0][4]
    );
    assert_eq!(s.rows[0][5], Value::Int(9_000));
    assert_eq!(s.rows[0][6], Value::Int(42));
    assert_eq!(s.rows[0][7], Value::Int(4));
}
