//! Failure injection and durability: the PerfDMF archive survives
//! crashes, torn WAL writes, and checkpoint cycles with committed trials
//! intact and uncommitted work discarded.

use perfdmf::core::{load_trial, DatabaseSession};
use perfdmf::db::{Connection, Value};
use perfdmf::workload::Evh1Model;
use std::io::Write;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "pdmf_dur_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn archive_survives_reopen() {
    let dir = tmpdir("reopen");
    let profile = Evh1Model::default_mix(5).generate(4);
    let trial_id;
    {
        let conn = Connection::open(&dir).unwrap();
        let mut session = DatabaseSession::new(conn).unwrap();
        trial_id = session.store_profile("evh1", "dur", &profile).unwrap();
    } // drop without checkpoint: recovery must come from the WAL alone
    {
        let conn = Connection::open(&dir).unwrap();
        let back = load_trial(&conn, trial_id).unwrap();
        assert_eq!(back.data_point_count(), profile.data_point_count());
        assert_eq!(back.events().len(), profile.events().len());
        let m = back.find_metric("GET_TIME_OF_DAY").unwrap();
        let tm = profile.find_metric("GET_TIME_OF_DAY").unwrap();
        for (e, t, d) in profile.iter_metric(tm) {
            let name = &profile.events()[e.0].name;
            let be = back.find_event(name).unwrap();
            let bd = back.interval(be, t, m).unwrap();
            assert_eq!(bd.exclusive(), d.exclusive(), "{name}@{t}");
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_then_more_writes_then_reopen() {
    let dir = tmpdir("ckpt");
    let t1;
    let t2;
    {
        let conn = Connection::open(&dir).unwrap();
        let mut session = DatabaseSession::new(conn.clone()).unwrap();
        t1 = session
            .store_profile("evh1", "dur", &Evh1Model::default_mix(1).generate(2))
            .unwrap();
        conn.checkpoint().unwrap();
        t2 = session
            .store_profile("evh1", "dur", &Evh1Model::default_mix(2).generate(2))
            .unwrap();
    }
    {
        let conn = Connection::open(&dir).unwrap();
        assert!(load_trial(&conn, t1).is_ok(), "snapshot part");
        assert!(load_trial(&conn, t2).is_ok(), "WAL part");
        let n: i64 = conn
            .query_scalar("SELECT COUNT(*) FROM trial", &[])
            .unwrap()
            .as_int()
            .unwrap();
        assert_eq!(n, 2);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_wal_tail_loses_only_uncommitted_work() {
    let dir = tmpdir("torn");
    {
        let conn = Connection::open(&dir).unwrap();
        let mut session = DatabaseSession::new(conn).unwrap();
        session
            .store_profile("evh1", "dur", &Evh1Model::default_mix(9).generate(2))
            .unwrap();
    }
    // simulate a crash mid-append: garbage at the end of the WAL
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("wal.pdmf"))
            .unwrap();
        f.write_all(&[0xBA, 0xAD, 0xF0, 0x0D, 0x01]).unwrap();
    }
    {
        let conn = Connection::open(&dir).unwrap();
        // committed trial is fully intact
        let n: i64 = conn
            .query_scalar("SELECT COUNT(*) FROM trial", &[])
            .unwrap()
            .as_int()
            .unwrap();
        assert_eq!(n, 1);
        let rows: i64 = conn
            .query_scalar("SELECT COUNT(*) FROM interval_location_profile", &[])
            .unwrap()
            .as_int()
            .unwrap();
        assert!(rows > 0);
        // and the database remains writable afterwards
        conn.insert("INSERT INTO application (name) VALUES ('after-crash')", &[])
            .unwrap();
    }
    {
        let conn = Connection::open(&dir).unwrap();
        let apps: i64 = conn
            .query_scalar("SELECT COUNT(*) FROM application", &[])
            .unwrap()
            .as_int()
            .unwrap();
        assert_eq!(apps, 2);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn interrupted_transaction_never_persists() {
    let dir = tmpdir("txn");
    {
        let conn = Connection::open(&dir).unwrap();
        let mut session = DatabaseSession::new(conn.clone()).unwrap();
        session
            .store_profile("evh1", "dur", &Evh1Model::default_mix(3).generate(1))
            .unwrap();
        // open a transaction and crash inside it
        conn.execute("BEGIN", &[]).unwrap();
        conn.execute("INSERT INTO application (name) VALUES ('phantom')", &[])
            .unwrap();
        // no COMMIT: drop simulates the crash
    }
    {
        let conn = Connection::open(&dir).unwrap();
        let rs = conn
            .query("SELECT name FROM application ORDER BY id", &[])
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::from("evh1")]]);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_snapshot_is_detected() {
    let dir = tmpdir("snapbad");
    {
        let conn = Connection::open(&dir).unwrap();
        let mut session = DatabaseSession::new(conn.clone()).unwrap();
        session
            .store_profile("evh1", "dur", &Evh1Model::default_mix(4).generate(1))
            .unwrap();
        conn.checkpoint().unwrap();
    }
    // flip a byte in the snapshot body
    let snap = dir.join("snapshot.pdmf");
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&snap, &bytes).unwrap();
    // opening reports corruption instead of silently serving bad data
    assert!(Connection::open(&dir).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}
