/root/repo/target/debug/deps/perfdmf_telemetry-279112e3af9a014c.d: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libperfdmf_telemetry-279112e3af9a014c.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libperfdmf_telemetry-279112e3af9a014c.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/snapshot.rs:
crates/telemetry/src/span.rs:
