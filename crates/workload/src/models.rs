//! Synthetic workload models.
//!
//! Stand-ins for the paper's datasets (EVH1 scalability runs, the ASCI
//! sPPM/SMG2000/SPhot counter studies, and the Miranda BG/L runs at 8K
//! and 16K processors). Each model generates ground-truth [`Profile`]s
//! from a seeded RNG so every experiment is reproducible, with the
//! statistical *shape* of the original workload:
//!
//! * [`Evh1Model`] — an Amdahl-style hydrodynamics code: per-routine
//!   parallel fractions, MPI communication growing with scale, per-thread
//!   noise and imbalance.
//! * [`SppmModel`] — threads carrying PAPI counter vectors with planted
//!   behaviour classes, reproducing the structure behind Ahn & Vetter's
//!   sPPM floating-point clustering result (paper §5.3).
//! * [`MirandaModel`] — the scale test: ~101 events × N processors × one
//!   wall-clock metric (1.6M data points at 16K).

use perfdmf_profile::{AtomicEvent, IntervalData, IntervalEvent, Metric, Profile, ThreadId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A routine in the EVH1-style model.
#[derive(Debug, Clone)]
pub struct RoutineSpec {
    /// Routine name.
    pub name: String,
    /// Event group (`COMPUTE`, `MPI`, `IO`...).
    pub group: String,
    /// Time at 1 processor (seconds).
    pub base_time: f64,
    /// Fraction of the routine that parallelizes (0 = serial, 1 = perfect).
    pub parallel_fraction: f64,
    /// Per-processor overhead factor: extra time ∝ log2(p) · overhead.
    pub comm_overhead: f64,
    /// Calls per run.
    pub calls: f64,
}

/// EVH1-style scalability workload (paper §5.2).
#[derive(Debug, Clone)]
pub struct Evh1Model {
    /// Routine mix.
    pub routines: Vec<RoutineSpec>,
    /// Relative per-thread noise (0.02 = ±2%).
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Evh1Model {
    /// The default EVH1-like routine mix: ~40 routines dominated by
    /// parallel hydro sweeps, a serial setup, and MPI exchange routines
    /// whose share grows with scale.
    pub fn default_mix(seed: u64) -> Self {
        let mut routines = Vec::new();
        routines.push(RoutineSpec {
            name: "init_grid".into(),
            group: "SETUP".into(),
            base_time: 4.0,
            parallel_fraction: 0.0,
            comm_overhead: 0.0,
            calls: 1.0,
        });
        for dim in ["x", "y", "z"] {
            for stage in 1..=10 {
                routines.push(RoutineSpec {
                    name: format!("sweep_{dim}_stage{stage}"),
                    group: "COMPUTE".into(),
                    base_time: 6.0 + stage as f64 * 0.5,
                    parallel_fraction: 0.995,
                    comm_overhead: 0.0,
                    calls: 100.0,
                });
            }
        }
        for op in [
            "MPI_Send()",
            "MPI_Recv()",
            "MPI_Allreduce()",
            "MPI_Barrier()",
        ] {
            routines.push(RoutineSpec {
                name: op.into(),
                group: "MPI".into(),
                base_time: 0.5,
                parallel_fraction: 0.2,
                comm_overhead: 0.35,
                calls: 400.0,
            });
        }
        for io in ["write_checkpoint", "read_input"] {
            routines.push(RoutineSpec {
                name: io.into(),
                group: "IO".into(),
                base_time: 1.5,
                parallel_fraction: 0.5,
                comm_overhead: 0.05,
                calls: 4.0,
            });
        }
        Evh1Model {
            routines,
            noise: 0.03,
            seed,
        }
    }

    /// Analytic per-thread time of one routine at `procs` processors
    /// (before noise): Amdahl split plus logarithmic communication growth.
    pub fn expected_time(&self, spec: &RoutineSpec, procs: usize) -> f64 {
        let p = procs as f64;
        let serial = spec.base_time * (1.0 - spec.parallel_fraction);
        let parallel = spec.base_time * spec.parallel_fraction / p;
        let comm = spec.base_time * spec.comm_overhead * (p.log2().max(0.0)) / 4.0;
        serial + parallel + comm
    }

    /// Generate one trial at `procs` processors.
    pub fn generate(&self, procs: usize) -> Profile {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (procs as u64).wrapping_mul(0x9e3779b9));
        let mut profile = Profile::new(format!("evh1.p{procs}"));
        profile.source_format = "tau".into();
        profile
            .metadata
            .push(("processors".into(), procs.to_string()));
        let metric = profile.add_metric(Metric::measured("GET_TIME_OF_DAY"));
        let main = profile.add_event(IntervalEvent::new("main", "TAU_USER"));
        let event_ids: Vec<_> = self
            .routines
            .iter()
            .map(|r| profile.add_event(IntervalEvent::new(r.name.clone(), r.group.clone())))
            .collect();
        profile.add_threads((0..procs as u32).map(|n| ThreadId::new(n, 0, 0)));
        let threads = profile.threads().to_vec();
        for &thread in &threads {
            let mut total = 0.0;
            for (spec, &event) in self.routines.iter().zip(&event_ids) {
                let expected = self.expected_time(spec, procs);
                let noisy = expected * (1.0 + rng.gen_range(-self.noise..self.noise));
                total += noisy;
                profile.set_interval(
                    event,
                    thread,
                    metric,
                    IntervalData::new(noisy, noisy, spec.calls, 0.0),
                );
            }
            profile.set_interval(
                main,
                thread,
                metric,
                IntervalData::new(total * 1.0001, 0.0, 1.0, self.routines.len() as f64),
            );
        }
        profile.recompute_derived_fields(metric);
        profile
    }
}

/// One behaviour class in the sPPM counter model.
#[derive(Debug, Clone)]
pub struct BehaviorClass {
    /// Class label for reporting.
    pub name: String,
    /// Mean value per metric (same order as [`SppmModel::metrics`]).
    pub metric_means: Vec<f64>,
    /// Relative spread within the class.
    pub spread: f64,
}

/// sPPM-style hardware-counter workload with planted thread classes
/// (paper §5.3 / Ahn & Vetter).
#[derive(Debug, Clone)]
pub struct SppmModel {
    /// PAPI metric names (up to the paper's "7 PAPI hardware counters").
    pub metrics: Vec<String>,
    /// Planted classes.
    pub classes: Vec<BehaviorClass>,
    /// RNG seed.
    pub seed: u64,
}

impl SppmModel {
    /// Default: 7 PAPI counters, 3 behaviour classes (distinct
    /// floating-point intensity — the structure Ahn & Vetter surfaced).
    pub fn default_classes(seed: u64) -> Self {
        let metrics: Vec<String> = [
            "PAPI_FP_OPS",
            "PAPI_TOT_CYC",
            "PAPI_TOT_INS",
            "PAPI_L1_DCM",
            "PAPI_L2_DCM",
            "PAPI_TLB_DM",
            "PAPI_BR_MSP",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let classes = vec![
            BehaviorClass {
                name: "fp-intensive interior".into(),
                metric_means: vec![9.0e9, 1.2e10, 1.0e10, 2.0e7, 4.0e6, 9.0e5, 1.1e6],
                spread: 0.05,
            },
            BehaviorClass {
                name: "boundary exchange".into(),
                metric_means: vec![2.5e9, 1.1e10, 8.0e9, 6.0e7, 2.2e7, 3.0e6, 4.0e6],
                spread: 0.05,
            },
            BehaviorClass {
                name: "io / coordination".into(),
                metric_means: vec![4.0e8, 9.0e9, 5.0e9, 1.2e8, 5.0e7, 8.0e6, 9.0e6],
                spread: 0.08,
            },
        ];
        SppmModel {
            metrics,
            classes,
            seed,
        }
    }

    /// Generate a trial with `threads` threads split over the classes in
    /// the given proportions (must sum to ≤ 1; remainder goes to class 0).
    /// Returns the profile and the planted class label per thread.
    pub fn generate(&self, threads: usize, proportions: &[f64]) -> (Profile, Vec<usize>) {
        assert_eq!(proportions.len(), self.classes.len());
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut profile = Profile::new(format!("sppm.t{threads}"));
        profile.source_format = "tau".into();
        let metric_ids: Vec<_> = self
            .metrics
            .iter()
            .map(|m| profile.add_metric(Metric::measured(m.clone())))
            .collect();
        let event = profile.add_event(IntervalEvent::new("sppm_timestep", "COMPUTE"));
        profile.add_threads((0..threads as u32).map(|n| ThreadId::new(n, 0, 0)));
        // class boundaries
        let mut boundaries = Vec::with_capacity(self.classes.len());
        let mut acc = 0.0;
        for p in proportions {
            acc += p;
            boundaries.push((acc * threads as f64).round() as usize);
        }
        let mut labels = Vec::with_capacity(threads);
        let thread_ids = profile.threads().to_vec();
        for (t, &thread) in thread_ids.iter().enumerate() {
            let class = boundaries.iter().position(|&b| t < b).unwrap_or(0);
            labels.push(class);
            let spec = &self.classes[class];
            for (mi, &metric) in metric_ids.iter().enumerate() {
                let mean = spec.metric_means[mi];
                let v = mean * (1.0 + rng.gen_range(-spec.spread..spec.spread));
                profile.set_interval(event, thread, metric, IntervalData::new(v, v, 100.0, 0.0));
            }
        }
        // an atomic event for message sizes, to exercise that path
        let ae = profile.add_atomic_event(AtomicEvent::new(
            "Message size sent to all nodes",
            "TAU_EVENT",
        ));
        for &thread in &thread_ids {
            for _ in 0..8 {
                let size = 2f64.powi(rng.gen_range(6..18));
                profile.record_atomic(ae, thread, size);
            }
        }
        (profile, labels)
    }
}

/// Miranda-style scale workload (paper §5.3: 101 events, 8K/16K
/// processors, one wall-clock metric, 1.6M data points at 16K).
#[derive(Debug, Clone)]
pub struct MirandaModel {
    /// Number of instrumented events ("Over one hundred events").
    pub events: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MirandaModel {
    fn default() -> Self {
        MirandaModel {
            events: 101,
            seed: 0x4d49_5241,
        }
    }
}

impl MirandaModel {
    /// Generate a trial at `procs` processors. Data points = events × procs.
    pub fn generate(&self, procs: usize) -> Profile {
        let mut rng = StdRng::seed_from_u64(self.seed ^ procs as u64);
        let mut profile = Profile::new(format!("miranda.p{procs}"));
        profile.source_format = "tau".into();
        let metric = profile.add_metric(Metric::measured("WALL_CLOCK"));
        let event_ids: Vec<_> = (0..self.events)
            .map(|i| {
                let (name, group) = if i == 0 {
                    ("main".to_string(), "TAU_USER")
                } else if i % 5 == 0 {
                    (format!("MPI_Routine_{i}()"), "MPI")
                } else {
                    (format!("miranda_kernel_{i}"), "COMPUTE")
                };
                profile.add_event(IntervalEvent::new(name, group))
            })
            .collect();
        profile.add_threads((0..procs as u32).map(|n| ThreadId::new(n, 0, 0)));
        let threads = profile.threads().to_vec();
        let base: Vec<f64> = (0..self.events)
            .map(|i| {
                if i == 0 {
                    0.0
                } else {
                    50.0 / (i as f64).sqrt()
                }
            })
            .collect();
        for &thread in &threads {
            let mut total = 0.0;
            for (i, &event) in event_ids.iter().enumerate().skip(1) {
                let v = base[i] * (1.0 + rng.gen_range(-0.1..0.1f64));
                total += v;
                profile.set_interval(
                    event,
                    thread,
                    metric,
                    IntervalData::new(v, v, (i % 17 + 1) as f64 * 10.0, 0.0),
                );
            }
            profile.set_interval(
                event_ids[0],
                thread,
                metric,
                IntervalData::new(total * 1.0001, 0.0, 1.0, (self.events - 1) as f64),
            );
        }
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfdmf_profile::IntervalField;

    #[test]
    fn evh1_scales_like_amdahl() {
        let model = Evh1Model::default_mix(42);
        let p1 = model.generate(1);
        let p8 = model.generate(8);
        assert_eq!(p1.threads().len(), 1);
        assert_eq!(p8.threads().len(), 8);
        assert!(p1.validate().is_empty(), "{:?}", p1.validate());
        // a compute sweep speeds up nearly 8x; the serial setup does not
        let m1 = p1.find_metric("GET_TIME_OF_DAY").unwrap();
        let m8 = p8.find_metric("GET_TIME_OF_DAY").unwrap();
        let sweep1 = p1
            .event_stats(
                p1.find_event("sweep_x_stage1").unwrap(),
                m1,
                IntervalField::Exclusive,
            )
            .unwrap();
        let sweep8 = p8
            .event_stats(
                p8.find_event("sweep_x_stage1").unwrap(),
                m8,
                IntervalField::Exclusive,
            )
            .unwrap();
        let speedup = sweep1.mean / sweep8.mean;
        assert!(speedup > 6.0 && speedup < 9.0, "sweep speedup {speedup}");
        let setup1 = p1
            .event_stats(
                p1.find_event("init_grid").unwrap(),
                m1,
                IntervalField::Exclusive,
            )
            .unwrap();
        let setup8 = p8
            .event_stats(
                p8.find_event("init_grid").unwrap(),
                m8,
                IntervalField::Exclusive,
            )
            .unwrap();
        let serial_speedup = setup1.mean / setup8.mean;
        assert!(serial_speedup < 1.2, "serial speedup {serial_speedup}");
        // MPI time grows with scale
        let mpi1 = p1
            .event_stats(
                p1.find_event("MPI_Allreduce()").unwrap(),
                m1,
                IntervalField::Exclusive,
            )
            .unwrap();
        let mpi8 = p8
            .event_stats(
                p8.find_event("MPI_Allreduce()").unwrap(),
                m8,
                IntervalField::Exclusive,
            )
            .unwrap();
        assert!(mpi8.mean > mpi1.mean);
    }

    #[test]
    fn evh1_reproducible() {
        let model = Evh1Model::default_mix(7);
        let a = model.generate(4);
        let b = model.generate(4);
        let m = a.find_metric("GET_TIME_OF_DAY").unwrap();
        let e = a.find_event("sweep_y_stage3").unwrap();
        let t = ThreadId::new(2, 0, 0);
        assert_eq!(
            a.interval(e, t, m).unwrap().exclusive(),
            b.interval(e, t, m).unwrap().exclusive()
        );
    }

    #[test]
    fn sppm_plants_separable_classes() {
        let model = SppmModel::default_classes(11);
        let (profile, labels) = model.generate(96, &[0.5, 0.3, 0.2]);
        assert_eq!(profile.threads().len(), 96);
        assert_eq!(labels.len(), 96);
        assert_eq!(profile.metrics().len(), 7);
        // class sizes roughly match proportions
        let c0 = labels.iter().filter(|&&l| l == 0).count();
        assert!((40..=56).contains(&c0), "c0 = {c0}");
        // fp-ops separate class 0 from class 2 by construction
        let fp = profile.find_metric("PAPI_FP_OPS").unwrap();
        let e = profile.find_event("sppm_timestep").unwrap();
        let t0 = profile.threads()[0];
        let t_last = *profile.threads().last().unwrap();
        let v0 = profile.interval(e, t0, fp).unwrap().exclusive().unwrap();
        let v2 = profile
            .interval(e, t_last, fp)
            .unwrap()
            .exclusive()
            .unwrap();
        assert!(v0 > 5.0 * v2);
        // atomic samples recorded
        assert_eq!(profile.atomic_events().len(), 1);
        assert!(profile.iter_atomic().count() == 96);
    }

    #[test]
    fn miranda_data_point_count() {
        let model = MirandaModel {
            events: 101,
            seed: 1,
        };
        let p = model.generate(64);
        assert_eq!(p.threads().len(), 64);
        assert_eq!(p.events().len(), 101);
        assert_eq!(p.data_point_count(), 101 * 64);
        assert!(p.validate().is_empty());
        // scaled to 16K this is the paper's 1.6M figure:
        assert_eq!(101 * 16384, 1_654_784);
    }
}
