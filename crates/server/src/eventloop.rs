//! The event-driven session executor: many connections per thread.
//!
//! The thread-per-session executor in [`crate::server`] spends one OS
//! thread (stack, scheduler slot, context switches) per connection,
//! which collapses under thousands of mostly-idle sessions — the
//! classic C10K wall. This module replaces the *session* threads with a
//! small sharded set of event-loop threads; the analysis worker pool
//! behind the explorer queue is untouched.
//!
//! Architecture:
//!
//! ```text
//! TcpListener ── acceptor ──(round robin)──┬─ executor 0 ─ poll(2) over N sessions
//!                                          ├─ executor 1 ─ poll(2) over N sessions
//!                                          └─ executor K ─ poll(2) over N sessions
//!                                                 │ submit_with_notify
//!                                                 ▼
//!                                          ExplorerClient → AnalysisServer workers
//! ```
//!
//! Each accepted socket becomes a nonblocking [`Session`] state machine
//! (handshake → framed read → dispatch → framed write) parked on
//! readiness. Dispatch goes through [`ExplorerClient::submit_with_notify`]:
//! the reply channel is polled with `try_recv`, and a [`WakeHandle`]
//! (one byte down a socketpair) pokes the loop out of `poll` the moment
//! a worker finishes — no thread ever blocks on a reply.
//!
//! Readiness comes from a minimal [`Reactor`] seam whose production
//! implementation, [`PollReactor`], calls `poll(2)` directly through a
//! one-function `extern "C"` declaration — no async runtime, no
//! polling-crate dependency, and the blocking [`crate::stream::Stream`]
//! seam (including [`crate::stream::FaultStream`] chaos injection)
//! stays intact underneath.
//!
//! Because sessions are state machines rather than blocked threads,
//! this executor also serves **pipelined** calls: a client may keep a
//! bounded window ([`crate::server::ServerConfig::window`]) of seqs
//! outstanding on one connection; replies are written as executions
//! complete, matched by seq, possibly out of order. Calls beyond the
//! window are answered immediately with a typed `Response::Error` so a
//! runaway client cannot queue unbounded work.
//!
//! Every protocol semantic of the threaded executor is preserved:
//! idempotency admission (replay, park-on-duplicate, at-most-once),
//! deadline expiry with the same retryable failure text, tracing-v3
//! span parentage, `RequestMeter` resource accounting, panic artifacts,
//! and the same telemetry counters in the same situations — the chaos
//! harness runs its full invariant suite against both executors.

use crate::server::{
    authenticate, deadline_slack, finish_request, validate, InFlightGuard, PanicArtifact,
    ReplayEntry, Shared, DUPLICATE_WAIT, POLL_INTERVAL,
};
use crate::stream::{write_all, write_available, RealStream, Stream};
use crate::wire::{
    parse_header, verify_body, Message, WireError, HEADER_LEN, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use perfdmf_explorer::{Request, Response};
use perfdmf_telemetry as telemetry;
use perfdmf_telemetry::sessions::{SessionRecord, SessionState};
use std::io::{Read, Write};
use std::net::TcpListener;
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How many sched_yields the shard spends re-checking completion
/// channels before parking in the reactor (see the eager-completion
/// pass in [`run`]).
const EAGER_SPINS: usize = 4;

// ---------------------------------------------------------------------
// Reactor: the readiness seam.
// ---------------------------------------------------------------------

/// One descriptor the reactor should watch, and for what.
#[derive(Debug, Clone, Copy)]
pub struct Interest {
    /// The raw descriptor.
    pub fd: RawFd,
    /// Wake when readable (or the peer hung up).
    pub read: bool,
    /// Wake when writable.
    pub write: bool,
}

/// Readiness facts for one watched descriptor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Readiness {
    /// Data (or EOF) is available to read.
    pub readable: bool,
    /// The socket will accept bytes.
    pub writable: bool,
    /// The peer hung up or the descriptor is in an error state.
    pub hangup: bool,
}

/// The one operation an event loop needs from the OS: block until any
/// watched descriptor is ready or the timeout lapses. Narrow by design
/// so tests can drive the executor with a scripted reactor and
/// production stays a single `poll(2)` call.
pub trait Reactor: Send {
    /// Wait up to `timeout`; returns one [`Readiness`] per `interests`
    /// slot (all-false on timeout).
    fn wait(
        &mut self,
        interests: &[Interest],
        timeout: Duration,
    ) -> std::io::Result<Vec<Readiness>>;
}

/// `struct pollfd` from `<poll.h>`.
#[repr(C)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

unsafe extern "C" {
    /// Declared directly instead of through a bindings crate: one
    /// POSIX function is not worth a dependency, and the signature is
    /// ABI-stable everywhere this server builds.
    fn poll(
        fds: *mut PollFd,
        nfds: core::ffi::c_ulong,
        timeout: core::ffi::c_int,
    ) -> core::ffi::c_int;
}

/// The production [`Reactor`]: `poll(2)` over the interest list.
/// `poll` (not `epoll`/`kqueue`) keeps it portable across POSIX and
/// dependency-free; the interest lists here are per-shard (hundreds,
/// not millions), where poll's O(n) scan is noise next to the syscall.
pub struct PollReactor {
    fds: Vec<PollFd>,
}

impl PollReactor {
    /// A reactor with an empty scratch buffer.
    pub fn new() -> PollReactor {
        PollReactor { fds: Vec::new() }
    }
}

impl Default for PollReactor {
    fn default() -> Self {
        PollReactor::new()
    }
}

impl Reactor for PollReactor {
    fn wait(
        &mut self,
        interests: &[Interest],
        timeout: Duration,
    ) -> std::io::Result<Vec<Readiness>> {
        self.fds.clear();
        for interest in interests {
            let mut events = 0i16;
            if interest.read {
                events |= POLLIN;
            }
            if interest.write {
                events |= POLLOUT;
            }
            self.fds.push(PollFd {
                fd: interest.fd,
                events,
                revents: 0,
            });
        }
        // Round sub-millisecond timeouts *up* so a 200µs deadline wait
        // does not degenerate into a zero-timeout busy loop.
        let millis = timeout
            .as_micros()
            .div_ceil(1000)
            .min(core::ffi::c_int::MAX as u128) as core::ffi::c_int;
        loop {
            let rc = unsafe {
                poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as core::ffi::c_ulong,
                    millis,
                )
            };
            if rc >= 0 {
                break;
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
            // EINTR: retry. Re-waiting the full timeout slightly
            // overshoots, which is fine — the loop re-derives every
            // deadline from the clock each tick anyway.
        }
        Ok(self
            .fds
            .iter()
            .map(|p| Readiness {
                readable: p.revents & (POLLIN | POLLHUP | POLLERR) != 0,
                writable: p.revents & (POLLOUT | POLLERR) != 0,
                hangup: p.revents & (POLLHUP | POLLERR | POLLNVAL) != 0,
            })
            .collect())
    }
}

// ---------------------------------------------------------------------
// Waker: cross-thread "poke the poll loop".
// ---------------------------------------------------------------------

/// Wakes a parked executor by writing one byte down a nonblocking
/// socketpair whose read end sits in the executor's interest list.
/// Cloned (via `Arc`) into every `submit_with_notify` notify closure.
pub(crate) struct WakeHandle {
    pipe: UnixStream,
    /// True while the owning shard is parked (or committing to park)
    /// in the reactor — see the park gate in [`run`]. `wake` pays the
    /// pipe-write syscall only when someone may actually be asleep;
    /// a shard that is awake sweeps every wakeable condition itself
    /// before it parks, so skipping the byte can never lose a signal.
    parked: AtomicBool,
}

impl WakeHandle {
    fn new(pipe: UnixStream) -> WakeHandle {
        WakeHandle {
            pipe,
            // Conservative until the shard's first park gate: early
            // wakes write the byte and are drained on the first tick.
            parked: AtomicBool::new(true),
        }
    }

    /// Poke the loop. A full pipe means a wake is already pending,
    /// which is exactly the desired state — the error is ignored.
    pub(crate) fn wake(&self) {
        if self.parked.load(Ordering::SeqCst) {
            let _ = (&self.pipe).write(&[1u8]);
        }
    }
}

// ---------------------------------------------------------------------
// Executor handles and intake.
// ---------------------------------------------------------------------

/// A freshly accepted connection on its way to an executor shard.
pub(crate) struct NewSession {
    /// The (possibly fault-wrapped) stream; the underlying socket is
    /// already nonblocking.
    pub(crate) stream: Box<dyn Stream>,
    /// Raw descriptor of the underlying socket, captured before the
    /// stream was boxed (the [`Stream`] seam deliberately hides it).
    pub(crate) fd: RawFd,
}

/// The acceptor's end of one executor shard: a channel plus the waker
/// that makes the shard notice the delivery.
pub(crate) struct Intake {
    tx: Sender<NewSession>,
    waker: Arc<WakeHandle>,
}

impl Intake {
    /// Hand a new connection to the shard and wake it.
    pub(crate) fn deliver(&self, session: NewSession) {
        // A send can only fail once the executor has exited, which only
        // happens during drain — dropping the stream closes the socket,
        // and the client sees a clean EOF, same as a drain farewell
        // racing the accept.
        let _ = self.tx.send(session);
        self.waker.wake();
    }

    /// Wake the shard without delivering anything (drain notification).
    pub(crate) fn wake(&self) {
        self.waker.wake();
    }
}

/// One spawned executor shard, owned by `PerfdmfServer`.
pub struct ExecutorHandle {
    tx: Sender<NewSession>,
    waker: Arc<WakeHandle>,
    thread: Option<JoinHandle<()>>,
}

impl ExecutorHandle {
    /// Spawn shard `index` over `shared`.
    pub(crate) fn spawn(shared: Arc<Shared>, index: usize) -> ExecutorHandle {
        let (tx, rx) = unbounded::<NewSession>();
        let (wake_tx, wake_rx) = UnixStream::pair().expect("executor wake socketpair");
        wake_tx
            .set_nonblocking(true)
            .expect("nonblocking wake writer");
        wake_rx
            .set_nonblocking(true)
            .expect("nonblocking wake reader");
        let waker = Arc::new(WakeHandle::new(wake_tx));
        let thread = {
            let waker = waker.clone();
            std::thread::Builder::new()
                .name(format!("perfdmf-exec-{index}"))
                .spawn(move || run(shared, rx, wake_rx, waker))
                .expect("spawn executor thread")
        };
        ExecutorHandle {
            tx,
            waker,
            thread: Some(thread),
        }
    }

    /// The acceptor-side delivery handle for this shard.
    pub(crate) fn intake(&self) -> Intake {
        Intake {
            tx: self.tx.clone(),
            waker: self.waker.clone(),
        }
    }

    /// Wake the shard (it re-reads the drain flag) and wait for it to
    /// finish closing its sessions.
    pub(crate) fn join(mut self) {
        self.waker.wake();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

// ---------------------------------------------------------------------
// Accept loop (event-loop mode).
// ---------------------------------------------------------------------

/// Accept connections and deal them round-robin across the shards.
/// Mirrors the threaded accept loop's capacity shed, fault-plan
/// decorrelation, and drain behavior — only the hand-off differs.
pub(crate) fn accept_loop(listener: TcpListener, shared: Arc<Shared>, intakes: Vec<Intake>) {
    let mut next = 0usize;
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((socket, _peer)) => {
                // The executor never blocks on this socket; readiness
                // decides when it is touched.
                let _ = socket.set_nonblocking(true);
                let fd = socket.as_raw_fd();
                let mut stream: Box<dyn Stream> = Box::new(RealStream::new(socket));
                if let Some(plan) = shared.config.fault.clone() {
                    // Decorrelate per-connection schedules while keeping
                    // the whole run a function of the configured seed.
                    let nth = shared.next_session.load(Ordering::Relaxed);
                    let mut plan = plan;
                    plan.seed = plan.seed.wrapping_add(nth.wrapping_mul(0x9E37_79B9));
                    stream = Box::new(crate::stream::FaultStream::new(stream, plan));
                }
                if shared.live_sessions.load(Ordering::Relaxed) >= shared.config.max_sessions {
                    telemetry::add("server.connection_sheds", 1);
                    let _ = write_all(
                        stream.as_mut(),
                        &Message::Goodbye {
                            reason: "server at connection capacity".into(),
                        }
                        .to_frame(),
                    );
                    stream.shutdown();
                    continue;
                }
                shared.live_sessions.fetch_add(1, Ordering::Relaxed);
                telemetry::add("server.connections", 1);
                intakes[next % intakes.len()].deliver(NewSession { stream, fd });
                next += 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
    // Make every shard notice the drain flag promptly.
    for intake in &intakes {
        intake.wake();
    }
}

// ---------------------------------------------------------------------
// Per-session state machine.
// ---------------------------------------------------------------------

/// Incremental frame reassembly over a nonblocking stream: the
/// state-machine form of the threaded executor's `read_frame`.
struct FrameReader {
    header: [u8; HEADER_LEN],
    filled: usize,
    crc: u32,
    body: Option<(Vec<u8>, usize)>,
}

/// What one [`FrameReader::step`] produced.
enum ReadStep {
    /// A complete frame body, already length- and checksum-checked.
    Frame(Vec<u8>),
    /// No complete frame buffered and the socket would block.
    Blocked,
    /// The peer closed cleanly between frames.
    Eof,
    /// The peer closed mid-frame (a torn frame).
    TornEof,
    /// The frame failed validation (bad magic / oversized / checksum).
    Wire(WireError),
    /// The transport failed (reset, ...).
    Io(std::io::Error),
}

impl FrameReader {
    fn new() -> FrameReader {
        FrameReader {
            header: [0u8; HEADER_LEN],
            filled: 0,
            crc: 0,
            body: None,
        }
    }

    /// Pull bytes until a complete frame, `WouldBlock`, or failure.
    /// Sets `*progressed` whenever any bytes arrived, so the caller can
    /// reset its idle clock exactly like the blocking reader does.
    fn step(&mut self, stream: &mut dyn Stream, progressed: &mut bool) -> ReadStep {
        loop {
            let target: &mut [u8] = match &mut self.body {
                None => &mut self.header[self.filled..],
                Some((buf, at)) => &mut buf[*at..],
            };
            match stream.read(target) {
                Ok(0) => {
                    let mid_frame = self.filled > 0 || self.body.is_some();
                    return if mid_frame {
                        ReadStep::TornEof
                    } else {
                        ReadStep::Eof
                    };
                }
                Ok(n) => {
                    *progressed = true;
                    match &mut self.body {
                        None => {
                            self.filled += n;
                            if self.filled == self.header.len() {
                                match parse_header(&self.header) {
                                    Ok((len, declared)) => {
                                        self.crc = declared;
                                        if len == 0 {
                                            self.reset_header();
                                            match verify_body(declared, &[]) {
                                                Ok(()) => return ReadStep::Frame(Vec::new()),
                                                Err(e) => return ReadStep::Wire(e),
                                            }
                                        }
                                        self.body = Some((vec![0u8; len as usize], 0));
                                    }
                                    Err(e) => return ReadStep::Wire(e),
                                }
                            }
                        }
                        Some((buf, at)) => {
                            *at += n;
                            if *at == buf.len() {
                                let (buf, _) = self.body.take().expect("body present");
                                let crc = self.crc;
                                self.reset_header();
                                return match verify_body(crc, &buf) {
                                    Ok(()) => ReadStep::Frame(buf),
                                    Err(e) => ReadStep::Wire(e),
                                };
                            }
                        }
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return ReadStep::Blocked
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return ReadStep::Io(e),
            }
        }
    }

    fn reset_header(&mut self) {
        self.filled = 0;
        self.crc = 0;
    }
}

/// Identity of one admitted call, threaded through dispatch so the
/// completion (whenever and wherever it lands) can file the same
/// accounting row and reply the threaded executor would.
struct CallCtx {
    seq: u64,
    kind: &'static str,
    deadline_ms: u32,
    started: Instant,
    trace_id: Option<u64>,
}

/// One dispatched call whose reply channel is being polled.
struct Inflight {
    ctx: CallCtx,
    /// Wall-clock expiry, when the call carried a deadline.
    deadline: Option<Instant>,
    /// When the explorer accepted the job (latency histogram base).
    submitted: Instant,
    rx: Receiver<Response>,
    guard: Option<InFlightGuard>,
    meter: telemetry::RequestMeter,
    /// For orphan accounting after the session is gone.
    session: u64,
    tenant: String,
}

/// A call parked behind a duplicate idempotency key still executing
/// (possibly submitted by a *different* connection). Re-checked against
/// the replay cache every tick — the nonblocking analogue of the
/// threaded executor's condvar wait.
struct Parked {
    ctx: CallCtx,
    key: u64,
    wait_until: Instant,
    trace: Option<telemetry::SpanContext>,
    meter: telemetry::RequestMeter,
    request: Request,
}

/// Decoded pieces of one `Call` frame.
struct CallFrame {
    seq: u64,
    deadline_ms: u32,
    idempotency: u64,
    trace: Option<telemetry::SpanContext>,
    request: Request,
}

/// Lifecycle phase of a session state machine.
enum Phase {
    /// Waiting for the Hello frame.
    Handshake,
    /// Serving calls.
    Serving,
    /// A farewell (or auth rejection) is queued; close once the out
    /// buffer drains or the linger budget lapses. Nothing further is
    /// read.
    Closing { since: Instant },
}

/// One connection as a state machine.
struct Session {
    stream: Box<dyn Stream>,
    fd: RawFd,
    phase: Phase,
    peer_protocol: u32,
    record: SessionRecord,
    /// `false` until the handshake succeeds (no registry row exists to
    /// finalize) and after a session panic (the threaded executor's
    /// panicked sessions never write a closing upsert either).
    record_on_close: bool,
    started: Instant,
    last_progress: Instant,
    reader: FrameReader,
    outbuf: Vec<u8>,
    inflight: Vec<Inflight>,
    parked: Vec<Parked>,
    window: usize,
    close_reason: Option<String>,
    dead: bool,
}

impl Session {
    fn new(new: NewSession, window: usize, now: Instant) -> Session {
        Session {
            stream: new.stream,
            fd: new.fd,
            phase: Phase::Handshake,
            peer_protocol: PROTOCOL_VERSION,
            record: SessionRecord::new(0, ""),
            record_on_close: false,
            started: now,
            last_progress: now,
            reader: FrameReader::new(),
            outbuf: Vec::new(),
            inflight: Vec::new(),
            parked: Vec::new(),
            window,
            close_reason: None,
            dead: false,
        }
    }

    /// Readiness this session currently cares about.
    fn interest(&self) -> Interest {
        Interest {
            fd: self.fd,
            read: !matches!(self.phase, Phase::Closing { .. }),
            write: !self.outbuf.is_empty(),
        }
    }

    /// The nearest instant at which this session needs the loop to act
    /// even without I/O readiness (deadline expiry, duplicate-wait
    /// expiry). Idle and linger budgets ride on the loop's 25ms tick.
    fn next_deadline(&self) -> Option<Instant> {
        let inflight = self.inflight.iter().filter_map(|i| i.deadline).min();
        let parked = self.parked.iter().map(|p| p.wait_until).min();
        match (inflight, parked) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Queue a `Goodbye` and stop reading; the connection closes once
    /// the farewell is flushed.
    fn farewell(&mut self, message: &str, close_reason: String, now: Instant) {
        self.outbuf.extend_from_slice(
            &Message::Goodbye {
                reason: message.into(),
            }
            .to_frame(),
        );
        self.close_reason.get_or_insert(close_reason);
        self.phase = Phase::Closing { since: now };
    }

    /// Per-tick work that is not I/O readiness: reply completions,
    /// deadline expiry, parked-duplicate resolution, drain/idle
    /// transitions, and the write flush.
    fn tick(&mut self, shared: &Arc<Shared>, waker: &Arc<WakeHandle>, now: Instant) {
        if self.dead {
            return;
        }
        self.poll_completions(shared, now);
        self.poll_parked(shared, waker, now);
        let draining = shared.draining.load(Ordering::SeqCst);
        let quiescent = self.inflight.is_empty() && self.parked.is_empty();
        match self.phase {
            Phase::Handshake if draining => {
                self.farewell("server draining", "server drained".into(), now);
            }
            Phase::Serving if draining && quiescent => {
                self.farewell("server draining", "server drained".into(), now);
            }
            Phase::Handshake | Phase::Serving
                if quiescent && self.last_progress.elapsed() > shared.config.idle_timeout =>
            {
                if matches!(self.phase, Phase::Serving) {
                    telemetry::add("server.idle_closes", 1);
                    self.farewell("idle timeout", "idle timeout".into(), now);
                } else {
                    // A peer that connects and never says Hello is
                    // filed as a disconnect, like the threaded
                    // executor's pre-handshake bailout.
                    telemetry::add("server.disconnects", 1);
                    self.dead = true;
                }
            }
            _ => {}
        }
        self.flush_outbuf();
        if let Phase::Closing { since } = self.phase {
            if self.outbuf.is_empty() || since.elapsed() > shared.config.idle_timeout {
                self.dead = true;
            }
        }
    }

    /// Drain finished (or expired) in-flight calls.
    fn poll_completions(&mut self, shared: &Arc<Shared>, now: Instant) {
        let mut i = 0;
        while i < self.inflight.len() {
            match self.inflight[i].rx.try_recv() {
                Ok(response) => {
                    let inf = self.inflight.remove(i);
                    self.complete(inf, response);
                }
                Err(TryRecvError::Disconnected) => {
                    let inf = self.inflight.remove(i);
                    self.complete(
                        inf,
                        Response::Error("analysis server dropped the request".into()),
                    );
                }
                Err(TryRecvError::Empty) => {
                    if self.inflight[i].deadline.is_some_and(|d| now >= d) {
                        // Same synthesized failure (and counter) the
                        // blocking `request_with_deadline` produces;
                        // dropping `rx` discards any late completion.
                        let inf = self.inflight.remove(i);
                        let response = synthesize_timeout(&inf.ctx);
                        self.complete(inf, response);
                    } else {
                        i += 1;
                    }
                }
            }
        }
        let _ = shared;
    }

    /// Account and answer one finished dispatch.
    fn complete(&mut self, inf: Inflight, response: Response) {
        let status = finish_request(&mut self.record, &response, inf.submitted);
        if let Some(guard) = inf.guard {
            guard.resolve(&response);
        }
        let usage = inf.meter.snapshot();
        self.finish_call(&inf.ctx, usage, response, status);
    }

    /// Re-check parked duplicates against the replay cache.
    fn poll_parked(&mut self, shared: &Arc<Shared>, waker: &Arc<WakeHandle>, now: Instant) {
        enum Action {
            Replay(Response),
            Promote,
            Shed,
            Expire,
        }
        let mut i = 0;
        while i < self.parked.len() {
            let action = {
                let parked = &self.parked[i];
                let mut cache = shared.replay.lock().unwrap();
                match cache.entry(parked.key) {
                    Some(ReplayEntry::Done(response)) => Action::Replay(response.clone()),
                    None => {
                        // The original execution was abandoned; this
                        // retry now runs it, registered under the same
                        // key before the lock drops.
                        cache.begin(parked.key);
                        Action::Promote
                    }
                    Some(ReplayEntry::InFlight) => {
                        if shared.draining.load(Ordering::SeqCst) {
                            Action::Shed
                        } else if now >= parked.wait_until {
                            telemetry::add("server.duplicate_waits_expired", 1);
                            Action::Expire
                        } else {
                            i += 1;
                            continue;
                        }
                    }
                }
            };
            let parked = self.parked.remove(i);
            match action {
                Action::Replay(response) => {
                    telemetry::add("server.idempotent_replays", 1);
                    self.record.replays += 1;
                    let usage = parked.meter.snapshot();
                    self.finish_call(&parked.ctx, usage, response, "replayed");
                }
                Action::Shed => {
                    let usage = parked.meter.snapshot();
                    self.finish_call(&parked.ctx, usage, Response::ShuttingDown, "shutting_down");
                }
                Action::Expire => {
                    let usage = parked.meter.snapshot();
                    let response = Response::Failed {
                        reason: "duplicate request still executing".into(),
                        retryable: true,
                    };
                    self.finish_call(&parked.ctx, usage, response, "failed");
                }
                Action::Promote => {
                    let guard = InFlightGuard::new(shared.clone(), parked.key);
                    // Re-adopt the call's trace and meter for the
                    // submission so worker spans and usage attribute to
                    // the right request, as the blocking wait (which
                    // held them adopted throughout) did.
                    let _adopted = parked.trace.map(telemetry::trace::adopt_context);
                    let _metered = telemetry::adopt_meter(parked.meter.clone());
                    let deadline = (parked.ctx.deadline_ms > 0)
                        .then(|| now + Duration::from_millis(u64::from(parked.ctx.deadline_ms)));
                    let notify = notify_via(waker);
                    match shared
                        .explorer
                        .submit_with_notify(parked.request, deadline, Some(notify))
                    {
                        Ok(rx) => self.inflight.push(Inflight {
                            session: self.record.id,
                            tenant: self.record.tenant.clone(),
                            ctx: parked.ctx,
                            deadline,
                            submitted: now,
                            rx,
                            guard: Some(guard),
                            meter: parked.meter,
                        }),
                        Err(shed) => {
                            let status = finish_request(&mut self.record, &shed, now);
                            guard.resolve(&shed);
                            let usage = parked.meter.snapshot();
                            self.finish_call(&parked.ctx, usage, shed, status);
                        }
                    }
                }
            }
        }
    }

    /// File the accounting row, balance the in-flight bookkeeping, and
    /// queue the reply frame.
    fn finish_call(
        &mut self,
        ctx: &CallCtx,
        usage: telemetry::ResourceUsage,
        response: Response,
        status: &'static str,
    ) {
        let elapsed = ctx.started.elapsed();
        telemetry::requests::record(telemetry::RequestRecord {
            seq: 0,
            trace_id: ctx.trace_id,
            session: self.record.id,
            tenant: self.record.tenant.clone(),
            kind: ctx.kind,
            status,
            deadline_slack_ms: deadline_slack(ctx.deadline_ms, elapsed),
            elapsed_ns: elapsed.as_nanos().min(u64::MAX as u128) as u64,
            slow: false,
            usage,
        });
        self.record.requests_inflight = self.record.requests_inflight.saturating_sub(1);
        if self.record.requests_inflight == 0 {
            self.record.trace_id = None;
        }
        telemetry::sessions::note_request_finished(self.record.id);
        self.queue_reply(ctx.seq, usage, response);
    }

    /// Queue a `Reply` frame, downgrading the encoding for v2 peers.
    fn queue_reply(&mut self, seq: u64, usage: telemetry::ResourceUsage, response: Response) {
        let usage = (self.peer_protocol >= 3).then_some(usage);
        self.outbuf.extend_from_slice(
            &Message::Reply {
                seq,
                usage,
                response,
            }
            .to_frame(),
        );
    }

    /// Push queued bytes at the socket; park the rest on `WouldBlock`.
    fn flush_outbuf(&mut self) {
        if self.outbuf.is_empty() || self.dead {
            return;
        }
        match write_available(self.stream.as_mut(), &mut self.outbuf) {
            Ok(_) => {
                self.last_progress = Instant::now();
            }
            Err(_) => {
                if !matches!(self.phase, Phase::Closing { .. }) {
                    telemetry::add("server.disconnects", 1);
                    self.close_reason
                        .get_or_insert_with(|| "transport error: reply write failed".into());
                }
                self.dead = true;
            }
        }
    }

    /// Pull frames while the socket has them, dispatching each.
    fn on_readable(&mut self, shared: &Arc<Shared>, waker: &Arc<WakeHandle>, now: Instant) {
        loop {
            if self.dead || matches!(self.phase, Phase::Closing { .. }) {
                return;
            }
            let mut progressed = false;
            let step = self.reader.step(self.stream.as_mut(), &mut progressed);
            if progressed {
                self.last_progress = Instant::now();
            }
            match step {
                ReadStep::Frame(body) => self.on_frame(shared, waker, body, now),
                ReadStep::Blocked => return,
                ReadStep::Eof => {
                    telemetry::add("server.disconnects", 1);
                    if matches!(self.phase, Phase::Serving) {
                        self.close_reason.get_or_insert("client closed".into());
                    }
                    self.stream.shutdown();
                    self.dead = true;
                    return;
                }
                ReadStep::TornEof => {
                    telemetry::add("server.disconnects", 1);
                    self.close_reason
                        .get_or_insert("transport error: peer closed mid-frame".into());
                    self.stream.shutdown();
                    self.dead = true;
                    return;
                }
                ReadStep::Wire(e) => {
                    telemetry::add("server.frames_rejected", 1);
                    if matches!(self.phase, Phase::Serving) {
                        self.record.protocol_errors += 1;
                        self.farewell(
                            &format!("bad frame: {e}"),
                            format!("protocol error: {e}"),
                            now,
                        );
                    } else {
                        self.farewell(
                            &format!("bad hello frame: {e}"),
                            format!("protocol error: {e}"),
                            now,
                        );
                    }
                    self.flush_outbuf();
                    return;
                }
                ReadStep::Io(e) => {
                    telemetry::add("server.disconnects", 1);
                    self.close_reason
                        .get_or_insert_with(|| format!("transport error: {e}"));
                    self.stream.shutdown();
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Dispatch one decoded frame per the current phase.
    fn on_frame(
        &mut self,
        shared: &Arc<Shared>,
        waker: &Arc<WakeHandle>,
        body: Vec<u8>,
        now: Instant,
    ) {
        match self.phase {
            Phase::Handshake => self.on_hello(shared, body, now),
            Phase::Serving => self.on_call_frame(shared, waker, body, now),
            Phase::Closing { .. } => {}
        }
    }

    /// Handshake: the first frame must be a protocol-compatible,
    /// (when required) authenticated Hello.
    fn on_hello(&mut self, shared: &Arc<Shared>, body: Vec<u8>, now: Instant) {
        match Message::decode(&body) {
            Ok(Message::Hello {
                protocol,
                tenant,
                token,
            }) => {
                if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&protocol) {
                    telemetry::add("server.protocol_errors", 1);
                    self.farewell(
                        &format!(
                            "protocol version {protocol} unsupported \
                             (want {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
                        ),
                        "protocol error: unsupported version".into(),
                        now,
                    );
                    return;
                }
                match authenticate(&shared.config, protocol, &token) {
                    Ok(authenticated) => {
                        let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
                        self.outbuf.extend_from_slice(
                            &Message::HelloAck {
                                session: id,
                                key_space: id & 0xFFFF_FFFF,
                            }
                            .to_frame(),
                        );
                        let mut record = SessionRecord::new(id, tenant);
                        record.authenticated = authenticated;
                        telemetry::sessions::upsert(record.clone());
                        self.record = record;
                        self.record_on_close = true;
                        self.peer_protocol = protocol;
                        self.phase = Phase::Serving;
                    }
                    Err(rejection) => {
                        self.outbuf.extend_from_slice(&rejection.to_frame());
                        self.close_reason
                            .get_or_insert("authentication failed".into());
                        self.phase = Phase::Closing { since: now };
                    }
                }
            }
            Ok(_) => {
                telemetry::add("server.protocol_errors", 1);
                self.farewell(
                    "expected Hello as the first frame",
                    "protocol error: expected Hello".into(),
                    now,
                );
            }
            Err(e) => {
                telemetry::add("server.frames_rejected", 1);
                self.farewell(
                    &format!("bad hello frame: {e}"),
                    format!("protocol error: {e}"),
                    now,
                );
            }
        }
        self.flush_outbuf();
    }

    /// A frame on an established session: Call, Goodbye, or garbage.
    fn on_call_frame(
        &mut self,
        shared: &Arc<Shared>,
        waker: &Arc<WakeHandle>,
        body: Vec<u8>,
        now: Instant,
    ) {
        match Message::decode(&body) {
            Ok(Message::Goodbye { .. }) => {
                self.close_reason.get_or_insert("client goodbye".into());
                self.stream.shutdown();
                self.dead = true;
            }
            Ok(Message::Call {
                seq,
                deadline_ms,
                idempotency,
                trace,
                request,
            }) => {
                if seq <= self.record.last_seq {
                    telemetry::add("server.protocol_errors", 1);
                    self.record.protocol_errors += 1;
                    self.farewell(
                        &format!("sequence regression: {seq} after {}", self.record.last_seq),
                        "protocol error: sequence regression".into(),
                        now,
                    );
                    return;
                }
                self.begin_call(
                    shared,
                    waker,
                    CallFrame {
                        seq,
                        deadline_ms,
                        idempotency,
                        trace,
                        request,
                    },
                );
            }
            Ok(_) => {
                telemetry::add("server.protocol_errors", 1);
                self.record.protocol_errors += 1;
                self.farewell(
                    "unexpected message kind",
                    "protocol error: unexpected message kind".into(),
                    now,
                );
            }
            Err(e) => {
                telemetry::add("server.frames_rejected", 1);
                self.record.protocol_errors += 1;
                self.farewell(
                    &format!("bad frame: {e}"),
                    format!("protocol error: {e}"),
                    now,
                );
            }
        }
    }

    /// Admit one call: window check, then the same traced, metered,
    /// panic-instrumented admission pipeline as the threaded executor's
    /// `answer`/`dispatch` — except the explorer submission parks an
    /// [`Inflight`] entry instead of blocking on the reply.
    fn begin_call(&mut self, shared: &Arc<Shared>, waker: &Arc<WakeHandle>, call: CallFrame) {
        let CallFrame {
            seq,
            deadline_ms,
            idempotency,
            trace,
            request,
        } = call;
        self.record.last_seq = seq;
        let kind = request.kind();
        let started = Instant::now();
        if self.inflight.len() + self.parked.len() >= self.window {
            // The window bounds queued work per connection; rejecting
            // beyond it is a protocol-visible, typed error the client's
            // pipeline API surfaces verbatim.
            telemetry::add("server.window_overflows", 1);
            telemetry::add("server.requests_rejected", 1);
            self.record.errors += 1;
            let ctx = CallCtx {
                seq,
                kind,
                deadline_ms,
                started,
                trace_id: trace.map(|c| c.trace.0),
            };
            let usage = telemetry::RequestMeter::new().snapshot();
            let response = Response::Error(format!(
                "pipelining window of {} outstanding calls exceeded",
                self.window
            ));
            // No in-flight bookkeeping was started for this seq, so
            // file the row and reply directly.
            let elapsed = started.elapsed();
            telemetry::requests::record(telemetry::RequestRecord {
                seq: 0,
                trace_id: ctx.trace_id,
                session: self.record.id,
                tenant: self.record.tenant.clone(),
                kind,
                status: "rejected",
                deadline_slack_ms: deadline_slack(deadline_ms, elapsed),
                elapsed_ns: elapsed.as_nanos().min(u64::MAX as u128) as u64,
                slow: false,
                usage,
            });
            self.queue_reply(seq, usage, response);
            return;
        }
        self.record.requests_inflight += 1;
        self.record.trace_id = trace.map(|c| c.trace.0);
        telemetry::sessions::note_request_started(self.record.id, self.record.trace_id);

        // The traced, metered scope: everything from here to the
        // explorer hand-off runs under the adopted client context and a
        // `server.request` span, so worker spans parent correctly and a
        // session-injected panic leaves the same artifacts as on a
        // session thread.
        let _adopted = trace.map(telemetry::trace::adopt_context);
        let meter = telemetry::RequestMeter::new();
        let _metered = telemetry::adopt_meter(meter.clone());
        let mut artifact = PanicArtifact {
            kind,
            session: self.record.id,
            tenant: self.record.tenant.clone(),
            trace_id: trace.map(|c| c.trace.0),
            deadline_ms,
            started,
            meter: meter.clone(),
            completed: false,
        };
        let _span = telemetry::span("server.request");
        let trace_id = artifact
            .trace_id
            .or_else(|| telemetry::trace::current_trace_id().map(|t| t.0));
        artifact.trace_id = trace_id;
        let ctx = CallCtx {
            seq,
            kind,
            deadline_ms,
            started,
            trace_id,
        };
        if shared.config.allow_fault_injection {
            if let Request::InjectPanic(message) = &request {
                if let Some(rest) = message.strip_prefix("session:") {
                    panic!("injected session panic: {rest}");
                }
            }
        }
        if let Err(reason) = validate(&request, &shared.config) {
            telemetry::add("server.requests_rejected", 1);
            self.record.errors += 1;
            artifact.completed = true;
            let usage = meter.snapshot();
            self.finish_call(&ctx, usage, Response::Error(reason), "rejected");
            return;
        }
        if shared.draining.load(Ordering::SeqCst) {
            artifact.completed = true;
            let usage = meter.snapshot();
            self.finish_call(&ctx, usage, Response::ShuttingDown, "shutting_down");
            return;
        }
        let mut guard = None;
        if idempotency != 0 {
            let wait_until = started
                + if deadline_ms > 0 {
                    Duration::from_millis(u64::from(deadline_ms))
                } else {
                    DUPLICATE_WAIT
                };
            let mut cache = shared.replay.lock().unwrap();
            match cache.entry(idempotency) {
                Some(ReplayEntry::Done(response)) => {
                    let response = response.clone();
                    drop(cache);
                    telemetry::add("server.idempotent_replays", 1);
                    self.record.replays += 1;
                    artifact.completed = true;
                    let usage = meter.snapshot();
                    self.finish_call(&ctx, usage, response, "replayed");
                    return;
                }
                Some(ReplayEntry::InFlight) => {
                    drop(cache);
                    // Park: the original execution (possibly on another
                    // connection) is still running; every tick
                    // re-checks the cache until it resolves or the wait
                    // budget lapses.
                    artifact.completed = true;
                    self.parked.push(Parked {
                        ctx,
                        key: idempotency,
                        wait_until,
                        trace,
                        meter,
                        request,
                    });
                    return;
                }
                None => {
                    cache.begin(idempotency);
                    guard = Some(InFlightGuard::new(shared.clone(), idempotency));
                }
            }
        }
        let deadline =
            (deadline_ms > 0).then(|| started + Duration::from_millis(u64::from(deadline_ms)));
        let notify = notify_via(waker);
        match shared
            .explorer
            .submit_with_notify(request, deadline, Some(notify))
        {
            Ok(rx) => {
                artifact.completed = true;
                self.inflight.push(Inflight {
                    session: self.record.id,
                    tenant: self.record.tenant.clone(),
                    ctx,
                    deadline,
                    submitted: started,
                    rx,
                    guard,
                    meter,
                });
            }
            Err(shed) => {
                artifact.completed = true;
                let status = finish_request(&mut self.record, &shed, started);
                if let Some(guard) = guard {
                    guard.resolve(&shed);
                }
                let usage = meter.snapshot();
                self.finish_call(&ctx, usage, shed, status);
            }
        }
    }

    /// A panic escaped this session's tick or I/O dispatch: count it,
    /// freeze the flight recorder, and close without the final registry
    /// upsert — exactly what a dying session thread leaves behind.
    fn panic_close(&mut self) {
        telemetry::add("server.session_panics", 1);
        telemetry::trace::fault_dump("session panic");
        self.record_on_close = false;
        self.stream.shutdown();
        self.dead = true;
    }

    /// Tear down: release the socket, push unfinished dispatches to the
    /// executor's orphan list (their completions must still resolve
    /// replay-cache guards), and finalize the registry row.
    fn finalize(mut self, shared: &Arc<Shared>, orphans: &mut Vec<Inflight>) {
        self.stream.shutdown();
        orphans.append(&mut self.inflight);
        // Parked entries hold no cache guard; dropping them simply
        // stops the wait, as a dying session thread's condvar wait
        // would.
        if self.record_on_close {
            self.record.state = SessionState::Closed;
            self.record.connected_ms =
                self.started.elapsed().as_millis().min(u64::MAX as u128) as u64;
            self.record.close_reason = Some(
                self.close_reason
                    .take()
                    .unwrap_or_else(|| "connection closed".into()),
            );
            telemetry::sessions::upsert(self.record.clone());
            telemetry::record_duration("server.session_lifetime_ns", self.started.elapsed());
        }
        shared.live_sessions.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The synthesized deadline failure, bit-compatible with the one the
/// blocking `request_with_deadline` path produces.
fn synthesize_timeout(ctx: &CallCtx) -> Response {
    let deadline = Duration::from_millis(u64::from(ctx.deadline_ms));
    telemetry::add("explorer.timeouts", 1);
    telemetry::emit(
        telemetry::Event::new(telemetry::Severity::Warn, "explorer_timeout")
            .field("where", "eventloop")
            .field("deadline_ns", deadline.as_nanos() as u64),
    );
    let trace_tag = ctx
        .trace_id
        .map(|t| format!(" [trace {t:016x}]"))
        .unwrap_or_default();
    Response::Failed {
        reason: format!("no response within {deadline:?}{trace_tag}"),
        retryable: true,
    }
}

/// Wrap a waker in the `Arc<dyn Fn()>` shape `submit_with_notify` takes.
fn notify_via(waker: &Arc<WakeHandle>) -> Arc<dyn Fn() + Send + Sync> {
    let waker = waker.clone();
    Arc::new(move || waker.wake())
}

/// Resolve an orphaned completion (session gone before its dispatch
/// finished): the replay-cache guard and global counters must still see
/// the outcome so a retry on a *new* connection replays instead of
/// re-executing. Returns `true` when the orphan is finished.
fn orphan_tick(orphan: &mut Inflight, now: Instant) -> bool {
    let outcome = match orphan.rx.try_recv() {
        Ok(response) => Some(response),
        Err(TryRecvError::Disconnected) => {
            // Worker pool gone (shutdown); the guard's drop abandons
            // the in-flight marker so future retries re-execute.
            return true;
        }
        Err(TryRecvError::Empty) => {
            if orphan.deadline.is_some_and(|d| now >= d) {
                Some(synthesize_timeout(&orphan.ctx))
            } else {
                None
            }
        }
    };
    let Some(response) = outcome else {
        return false;
    };
    // `finish_request` against a scratch record: the global counters
    // and histograms must move exactly as they would have; the
    // session's registry row is already final.
    let mut scratch = SessionRecord::new(orphan.session, orphan.tenant.clone());
    let status = finish_request(&mut scratch, &response, orphan.submitted);
    if let Some(guard) = orphan.guard.take() {
        guard.resolve(&response);
    }
    let elapsed = orphan.ctx.started.elapsed();
    telemetry::requests::record(telemetry::RequestRecord {
        seq: 0,
        trace_id: orphan.ctx.trace_id,
        session: orphan.session,
        tenant: orphan.tenant.clone(),
        kind: orphan.ctx.kind,
        status,
        deadline_slack_ms: deadline_slack(orphan.ctx.deadline_ms, elapsed),
        elapsed_ns: elapsed.as_nanos().min(u64::MAX as u128) as u64,
        slow: false,
        usage: orphan.meter.snapshot(),
    });
    true
}

// ---------------------------------------------------------------------
// The executor loop.
// ---------------------------------------------------------------------

/// One shard: poll over the wake pipe plus every session's socket;
/// tick sessions; dispatch readiness; reap the dead.
fn run(
    shared: Arc<Shared>,
    intake: Receiver<NewSession>,
    wake_rx: UnixStream,
    waker: Arc<WakeHandle>,
) {
    let mut reactor = PollReactor::new();
    let window = shared.config.resolved_window();
    let wake_fd = wake_rx.as_raw_fd();
    let mut wake_scratch = [0u8; 64];
    let mut sessions: Vec<Session> = Vec::new();
    let mut orphans: Vec<Inflight> = Vec::new();
    let mut interests: Vec<Interest> = Vec::new();
    // Whether the last poll reported the wake pipe readable; pending
    // bytes must be drained then (level-triggered poll would spin on
    // them otherwise), and only then — the drain read is a syscall on
    // the per-request path.
    let mut drain_wake = true;
    loop {
        let now = Instant::now();
        // Intake: adopt newly accepted connections.
        while let Ok(new) = intake.try_recv() {
            sessions.push(Session::new(new, window, now));
        }
        if drain_wake {
            drain_wake = false;
            loop {
                match (&wake_rx).read(&mut wake_scratch) {
                    Ok(0) => break,
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
        }
        // Tick every session; a panic (e.g. an injected session panic)
        // kills only that session, never the shard.
        for session in &mut sessions {
            if catch_unwind(AssertUnwindSafe(|| session.tick(&shared, &waker, now))).is_err() {
                session.panic_close();
            }
        }
        // Orphaned dispatches from closed sessions.
        orphans.retain_mut(|orphan| !orphan_tick(orphan, now));
        // Reap the dead.
        let mut i = 0;
        while i < sessions.len() {
            if sessions[i].dead {
                let session = sessions.swap_remove(i);
                session.finalize(&shared, &mut orphans);
            } else {
                i += 1;
            }
        }
        if shared.draining.load(Ordering::SeqCst) && sessions.is_empty() && orphans.is_empty() {
            // Intake was drained at the top of this iteration; anything
            // delivered after this check finds a dropped receiver and
            // the connection closes cleanly.
            return;
        }
        // Eager completions: a dispatched call often finishes within
        // microseconds (Ping, replay-cache hits), and parking in the
        // reactor first would tax every such reply with a wake-pipe
        // round trip — a worker write, a poll(2) wakeup, and a drain
        // read. Yield to the workers a few times and re-check the
        // completion channels; park only once the spin comes up dry.
        // Slow calls cost at most EAGER_SPINS sched_yields here, noise
        // against their execution time.
        let mut pending: usize = sessions.iter().map(|s| s.inflight.len()).sum();
        if pending > 0 {
            for _ in 0..EAGER_SPINS {
                std::thread::yield_now();
                let now = Instant::now();
                let mut remaining = 0;
                for session in &mut sessions {
                    if session.dead || session.inflight.is_empty() {
                        continue;
                    }
                    if catch_unwind(AssertUnwindSafe(|| {
                        session.poll_completions(&shared, now);
                        session.flush_outbuf();
                    }))
                    .is_err()
                    {
                        session.panic_close();
                        continue;
                    }
                    remaining += session.inflight.len();
                }
                if remaining < pending {
                    // Progress: replies are flushed; resume the loop so
                    // fresh intake and I/O aren't starved by the spin.
                    break;
                }
                pending = remaining;
            }
        }
        // Park gate: advertise the shard as parked, then make one
        // final non-blocking sweep of everything a wake() signals —
        // intake deliveries and completion channels. A producer that
        // loaded `parked == false` is ordered before the store below,
        // so its message is visible to this sweep; a producer that
        // sees `true` pays the pipe write and poll(2) returns at once.
        // Either way nothing actionable slips into the gap, and the
        // steady path (shard awake, eager spin already flushed the
        // reply) skips the wake byte, its drain read, and the spurious
        // poll return entirely. The drain flag is deliberately not
        // swept: every sleep is capped at POLL_INTERVAL, so a drain
        // landing mid-gate is noticed one tick later at worst.
        waker.parked.store(true, Ordering::SeqCst);
        if !intake.is_empty()
            || sessions
                .iter()
                .any(|s| s.inflight.iter().any(|i| !i.rx.is_empty()))
            || orphans.iter().any(|o| !o.rx.is_empty())
        {
            waker.parked.store(false, Ordering::SeqCst);
            continue;
        }
        // Build the interest list and the poll timeout.
        interests.clear();
        interests.push(Interest {
            fd: wake_fd,
            read: true,
            write: false,
        });
        let mut timeout = POLL_INTERVAL;
        for session in &sessions {
            interests.push(session.interest());
            if let Some(deadline) = session.next_deadline() {
                timeout = timeout.min(deadline.saturating_duration_since(now));
            }
        }
        if let Some(deadline) = orphans.iter().filter_map(|o| o.deadline).min() {
            timeout = timeout.min(deadline.saturating_duration_since(now));
        }
        let waited = reactor.wait(&interests, timeout);
        waker.parked.store(false, Ordering::SeqCst);
        let ready = match waited {
            Ok(ready) => ready,
            Err(_) => {
                // A reactor failure (resource exhaustion) must not spin
                // the shard; back off one tick and retry.
                std::thread::sleep(POLL_INTERVAL);
                continue;
            }
        };
        // Dispatch readiness. ready[0] is the wake pipe, drained at the
        // top of the next iteration.
        drain_wake = ready.first().is_some_and(|r| r.readable);
        let now = Instant::now();
        for (session, readiness) in sessions.iter_mut().zip(ready.iter().skip(1)) {
            if session.dead {
                continue;
            }
            let io = catch_unwind(AssertUnwindSafe(|| {
                if readiness.writable {
                    session.flush_outbuf();
                }
                if readiness.readable {
                    session.on_readable(&shared, &waker, now);
                }
                if readiness.hangup && !readiness.readable && !session.dead {
                    telemetry::add("server.disconnects", 1);
                    session
                        .close_reason
                        .get_or_insert("transport error: hangup".into());
                    session.dead = true;
                }
            }));
            if io.is_err() {
                session.panic_close();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_reactor_times_out_then_reports_readable() {
        let (a, b) = UnixStream::pair().expect("pair");
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        let mut reactor = PollReactor::new();
        let interests = [Interest {
            fd: b.as_raw_fd(),
            read: true,
            write: false,
        }];
        let idle = reactor
            .wait(&interests, Duration::from_millis(20))
            .expect("poll");
        assert!(!idle[0].readable, "nothing written yet");
        (&a).write_all(&[7u8]).unwrap();
        let ready = reactor
            .wait(&interests, Duration::from_millis(200))
            .expect("poll");
        assert!(ready[0].readable, "a pending byte must report readable");
    }

    #[test]
    fn poll_reactor_reports_writable_and_hangup() {
        let (a, b) = UnixStream::pair().expect("pair");
        let mut reactor = PollReactor::new();
        let writable = reactor
            .wait(
                &[Interest {
                    fd: a.as_raw_fd(),
                    read: false,
                    write: true,
                }],
                Duration::from_millis(100),
            )
            .expect("poll");
        assert!(writable[0].writable, "fresh socket must accept bytes");
        drop(b);
        let hung = reactor
            .wait(
                &[Interest {
                    fd: a.as_raw_fd(),
                    read: true,
                    write: false,
                }],
                Duration::from_millis(100),
            )
            .expect("poll");
        assert!(
            hung[0].readable && hung[0].hangup,
            "peer close must surface as readable EOF + hangup, got {:?}",
            hung[0]
        );
    }

    #[test]
    fn wake_handle_unblocks_a_parked_wait() {
        let (wake_tx, wake_rx) = UnixStream::pair().expect("pair");
        wake_tx.set_nonblocking(true).unwrap();
        wake_rx.set_nonblocking(true).unwrap();
        let waker = Arc::new(WakeHandle::new(wake_tx));
        let poker = waker.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            poker.wake();
        });
        let mut reactor = PollReactor::new();
        let started = Instant::now();
        let ready = reactor
            .wait(
                &[Interest {
                    fd: wake_rx.as_raw_fd(),
                    read: true,
                    write: false,
                }],
                Duration::from_secs(5),
            )
            .expect("poll");
        assert!(ready[0].readable, "the wake byte must be readable");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "the wake must cut the 5s timeout short"
        );
        handle.join().unwrap();
        // Repeated wakes while one is pending must not error or block.
        waker.wake();
        waker.wake();
    }
}
