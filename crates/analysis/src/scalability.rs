//! Scalability model fitting: Amdahl and Gustafson laws.
//!
//! The paper positions PerfDMF under "benchmarking, procurement
//! evaluation, modeling, prediction" workflows (§2); these are the
//! classic strong/weak-scaling models such studies fit to speedup data.

use crate::stats::linear_fit;

/// A fitted scaling model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingFit {
    /// Estimated serial fraction (Amdahl) or serial share α (Gustafson).
    pub serial_fraction: f64,
    /// Goodness of fit on the linearized form.
    pub r_squared: f64,
}

/// Fit Amdahl's law `S(p) = 1 / (s + (1-s)/p)` to (processors, speedup)
/// observations by linear regression on `1/S vs 1/p`
/// (`1/S = s + (1-s)·(1/p)`). Returns `None` with fewer than 3 points or
/// a degenerate fit.
pub fn fit_amdahl(points: &[(usize, f64)]) -> Option<ScalingFit> {
    if points.len() < 3 {
        return None;
    }
    let xs: Vec<f64> = points.iter().map(|&(p, _)| 1.0 / p as f64).collect();
    let ys: Vec<f64> = points
        .iter()
        .map(|&(_, s)| if s > 0.0 { 1.0 / s } else { f64::NAN })
        .collect();
    if ys.iter().any(|y| !y.is_finite()) {
        return None;
    }
    let fit = linear_fit(&xs, &ys)?;
    Some(ScalingFit {
        serial_fraction: fit.intercept.clamp(0.0, 1.0),
        r_squared: fit.r_squared,
    })
}

/// Predict Amdahl speedup at `p` processors for serial fraction `s`.
pub fn amdahl_speedup(s: f64, p: usize) -> f64 {
    1.0 / (s + (1.0 - s) / p as f64)
}

/// Fit Gustafson's law `S(p) = α + (1-α)·p` (scaled speedup) to
/// (processors, speedup) observations. Returns `None` with fewer than 3
/// points.
pub fn fit_gustafson(points: &[(usize, f64)]) -> Option<ScalingFit> {
    if points.len() < 3 {
        return None;
    }
    let xs: Vec<f64> = points.iter().map(|&(p, _)| p as f64).collect();
    let ys: Vec<f64> = points.iter().map(|&(_, s)| s).collect();
    let fit = linear_fit(&xs, &ys)?;
    // S(p) = α + (1-α)p → slope = 1-α
    let alpha = (1.0 - fit.slope).clamp(0.0, 1.0);
    Some(ScalingFit {
        serial_fraction: alpha,
        r_squared: fit.r_squared,
    })
}

/// Predict Gustafson scaled speedup at `p` processors for serial share α.
pub fn gustafson_speedup(alpha: f64, p: usize) -> f64 {
    alpha + (1.0 - alpha) * p as f64
}

/// Which law better explains the observations (by linearized R²), with
/// both fits. Useful for classifying a study as strong- vs weak-scaling
/// behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalingKind {
    /// Amdahl (strong scaling, saturating speedup) fits better.
    Amdahl(ScalingFit),
    /// Gustafson (weak scaling, linear speedup) fits better.
    Gustafson(ScalingFit),
}

/// Classify observations by the better-fitting law.
pub fn classify_scaling(points: &[(usize, f64)]) -> Option<ScalingKind> {
    let a = fit_amdahl(points);
    let g = fit_gustafson(points);
    match (a, g) {
        (Some(a), Some(g)) => Some(if a.r_squared >= g.r_squared {
            ScalingKind::Amdahl(a)
        } else {
            ScalingKind::Gustafson(g)
        }),
        (Some(a), None) => Some(ScalingKind::Amdahl(a)),
        (None, Some(g)) => Some(ScalingKind::Gustafson(g)),
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amdahl_points(s: f64) -> Vec<(usize, f64)> {
        [1usize, 2, 4, 8, 16, 32, 64]
            .iter()
            .map(|&p| (p, amdahl_speedup(s, p)))
            .collect()
    }

    #[test]
    fn amdahl_fit_recovers_serial_fraction() {
        for s in [0.01, 0.05, 0.2] {
            let fit = fit_amdahl(&amdahl_points(s)).unwrap();
            assert!((fit.serial_fraction - s).abs() < 1e-9, "s={s}");
            assert!(fit.r_squared > 0.999999);
        }
    }

    #[test]
    fn gustafson_fit_recovers_alpha() {
        let alpha = 0.1;
        let pts: Vec<(usize, f64)> = [1usize, 2, 4, 8, 16]
            .iter()
            .map(|&p| (p, gustafson_speedup(alpha, p)))
            .collect();
        let fit = fit_gustafson(&pts).unwrap();
        assert!((fit.serial_fraction - alpha).abs() < 1e-9);
    }

    #[test]
    fn classification_distinguishes_laws() {
        match classify_scaling(&amdahl_points(0.1)).unwrap() {
            ScalingKind::Amdahl(f) => assert!((f.serial_fraction - 0.1).abs() < 1e-6),
            other => panic!("{other:?}"),
        }
        let weak: Vec<(usize, f64)> = [1usize, 2, 4, 8, 16, 32]
            .iter()
            .map(|&p| (p, gustafson_speedup(0.05, p)))
            .collect();
        match classify_scaling(&weak).unwrap() {
            ScalingKind::Gustafson(f) => assert!((f.serial_fraction - 0.05).abs() < 1e-6),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(fit_amdahl(&[(1, 1.0), (2, 2.0)]).is_none());
        assert!(fit_amdahl(&[(1, 0.0), (2, 0.0), (4, 0.0)]).is_none());
        assert!(classify_scaling(&[]).is_none());
    }

    #[test]
    fn predictions_monotone() {
        let s = 0.08;
        let mut last = 0.0;
        for p in [1usize, 2, 4, 8, 16, 1024] {
            let v = amdahl_speedup(s, p);
            assert!(v > last);
            last = v;
        }
        assert!(amdahl_speedup(s, 1_000_000) < 1.0 / s);
    }
}
