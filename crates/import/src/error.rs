//! Import errors.

use std::fmt;
use std::path::PathBuf;

/// Result alias for importers.
pub type Result<T> = std::result::Result<T, ImportError>;

/// An error while importing profile data.
#[derive(Debug)]
pub enum ImportError {
    /// I/O failure reading the input.
    Io {
        path: PathBuf,
        source: std::io::Error,
    },
    /// The input does not match the expected format.
    Format {
        format: &'static str,
        message: String,
        line: usize,
    },
    /// No importer recognizes the input.
    UnknownFormat(PathBuf),
    /// A directory scan matched no profile files.
    NoProfiles(PathBuf),
    /// XML parsing failed (psrun / PerfDMF exchange format).
    Xml(perfdmf_xml::Error),
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::Io { path, source } => {
                write!(f, "I/O error reading {}: {source}", path.display())
            }
            ImportError::Format {
                format,
                message,
                line,
            } => write!(f, "{format} format error at line {line}: {message}"),
            ImportError::UnknownFormat(p) => {
                write!(f, "no importer recognizes {}", p.display())
            }
            ImportError::NoProfiles(p) => {
                write!(f, "no profile files found in {}", p.display())
            }
            ImportError::Xml(e) => write!(f, "XML error: {e}"),
        }
    }
}

impl std::error::Error for ImportError {}

impl From<perfdmf_xml::Error> for ImportError {
    fn from(e: perfdmf_xml::Error) -> Self {
        ImportError::Xml(e)
    }
}

impl ImportError {
    /// Build a format error.
    pub fn format(format: &'static str, line: usize, message: impl Into<String>) -> Self {
        ImportError::Format {
            format,
            message: message.into(),
            line,
        }
    }

    /// Build an I/O error.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        ImportError::Io {
            path: path.into(),
            source,
        }
    }
}
