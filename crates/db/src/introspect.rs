//! Virtual system tables: engine internals exposed through the SQL layer.
//!
//! Every table under the reserved `perfdmf_` prefix is materialized on
//! demand as an ordinary in-memory [`Table`], so the whole row executor —
//! filters, joins, aggregates, `ORDER BY`, `LIMIT`, `EXPLAIN` — composes
//! with them for free. They are read-only (DML returns
//! [`DbError::ReadOnlySystemTable`]) and the prefix is reserved against
//! user DDL ([`DbError::ReservedTableName`]). Because each query sees a
//! freshly materialized copy, system tables always take the row scan
//! path; the columnar planner declines them (their chunk caches would be
//! rebuilt per statement and never pay off).
//!
//! | table | one row per | backing store |
//! |---|---|---|
//! | `perfdmf_counters`        | telemetry counter            | registry snapshot |
//! | `perfdmf_histograms`      | telemetry histogram          | registry snapshot |
//! | `perfdmf_slow_queries`    | retained slow statement      | [`crate::observe::slow_query_log`] |
//! | `perfdmf_spans`           | flight-recorder span         | `telemetry::trace::recorder()` |
//! | `perfdmf_tables`          | user table                   | the live [`Database`] |
//! | `perfdmf_columns`         | user table column            | the live [`Database`] |
//! | `perfdmf_colcache`        | process (single row)         | column-chunk cache globals |
//! | `perfdmf_pool`            | process (single row)         | worker pool config + `pool.*` metrics |
//! | `perfdmf_metrics_history` | (sample, instrument) pair    | `telemetry::metrics::recorder()` |
//! | `perfdmf_regressions`     | flagged perf regression      | `telemetry::regressions::log()` |
//! | `perfdmf_sessions`        | network server session       | `telemetry::sessions::log()` |
//! | `perfdmf_requests`        | answered network request     | `telemetry::requests::log()` |
//! | `perfdmf_request_summary` | request kind                 | `telemetry::requests::summary()` |
//!
//! Schemas and example queries are documented in `docs/introspection.md`.

use crate::column;
use crate::database::Database;
use crate::error::{DbError, Result};
use crate::schema::{ColumnDef, TableSchema};
use crate::table::{Row, Table};
use crate::value::{DataType, Value};
use perfdmf_telemetry as telemetry;
use perfdmf_telemetry::snapshot::EXPORTED_QUANTILES;

/// The reserved table-name prefix.
pub const SYSTEM_PREFIX: &str = "perfdmf_";

/// Every virtual system table, in catalog order.
pub const SYSTEM_TABLES: [&str; 13] = [
    "perfdmf_counters",
    "perfdmf_histograms",
    "perfdmf_slow_queries",
    "perfdmf_spans",
    "perfdmf_tables",
    "perfdmf_columns",
    "perfdmf_colcache",
    "perfdmf_pool",
    "perfdmf_metrics_history",
    "perfdmf_regressions",
    "perfdmf_sessions",
    "perfdmf_requests",
    "perfdmf_request_summary",
];

/// True when `name` falls in the reserved namespace (case-insensitive,
/// like all table-name resolution).
pub fn is_reserved_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.starts_with(SYSTEM_PREFIX)
}

/// True when `name` is one of the defined virtual system tables.
pub fn is_system_table(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    SYSTEM_TABLES.contains(&lower.as_str())
}

/// Reject DDL targeting the reserved namespace.
pub fn check_ddl_name(name: &str) -> Result<()> {
    if is_reserved_name(name) {
        Err(DbError::ReservedTableName(name.to_string()))
    } else {
        Ok(())
    }
}

/// Reject DML targeting a system table (or any reserved name: even an
/// undefined `perfdmf_x` cannot be written, it can only not exist).
pub fn check_dml_name(name: &str) -> Result<()> {
    if is_reserved_name(name) {
        Err(DbError::ReadOnlySystemTable(name.to_string()))
    } else {
        Ok(())
    }
}

/// Materialize the named system table from live engine state. Returns
/// `None` for names outside the catalog (including undefined reserved
/// names, which then fall through to `NoSuchTable`).
pub fn materialize(db: &Database, name: &str) -> Option<Table> {
    match name.to_ascii_lowercase().as_str() {
        "perfdmf_counters" => Some(counters_table()),
        "perfdmf_histograms" => Some(histograms_table()),
        "perfdmf_slow_queries" => Some(slow_queries_table()),
        "perfdmf_spans" => Some(spans_table()),
        "perfdmf_tables" => Some(tables_table(db)),
        "perfdmf_columns" => Some(columns_table(db)),
        "perfdmf_colcache" => Some(colcache_table()),
        "perfdmf_pool" => Some(pool_table()),
        "perfdmf_metrics_history" => Some(metrics_history_table()),
        "perfdmf_regressions" => Some(regressions_table()),
        "perfdmf_sessions" => Some(sessions_table()),
        "perfdmf_requests" => Some(requests_table()),
        "perfdmf_request_summary" => Some(request_summary_table()),
        _ => None,
    }
}

fn build(name: &str, columns: Vec<ColumnDef>, rows: impl IntoIterator<Item = Row>) -> Table {
    let schema = TableSchema::new(name, columns).expect("system table schema");
    let mut t = Table::new(schema);
    for row in rows {
        t.insert(row).expect("system table row");
    }
    t
}

fn int(v: u64) -> Value {
    Value::Int(v.min(i64::MAX as u64) as i64)
}

fn opt_int(v: Option<u64>) -> Value {
    v.map(int).unwrap_or(Value::Null)
}

fn opt_float(v: Option<f64>) -> Value {
    v.map(Value::Float).unwrap_or(Value::Null)
}

fn text(s: impl Into<String>) -> Value {
    Value::Text(s.into().into())
}

fn counters_table() -> Table {
    let snap = telemetry::snapshot();
    build(
        "perfdmf_counters",
        vec![
            ColumnDef::new("name", DataType::Text).not_null(),
            ColumnDef::new("value", DataType::Integer).not_null(),
        ],
        snap.counters
            .iter()
            .map(|c| vec![text(&c.name), int(c.value)]),
    )
}

fn histogram_columns() -> Vec<ColumnDef> {
    vec![
        ColumnDef::new("name", DataType::Text).not_null(),
        ColumnDef::new("count", DataType::Integer).not_null(),
        ColumnDef::new("sum", DataType::Integer).not_null(),
        ColumnDef::new("min", DataType::Integer),
        ColumnDef::new("max", DataType::Integer),
        ColumnDef::new("mean", DataType::Double),
        ColumnDef::new("p50", DataType::Integer),
        ColumnDef::new("p95", DataType::Integer),
        ColumnDef::new("p99", DataType::Integer),
    ]
}

fn histogram_row(h: &telemetry::HistogramSnapshot) -> Row {
    vec![
        text(&h.name),
        int(h.count),
        int(h.sum),
        opt_int(h.min),
        opt_int(h.max),
        opt_float(h.mean()),
        opt_int(h.quantile(EXPORTED_QUANTILES[0].1)),
        opt_int(h.quantile(EXPORTED_QUANTILES[1].1)),
        opt_int(h.quantile(EXPORTED_QUANTILES[2].1)),
    ]
}

fn histograms_table() -> Table {
    let snap = telemetry::snapshot();
    build(
        "perfdmf_histograms",
        histogram_columns(),
        snap.histograms.iter().map(histogram_row),
    )
}

fn slow_queries_table() -> Table {
    build(
        "perfdmf_slow_queries",
        vec![
            ColumnDef::new("seq", DataType::Integer).not_null(),
            ColumnDef::new("sql", DataType::Text).not_null(),
            ColumnDef::new("elapsed_ns", DataType::Integer).not_null(),
            ColumnDef::new("rows_returned", DataType::Integer).not_null(),
            ColumnDef::new("rows_scanned", DataType::Integer).not_null(),
            ColumnDef::new("rows_affected", DataType::Integer).not_null(),
            ColumnDef::new("ok", DataType::Boolean).not_null(),
        ],
        crate::observe::slow_query_log().into_iter().map(|r| {
            vec![
                int(r.seq),
                text(r.sql),
                int(r.elapsed_ns),
                int(r.rows_returned),
                int(r.rows_scanned),
                int(r.rows_affected),
                Value::Bool(r.ok),
            ]
        }),
    )
}

fn spans_table() -> Table {
    // Trace/span ids are random u64s; render as fixed-width hex so they
    // survive the signed INTEGER type and sort lexicographically.
    let hex = |v: u64| text(format!("{v:016x}"));
    build(
        "perfdmf_spans",
        vec![
            ColumnDef::new("trace", DataType::Text).not_null(),
            ColumnDef::new("span", DataType::Text).not_null(),
            ColumnDef::new("parent", DataType::Text),
            ColumnDef::new("name", DataType::Text).not_null(),
            ColumnDef::new("thread", DataType::Integer).not_null(),
            ColumnDef::new("start_ns", DataType::Integer).not_null(),
            ColumnDef::new("dur_ns", DataType::Integer).not_null(),
            ColumnDef::new("open", DataType::Boolean).not_null(),
        ],
        telemetry::trace::recorder().dump().into_iter().map(|s| {
            vec![
                hex(s.trace),
                hex(s.span),
                if s.parent == 0 {
                    Value::Null
                } else {
                    hex(s.parent)
                },
                text(s.name),
                int(s.thread),
                int(s.start_ns),
                int(s.dur_ns),
                Value::Bool(s.open),
            ]
        }),
    )
}

fn tables_table(db: &Database) -> Table {
    build(
        "perfdmf_tables",
        vec![
            ColumnDef::new("name", DataType::Text).not_null(),
            ColumnDef::new("live_rows", DataType::Integer).not_null(),
            ColumnDef::new("slab_rows", DataType::Integer).not_null(),
            ColumnDef::new("columns", DataType::Integer).not_null(),
            ColumnDef::new("indexes", DataType::Integer).not_null(),
            ColumnDef::new("chunks", DataType::Integer).not_null(),
            ColumnDef::new("cached_chunks", DataType::Integer).not_null(),
        ],
        db.table_names().into_iter().map(|name| {
            let t = db.table(&name).expect("listed table exists");
            vec![
                text(name),
                int(t.len() as u64),
                int(t.slab_len() as u64),
                int(t.schema.columns.len() as u64),
                int(t.indexes.len() as u64),
                int(t.chunk_count() as u64),
                int(t.cached_chunk_count() as u64),
            ]
        }),
    )
}

fn columns_table(db: &Database) -> Table {
    let mut rows = Vec::new();
    for name in db.table_names() {
        let t = db.table(&name).expect("listed table exists");
        for (ordinal, col) in t.schema.columns.iter().enumerate() {
            let index = t.index_on(ordinal);
            rows.push(vec![
                text(&name),
                text(&col.name),
                int(ordinal as u64),
                text(col.ty.to_string()),
                Value::Bool(col.not_null),
                Value::Bool(col.primary_key),
                Value::Bool(col.unique),
                Value::Bool(index.is_some()),
                index
                    .map(|i| int(i.distinct_keys() as u64))
                    .unwrap_or(Value::Null),
                index
                    .and_then(|i| i.min_key())
                    .map(|v| text(v.to_string()))
                    .unwrap_or(Value::Null),
                index
                    .and_then(|i| i.max_key())
                    .map(|v| text(v.to_string()))
                    .unwrap_or(Value::Null),
            ]);
        }
    }
    build(
        "perfdmf_columns",
        vec![
            ColumnDef::new("table_name", DataType::Text).not_null(),
            ColumnDef::new("column_name", DataType::Text).not_null(),
            ColumnDef::new("ordinal", DataType::Integer).not_null(),
            ColumnDef::new("data_type", DataType::Text).not_null(),
            ColumnDef::new("not_null", DataType::Boolean).not_null(),
            ColumnDef::new("primary_key", DataType::Boolean).not_null(),
            ColumnDef::new("is_unique", DataType::Boolean).not_null(),
            ColumnDef::new("indexed", DataType::Boolean).not_null(),
            ColumnDef::new("distinct_keys", DataType::Integer),
            ColumnDef::new("min_value", DataType::Text),
            ColumnDef::new("max_value", DataType::Text),
        ],
        rows,
    )
}

fn counter_value(name: &str) -> u64 {
    telemetry::counter(name).value()
}

fn colcache_table() -> Table {
    build(
        "perfdmf_colcache",
        vec![
            ColumnDef::new("cached_bytes", DataType::Integer).not_null(),
            ColumnDef::new("budget_bytes", DataType::Integer).not_null(),
            ColumnDef::new("chunk_hits", DataType::Integer).not_null(),
            ColumnDef::new("chunk_misses", DataType::Integer).not_null(),
            ColumnDef::new("budget_declines", DataType::Integer).not_null(),
        ],
        [vec![
            int(column::cached_bytes() as u64),
            int(column::budget_bytes() as u64),
            int(counter_value("db.colcache.chunk_hits")),
            int(counter_value("db.colcache.chunk_misses")),
            int(counter_value("db.colcache.budget_declines")),
        ]],
    )
}

fn pool_table() -> Table {
    // Utilization = worker busy time over the wall-clock capacity of all
    // parallel runs (capacity = wall × workers, recorded per run).
    let busy_ns = counter_value("pool.busy_ns");
    let capacity_ns = telemetry::histogram("pool.run_capacity_ns").sum();
    let utilization = if capacity_ns > 0 {
        Value::Float(busy_ns as f64 / capacity_ns as f64)
    } else {
        Value::Null
    };
    build(
        "perfdmf_pool",
        vec![
            ColumnDef::new("threads", DataType::Integer).not_null(),
            ColumnDef::new("min_partition_items", DataType::Integer).not_null(),
            ColumnDef::new("runs", DataType::Integer).not_null(),
            ColumnDef::new("serial_fallbacks", DataType::Integer).not_null(),
            ColumnDef::new("partitions_dispatched", DataType::Integer).not_null(),
            ColumnDef::new("busy_ns", DataType::Integer).not_null(),
            ColumnDef::new("capacity_ns", DataType::Integer).not_null(),
            ColumnDef::new("utilization", DataType::Double),
        ],
        [vec![
            int(perfdmf_pool::threads() as u64),
            int(perfdmf_pool::min_partition_items() as u64),
            int(counter_value("pool.runs")),
            int(counter_value("pool.serial_fallbacks")),
            int(counter_value("pool.partitions_dispatched")),
            int(busy_ns),
            int(capacity_ns),
            utilization,
        ]],
    )
}

fn metrics_history_table() -> Table {
    // Long format: one row per (sample, instrument), so windowed queries
    // can GROUP BY name or filter on sample ranges directly.
    let mut columns = vec![
        ColumnDef::new("sample", DataType::Integer).not_null(),
        ColumnDef::new("elapsed_ms", DataType::Integer).not_null(),
        ColumnDef::new("kind", DataType::Text).not_null(),
    ];
    columns.extend(histogram_columns().into_iter().map(|mut c| {
        // Reuse the histogram shape; counters fill value-only columns.
        if c.name == "count" || c.name == "sum" {
            c.not_null = false;
        }
        c
    }));
    columns.insert(4, ColumnDef::new("value", DataType::Integer));
    let mut rows = Vec::new();
    for s in telemetry::metrics::recorder().history() {
        let head = [int(s.seq), int(s.elapsed_ms)];
        for c in &s.snapshot.counters {
            let mut row: Row = head.to_vec();
            row.push(text("counter"));
            row.push(text(&c.name));
            row.push(int(c.value));
            row.extend(std::iter::repeat_n(Value::Null, 8));
            rows.push(row);
        }
        for h in &s.snapshot.histograms {
            let mut row: Row = head.to_vec();
            row.push(text("histogram"));
            let mut hrow = histogram_row(h);
            row.push(hrow.remove(0)); // name
            row.push(Value::Null); // value (counters only)
            row.extend(hrow); // count, sum, min, max, mean, p50, p95, p99
            rows.push(row);
        }
    }
    build("perfdmf_metrics_history", columns, rows)
}

fn regressions_table() -> Table {
    build(
        "perfdmf_regressions",
        vec![
            ColumnDef::new("seq", DataType::Integer).not_null(),
            ColumnDef::new("context", DataType::Text).not_null(),
            ColumnDef::new("event", DataType::Text).not_null(),
            ColumnDef::new("metric", DataType::Text).not_null(),
            ColumnDef::new("baseline_mean", DataType::Double).not_null(),
            ColumnDef::new("baseline_stddev", DataType::Double).not_null(),
            ColumnDef::new("baseline_count", DataType::Integer).not_null(),
            ColumnDef::new("candidate", DataType::Double).not_null(),
            ColumnDef::new("ratio", DataType::Double).not_null(),
            ColumnDef::new("zscore", DataType::Double),
        ],
        telemetry::regressions::log().into_iter().map(|r| {
            vec![
                int(r.seq),
                text(r.context),
                text(r.event),
                text(r.metric),
                Value::Float(r.baseline_mean),
                Value::Float(r.baseline_stddev),
                int(r.baseline_count),
                Value::Float(r.candidate),
                Value::Float(r.ratio),
                opt_float(r.zscore),
            ]
        }),
    )
}

fn sessions_table() -> Table {
    build(
        "perfdmf_sessions",
        vec![
            ColumnDef::new("id", DataType::Integer).not_null(),
            ColumnDef::new("tenant", DataType::Text).not_null(),
            ColumnDef::new("state", DataType::Text).not_null(),
            ColumnDef::new("requests", DataType::Integer).not_null(),
            ColumnDef::new("sheds", DataType::Integer).not_null(),
            ColumnDef::new("errors", DataType::Integer).not_null(),
            ColumnDef::new("replays", DataType::Integer).not_null(),
            ColumnDef::new("protocol_errors", DataType::Integer).not_null(),
            ColumnDef::new("last_seq", DataType::Integer).not_null(),
            ColumnDef::new("connected_ms", DataType::Integer).not_null(),
            ColumnDef::new("close_reason", DataType::Text),
            ColumnDef::new("trace_id", DataType::Text),
            ColumnDef::new("requests_inflight", DataType::Integer).not_null(),
            ColumnDef::new("authenticated", DataType::Integer).not_null(),
        ],
        telemetry::sessions::log().into_iter().map(|s| {
            vec![
                int(s.id),
                text(s.tenant),
                text(s.state.as_str()),
                int(s.requests),
                int(s.sheds),
                int(s.errors),
                int(s.replays),
                int(s.protocol_errors),
                int(s.last_seq),
                int(s.connected_ms),
                s.close_reason.map(text).unwrap_or(Value::Null),
                hex_or_null(s.trace_id),
                int(s.requests_inflight),
                int(u64::from(s.authenticated)),
            ]
        }),
    )
}

/// Random u64 ids render as fixed-width hex (see `spans_table`); absent
/// ones as NULL.
fn hex_or_null(v: Option<u64>) -> Value {
    v.map(|v| text(format!("{v:016x}"))).unwrap_or(Value::Null)
}

/// Shared tail of the `perfdmf_requests` / `perfdmf_request_summary`
/// schemas: one column per [`telemetry::ResourceUsage`] field.
fn usage_columns() -> Vec<ColumnDef> {
    vec![
        ColumnDef::new("rows_scanned", DataType::Integer).not_null(),
        ColumnDef::new("chunk_hits", DataType::Integer).not_null(),
        ColumnDef::new("chunk_misses", DataType::Integer).not_null(),
        ColumnDef::new("pool_tasks", DataType::Integer).not_null(),
        ColumnDef::new("wal_bytes", DataType::Integer).not_null(),
        ColumnDef::new("queue_wait_ns", DataType::Integer).not_null(),
        ColumnDef::new("execute_ns", DataType::Integer).not_null(),
    ]
}

fn usage_values(u: &telemetry::ResourceUsage) -> Vec<Value> {
    vec![
        int(u.rows_scanned),
        int(u.chunk_hits),
        int(u.chunk_misses),
        int(u.pool_tasks),
        int(u.wal_bytes),
        int(u.queue_wait_ns),
        int(u.execute_ns),
    ]
}

fn requests_table() -> Table {
    let mut columns = vec![
        ColumnDef::new("seq", DataType::Integer).not_null(),
        ColumnDef::new("trace", DataType::Text),
        ColumnDef::new("session", DataType::Integer).not_null(),
        ColumnDef::new("tenant", DataType::Text).not_null(),
        ColumnDef::new("kind", DataType::Text).not_null(),
        ColumnDef::new("status", DataType::Text).not_null(),
        ColumnDef::new("deadline_slack_ms", DataType::Integer),
        ColumnDef::new("elapsed_ns", DataType::Integer).not_null(),
        ColumnDef::new("slow", DataType::Boolean).not_null(),
    ];
    columns.extend(usage_columns());
    build(
        "perfdmf_requests",
        columns,
        telemetry::requests::log().into_iter().map(|r| {
            let mut row = vec![
                int(r.seq),
                hex_or_null(r.trace_id),
                int(r.session),
                text(r.tenant),
                text(r.kind),
                text(r.status),
                r.deadline_slack_ms.map(Value::Int).unwrap_or(Value::Null),
                int(r.elapsed_ns),
                Value::Bool(r.slow),
            ];
            row.extend(usage_values(&r.usage));
            row
        }),
    )
}

fn request_summary_table() -> Table {
    let mut columns = vec![
        ColumnDef::new("kind", DataType::Text).not_null(),
        ColumnDef::new("count", DataType::Integer).not_null(),
        ColumnDef::new("errors", DataType::Integer).not_null(),
        ColumnDef::new("slow", DataType::Integer).not_null(),
        ColumnDef::new("mean_latency_ns", DataType::Double),
        ColumnDef::new("stddev_latency_ns", DataType::Double),
        ColumnDef::new("max_latency_ns", DataType::Integer).not_null(),
    ];
    columns.extend(usage_columns());
    build(
        "perfdmf_request_summary",
        columns,
        telemetry::requests::summary().into_iter().map(|s| {
            let mut row = vec![
                text(s.kind),
                int(s.count),
                int(s.errors),
                int(s.slow),
                if s.count > 0 {
                    Value::Float(s.latency.mean)
                } else {
                    Value::Null
                },
                if s.count > 0 {
                    Value::Float(s.latency.stddev())
                } else {
                    Value::Null
                },
                int(s.max_latency_ns),
            ];
            row.extend(usage_values(&s.totals));
            row
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_names_are_case_insensitive() {
        assert!(is_reserved_name("perfdmf_counters"));
        assert!(is_reserved_name("PERFDMF_anything"));
        assert!(is_reserved_name("PerfDMF_x"));
        assert!(!is_reserved_name("perfdmf")); // no underscore: allowed
        assert!(!is_reserved_name("trial"));
        assert!(check_ddl_name("perfdmf_mine").is_err());
        assert!(check_dml_name("PERFDMF_COUNTERS").is_err());
        assert!(check_ddl_name("trial").is_ok());
    }

    #[test]
    fn every_catalog_table_materializes() {
        let db = Database::new();
        for name in SYSTEM_TABLES {
            assert!(is_system_table(name));
            let t = materialize(&db, name).expect(name);
            assert_eq!(t.schema.name, name);
            assert!(!t.schema.columns.is_empty());
            for (_, row) in t.iter() {
                assert_eq!(row.len(), t.schema.columns.len(), "{name}");
            }
        }
        assert!(materialize(&db, "perfdmf_nope").is_none());
        assert!(materialize(&db, "trial").is_none());
    }

    #[test]
    fn counters_table_reflects_registry() {
        telemetry::add("introspect.test.counter", 41);
        let t = counters_table();
        let found = t
            .iter()
            .find(|(_, row)| row[0] == text("introspect.test.counter"))
            .expect("registered counter surfaces");
        assert!(matches!(found.1[1], Value::Int(v) if v >= 41));
    }

    #[test]
    fn histograms_table_has_quantiles() {
        for v in [10u64, 20, 30, 40, 1000] {
            telemetry::record("introspect.test.hist", v);
        }
        let t = histograms_table();
        let (_, row) = t
            .iter()
            .find(|(_, row)| row[0] == text("introspect.test.hist"))
            .expect("histogram surfaces");
        let cols = &t.schema.columns;
        let col = |n: &str| cols.iter().position(|c| c.name == n).unwrap();
        assert!(matches!(row[col("count")], Value::Int(v) if v >= 5));
        let p50 = &row[col("p50")];
        let p99 = &row[col("p99")];
        assert!(matches!((p50, p99), (Value::Int(a), Value::Int(b)) if b >= a));
    }

    #[test]
    fn tables_and_columns_describe_user_tables() {
        let mut db = Database::new();
        let schema = TableSchema::new(
            "widgets",
            vec![
                ColumnDef::new("id", DataType::Integer).primary_key(),
                ColumnDef::new("label", DataType::Text),
            ],
        )
        .unwrap();
        db.create_table(schema, false).unwrap();
        let tables = tables_table(&db);
        let (_, trow) = tables
            .iter()
            .find(|(_, r)| r[0] == text("widgets"))
            .expect("widgets listed");
        assert_eq!(trow[3], Value::Int(2), "two columns");
        assert_eq!(trow[4], Value::Int(1), "implicit pk index");

        let columns = columns_table(&db);
        let id_row = columns
            .iter()
            .map(|(_, r)| r)
            .find(|r| r[0] == text("widgets") && r[1] == text("id"))
            .expect("id column listed");
        assert_eq!(id_row[5], Value::Bool(true), "primary_key");
        assert_eq!(id_row[7], Value::Bool(true), "indexed");
    }
}
