/root/repo/target/debug/deps/perfdmf_bench-6de045342ea1a495.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libperfdmf_bench-6de045342ea1a495.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libperfdmf_bench-6de045342ea1a495.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
