/root/repo/target/debug/deps/e8_telemetry_overhead-da9ed7b3e6624766.d: crates/bench/benches/e8_telemetry_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libe8_telemetry_overhead-da9ed7b3e6624766.rmeta: crates/bench/benches/e8_telemetry_overhead.rs Cargo.toml

crates/bench/benches/e8_telemetry_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
