/root/repo/target/debug/examples/paraprof_browser-d39a60aff822a2e5.d: examples/paraprof_browser.rs

/root/repo/target/debug/examples/paraprof_browser-d39a60aff822a2e5: examples/paraprof_browser.rs

examples/paraprof_browser.rs:
