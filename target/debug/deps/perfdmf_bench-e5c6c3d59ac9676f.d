/root/repo/target/debug/deps/perfdmf_bench-e5c6c3d59ac9676f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libperfdmf_bench-e5c6c3d59ac9676f.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libperfdmf_bench-e5c6c3d59ac9676f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
