/root/repo/target/debug/deps/sql_suite-b848639ca1820560.d: crates/db/tests/sql_suite.rs Cargo.toml

/root/repo/target/debug/deps/libsql_suite-b848639ca1820560.rmeta: crates/db/tests/sql_suite.rs Cargo.toml

crates/db/tests/sql_suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
