//! perfdmf-server — the fault-tolerant TCP front door to the PerfDMF
//! archive.
//!
//! PerfDMF's analysis API (`perfdmf-explorer`) runs in-process: a
//! bounded queue, worker pool, deadline shedding, and panic isolation
//! behind `ExplorerClient`. This crate puts that API on the network
//! without weakening any of it:
//!
//! * [`wire`] — a length-prefixed binary frame protocol (`"PDMF"`
//!   magic, u32 length, tagged-tree body) carrying the existing
//!   `Request`/`Response` enums. Decoding is *total*: truncated,
//!   oversized, and garbage frames produce typed [`wire::WireError`]s,
//!   never panics and never attacker-controlled allocation.
//! * [`stream`] — the transport seam. [`RealStream`] is a plain
//!   `TcpStream`; [`FaultStream`] injects seed-deterministic delays,
//!   partial reads/writes, mid-frame disconnects, corruption, and
//!   stalls per a [`NetFaultPlan`] — the network analogue of the
//!   storage layer's `RealVfs`/`FaultVfs` split.
//! * [`server`] — [`PerfdmfServer`]: acceptor, per-connection sessions
//!   (handshake with optional token auth, tenant tag,
//!   strictly-increasing sequence numbers, idempotency replay cache),
//!   graceful drain, and telemetry that surfaces in the
//!   `perfdmf_sessions` system table.
//! * [`eventloop`] — the default session executor: sharded event-loop
//!   threads over nonblocking sockets behind a minimal poll(2)
//!   reactor, so sessions scale as parked state machines rather than
//!   OS threads, with bounded-window request pipelining. The original
//!   thread-per-session executor remains one env var away
//!   (`PERFDMF_SERVER_EXECUTOR=threads`) for differential chaos runs.
//! * [`client`] — [`NetClient`]: `ExplorerClient` semantics over TCP
//!   with reconnect-on-failure retries (seed-deterministic backoff
//!   jitter), idempotency keys so retried writes apply at most once,
//!   and per-request deadlines propagated in every frame.
//!
//! The chaos harness (`tests/chaos.rs`) drives seeded multi-client
//! workloads through randomized fault schedules and asserts the
//! invariants that matter: no panics, every request answered or cleanly
//! failed within its deadline, and no acknowledged write lost.

pub mod client;
pub mod eventloop;
pub mod server;
pub mod stream;
pub mod wire;

pub use client::NetClient;
pub use server::{ExecutorMode, PerfdmfServer, ServerConfig, DEFAULT_PIPELINE_WINDOW};
pub use stream::{FaultStream, NetFaultPlan, RealStream, Stream};
pub use wire::{Message, WireError, MAX_FRAME_LEN, PROTOCOL_VERSION};

#[cfg(test)]
mod tests {
    use super::*;
    use perfdmf_core::DatabaseSession;
    use perfdmf_db::Connection;
    use perfdmf_explorer::{Request, Response};

    fn server() -> PerfdmfServer {
        let conn = Connection::open_in_memory();
        // Applying the core schema is what makes the analysis layer's
        // tables resolvable.
        let _session = DatabaseSession::new(conn.clone()).expect("schema");
        PerfdmfServer::start_with_config(
            conn,
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .expect("server start")
    }

    #[test]
    fn ping_round_trips_over_tcp() {
        let server = server();
        let mut client = NetClient::new(server.addr(), "smoke");
        assert!(client.ping(), "server should answer Pong");
        assert!(client.session() > 0, "handshake grants a session id");
        client.close();
        server.shutdown();
    }

    #[test]
    fn shutdown_request_is_rejected_over_the_network() {
        let server = server();
        let mut client = NetClient::new(server.addr(), "smoke");
        match client.request(Request::Shutdown) {
            Response::Error(reason) => {
                assert!(reason.contains("not accepted"), "got: {reason}")
            }
            other => panic!("expected Error, got {other:?}"),
        }
        // The workers must still be alive afterwards.
        assert!(client.ping());
        client.close();
        server.shutdown();
    }

    #[test]
    fn drain_answers_new_requests_with_goodbye() {
        let server = server();
        let addr = server.addr();
        let mut client = NetClient::new(addr, "drain");
        assert!(client.ping());
        server.shutdown();
        // The old connection is gone and reconnects are refused; the
        // client surfaces that as a retryable transport failure, not a
        // panic or a hang.
        match client.request(Request::Ping) {
            Response::Failed { .. } | Response::ShuttingDown => {}
            other => panic!("expected failure after drain, got {other:?}"),
        }
    }
}
