//! The trial-level profile container.
//!
//! A [`Profile`] holds everything measured in one trial: the metric list,
//! the interval-event list, the thread list, one [`IntervalData`] record
//! per (event, thread, metric) combination, and atomic-event statistics —
//! the in-memory equivalent of the paper's TRIAL subtree (METRIC,
//! INTERVAL_EVENT, INTERVAL_LOCATION_PROFILE, ATOMIC_EVENT,
//! ATOMIC_LOCATION_PROFILE).
//!
//! Storage is dense: one contiguous plane of `IntervalData` per metric,
//! indexed by `event_index * n_threads + thread_index`. This keeps the 16K
//! processor × 101 event Miranda-scale trial (experiment E1, ~1.6M data
//! points) cache-friendly and allocation-light, per the workspace's
//! HPC guidance.

use crate::atomic::AtomicData;
use crate::event::{AtomicEvent, IntervalEvent, Metric};
use crate::interval::IntervalData;
use crate::thread::ThreadId;
use std::collections::HashMap;

/// Identifies a metric within a profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MetricId(pub usize);

/// Identifies an interval event within a profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(pub usize);

/// Identifies an atomic event within a profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AtomicEventId(pub usize);

/// Min / mean / max / stddev of one event across threads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventStats {
    /// Number of threads with defined data.
    pub count: usize,
    /// Minimum across threads.
    pub min: f64,
    /// Maximum across threads.
    pub max: f64,
    /// Mean across threads.
    pub mean: f64,
    /// Sample standard deviation across threads (0 when count < 2).
    pub stddev: f64,
}

/// Which interval field a statistic is computed over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalField {
    /// Inclusive value.
    Inclusive,
    /// Exclusive value.
    Exclusive,
    /// Call count.
    Calls,
    /// Subroutine count.
    Subroutines,
}

impl IntervalField {
    fn get(&self, d: &IntervalData) -> Option<f64> {
        match self {
            IntervalField::Inclusive => d.inclusive(),
            IntervalField::Exclusive => d.exclusive(),
            IntervalField::Calls => d.calls(),
            IntervalField::Subroutines => d.subroutines(),
        }
    }
}

/// A complete parallel profile for one trial.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Trial name (free-form; often the directory or file it came from).
    pub name: String,
    /// Tool that produced the data (`tau`, `gprof`, `mpip`, ...).
    pub source_format: String,
    /// Free-form trial metadata (problem size, date, machine, ...).
    pub metadata: Vec<(String, String)>,
    metrics: Vec<Metric>,
    metric_index: HashMap<String, usize>,
    events: Vec<IntervalEvent>,
    event_index: HashMap<String, usize>,
    threads: Vec<ThreadId>,
    thread_index: HashMap<ThreadId, usize>,
    /// One dense plane per metric: `plane[event * n_threads + thread]`.
    planes: Vec<Vec<IntervalData>>,
    atomic_events: Vec<AtomicEvent>,
    atomic_index: HashMap<String, usize>,
    /// Sparse atomic data keyed by (atomic event, thread index).
    atomic_data: HashMap<(usize, usize), AtomicData>,
}

impl Profile {
    /// New empty profile.
    pub fn new(name: impl Into<String>) -> Self {
        Profile {
            name: name.into(),
            ..Default::default()
        }
    }

    // ---------------- registration ----------------

    /// Register (or look up) a metric by name.
    pub fn add_metric(&mut self, metric: Metric) -> MetricId {
        if let Some(&i) = self.metric_index.get(&metric.name) {
            return MetricId(i);
        }
        let i = self.metrics.len();
        self.metric_index.insert(metric.name.clone(), i);
        self.metrics.push(metric);
        self.planes.push(vec![
            IntervalData::default();
            self.events.len() * self.threads.len()
        ]);
        MetricId(i)
    }

    /// Register (or look up) an interval event by name.
    pub fn add_event(&mut self, event: IntervalEvent) -> EventId {
        if let Some(&i) = self.event_index.get(&event.name) {
            return EventId(i);
        }
        let i = self.events.len();
        self.event_index.insert(event.name.clone(), i);
        self.events.push(event);
        // Events are the outer dimension: append one row per plane.
        for plane in &mut self.planes {
            plane.extend(std::iter::repeat_n(
                IntervalData::default(),
                self.threads.len(),
            ));
        }
        EventId(i)
    }

    /// Register (or look up) a thread.
    pub fn add_thread(&mut self, thread: ThreadId) -> usize {
        if let Some(&i) = self.thread_index.get(&thread) {
            return i;
        }
        let old_n = self.threads.len();
        let i = old_n;
        self.thread_index.insert(thread, i);
        self.threads.push(thread);
        // Threads are the inner dimension: re-stride every plane.
        let new_n = old_n + 1;
        for plane in &mut self.planes {
            let mut new_plane = vec![IntervalData::default(); self.events.len() * new_n];
            for e in 0..self.events.len() {
                let src = &plane[e * old_n..(e + 1) * old_n];
                new_plane[e * new_n..e * new_n + old_n].copy_from_slice(src);
            }
            *plane = new_plane;
        }
        i
    }

    /// Register many threads at once (amortizes the re-stride; use this
    /// for large trials).
    pub fn add_threads(&mut self, threads: impl IntoIterator<Item = ThreadId>) {
        let fresh: Vec<ThreadId> = threads
            .into_iter()
            .filter(|t| !self.thread_index.contains_key(t))
            .collect();
        if fresh.is_empty() {
            return;
        }
        let old_n = self.threads.len();
        for (k, t) in fresh.iter().enumerate() {
            self.thread_index.insert(*t, old_n + k);
        }
        self.threads.extend_from_slice(&fresh);
        let new_n = self.threads.len();
        for plane in &mut self.planes {
            let mut new_plane = vec![IntervalData::default(); self.events.len() * new_n];
            for e in 0..self.events.len() {
                let src = &plane[e * old_n..(e + 1) * old_n];
                new_plane[e * new_n..e * new_n + old_n].copy_from_slice(src);
            }
            *plane = new_plane;
        }
    }

    /// Register (or look up) an atomic event.
    pub fn add_atomic_event(&mut self, event: AtomicEvent) -> AtomicEventId {
        if let Some(&i) = self.atomic_index.get(&event.name) {
            return AtomicEventId(i);
        }
        let i = self.atomic_events.len();
        self.atomic_index.insert(event.name.clone(), i);
        self.atomic_events.push(event);
        AtomicEventId(i)
    }

    // ---------------- lookups ----------------

    /// All metrics.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// All interval events.
    pub fn events(&self) -> &[IntervalEvent] {
        &self.events
    }

    /// All threads, in registration order.
    pub fn threads(&self) -> &[ThreadId] {
        &self.threads
    }

    /// All atomic events.
    pub fn atomic_events(&self) -> &[AtomicEvent] {
        &self.atomic_events
    }

    /// Metric id by name.
    pub fn find_metric(&self, name: &str) -> Option<MetricId> {
        self.metric_index.get(name).map(|&i| MetricId(i))
    }

    /// Event id by name.
    pub fn find_event(&self, name: &str) -> Option<EventId> {
        self.event_index.get(name).map(|&i| EventId(i))
    }

    /// Atomic event id by name.
    pub fn find_atomic_event(&self, name: &str) -> Option<AtomicEventId> {
        self.atomic_index.get(name).map(|&i| AtomicEventId(i))
    }

    /// Metric definition.
    pub fn metric(&self, id: MetricId) -> &Metric {
        &self.metrics[id.0]
    }

    /// Event definition.
    pub fn event(&self, id: EventId) -> &IntervalEvent {
        &self.events[id.0]
    }

    /// Thread index (dense position) of a thread id.
    pub fn thread_position(&self, thread: ThreadId) -> Option<usize> {
        self.thread_index.get(&thread).copied()
    }

    // ---------------- interval data ----------------

    fn slot(&self, event: EventId, thread_pos: usize, _metric: MetricId) -> usize {
        debug_assert!(event.0 < self.events.len());
        debug_assert!(thread_pos < self.threads.len());
        event.0 * self.threads.len() + thread_pos
    }

    /// Store interval data for an (event, thread, metric) combination.
    ///
    /// All three coordinates must already be registered.
    pub fn set_interval(
        &mut self,
        event: EventId,
        thread: ThreadId,
        metric: MetricId,
        data: IntervalData,
    ) {
        let tpos = self.thread_index[&thread];
        let slot = self.slot(event, tpos, metric);
        self.planes[metric.0][slot] = data;
    }

    /// Interval data for a combination; `None` if nothing was recorded.
    pub fn interval(
        &self,
        event: EventId,
        thread: ThreadId,
        metric: MetricId,
    ) -> Option<&IntervalData> {
        let tpos = *self.thread_index.get(&thread)?;
        let slot = self.slot(event, tpos, metric);
        let d = &self.planes[metric.0][slot];
        if is_present(d) {
            Some(d)
        } else {
            None
        }
    }

    /// Interval data by dense thread position (hot-loop access).
    pub fn interval_at(
        &self,
        event: EventId,
        thread_pos: usize,
        metric: MetricId,
    ) -> Option<&IntervalData> {
        let slot = self.slot(event, thread_pos, metric);
        let d = &self.planes[metric.0][slot];
        if is_present(d) {
            Some(d)
        } else {
            None
        }
    }

    /// Iterate all present (event, thread, data) triples for one metric.
    pub fn iter_metric(
        &self,
        metric: MetricId,
    ) -> impl Iterator<Item = (EventId, ThreadId, &IntervalData)> + '_ {
        let n = self.threads.len();
        self.planes[metric.0]
            .iter()
            .enumerate()
            .filter(|(_, d)| is_present(d))
            .map(move |(i, d)| (EventId(i / n), self.threads[i % n], d))
    }

    /// Number of present (event, thread, metric) data points — the paper's
    /// "1.6 million data points" measure for the 16K Miranda run.
    pub fn data_point_count(&self) -> usize {
        self.planes
            .iter()
            .map(|p| p.iter().filter(|d| is_present(d)).count())
            .sum()
    }

    // ---------------- atomic data ----------------

    /// Store/merge atomic data for an (atomic event, thread) combination.
    pub fn set_atomic(&mut self, event: AtomicEventId, thread: ThreadId, data: AtomicData) {
        let tpos = self.thread_index[&thread];
        self.atomic_data.insert((event.0, tpos), data);
    }

    /// Record one atomic sample.
    pub fn record_atomic(&mut self, event: AtomicEventId, thread: ThreadId, sample: f64) {
        let tpos = self.thread_index[&thread];
        self.atomic_data
            .entry((event.0, tpos))
            .or_default()
            .record(sample);
    }

    /// Atomic data for a combination.
    pub fn atomic(&self, event: AtomicEventId, thread: ThreadId) -> Option<&AtomicData> {
        let tpos = *self.thread_index.get(&thread)?;
        self.atomic_data.get(&(event.0, tpos))
    }

    /// Iterate all atomic records.
    pub fn iter_atomic(&self) -> impl Iterator<Item = (AtomicEventId, ThreadId, &AtomicData)> + '_ {
        self.atomic_data
            .iter()
            .map(|(&(e, t), d)| (AtomicEventId(e), self.threads[t], d))
    }

    // ---------------- derived fields & summaries ----------------

    /// Recompute inclusive/exclusive percentages and per-call values for
    /// every thread of one metric. Percentages are relative to the
    /// thread's largest inclusive value (its root event), as TAU reports
    /// them.
    pub fn recompute_derived_fields(&mut self, metric: MetricId) {
        let n_threads = self.threads.len();
        let n_events = self.events.len();
        let plane = &mut self.planes[metric.0];
        for t in 0..n_threads {
            let mut total = 0.0f64;
            for e in 0..n_events {
                let d = &plane[e * n_threads + t];
                if let Some(incl) = d.inclusive() {
                    total = total.max(incl);
                }
            }
            if total <= 0.0 {
                continue;
            }
            for e in 0..n_events {
                let d = &mut plane[e * n_threads + t];
                if !is_present(d) {
                    continue;
                }
                if let Some(incl) = d.inclusive() {
                    d.inclusive_percent = 100.0 * incl / total;
                    if let Some(calls) = d.calls() {
                        if calls > 0.0 {
                            d.inclusive_per_call = incl / calls;
                        }
                    }
                }
                if let Some(excl) = d.exclusive() {
                    d.exclusive_percent = 100.0 * excl / total;
                }
            }
        }
    }

    /// Total summary for one metric: per-event accumulation across all
    /// threads (the paper's INTERVAL_TOTAL_SUMMARY).
    pub fn total_summary(&self, metric: MetricId) -> Vec<IntervalData> {
        let n_threads = self.threads.len();
        let plane = &self.planes[metric.0];
        let mut out = vec![IntervalData::default(); self.events.len()];
        for (e, slot) in out.iter_mut().enumerate() {
            for t in 0..n_threads {
                let d = &plane[e * n_threads + t];
                if is_present(d) {
                    slot.accumulate(d);
                }
            }
        }
        out
    }

    /// Mean summary for one metric: total divided by the thread count
    /// (the paper's INTERVAL_MEAN_SUMMARY).
    pub fn mean_summary(&self, metric: MetricId) -> Vec<IntervalData> {
        let n = self.threads.len();
        let mut totals = self.total_summary(metric);
        if n == 0 {
            return totals;
        }
        let factor = 1.0 / n as f64;
        for d in &mut totals {
            d.scale(factor);
        }
        totals
    }

    /// Min/mean/max/stddev of one event's field across threads.
    pub fn event_stats(
        &self,
        event: EventId,
        metric: MetricId,
        field: IntervalField,
    ) -> Option<EventStats> {
        let n_threads = self.threads.len();
        let plane = &self.planes[metric.0];
        let mut count = 0usize;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        for t in 0..n_threads {
            let d = &plane[event.0 * n_threads + t];
            let Some(x) = field.get(d) else {
                continue;
            };
            count += 1;
            min = min.min(x);
            max = max.max(x);
            let delta = x - mean;
            mean += delta / count as f64;
            m2 += delta * (x - mean);
        }
        if count == 0 {
            return None;
        }
        let stddev = if count > 1 {
            (m2 / (count - 1) as f64).sqrt()
        } else {
            0.0
        };
        Some(EventStats {
            count,
            min,
            max,
            mean,
            stddev,
        })
    }

    /// Check internal consistency; returns human-readable problems.
    ///
    /// Invariants checked:
    /// * exclusive ≤ inclusive wherever both are defined,
    /// * percentages within [0, 100 + ε],
    /// * per-call consistent with inclusive / calls,
    /// * atomic min ≤ mean ≤ max.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        const EPS: f64 = 1e-6;
        for (mi, plane) in self.planes.iter().enumerate() {
            let n = self.threads.len();
            for (i, d) in plane.iter().enumerate() {
                if !is_present(d) {
                    continue;
                }
                let event = &self.events[i / n].name;
                let thread = self.threads[i % n];
                if let (Some(incl), Some(excl)) = (d.inclusive(), d.exclusive()) {
                    if excl > incl * (1.0 + EPS) + EPS {
                        problems.push(format!(
                            "{event}@{thread} metric {}: exclusive {excl} > inclusive {incl}",
                            self.metrics[mi].name
                        ));
                    }
                }
                for (label, pct) in [
                    ("inclusive%", d.inclusive_percent()),
                    ("exclusive%", d.exclusive_percent()),
                ] {
                    if let Some(p) = pct {
                        if !(-EPS..=100.0 + EPS).contains(&p) {
                            problems.push(format!("{event}@{thread}: {label} {p} outside [0,100]"));
                        }
                    }
                }
                if let (Some(ipc), Some(incl), Some(calls)) =
                    (d.inclusive_per_call(), d.inclusive(), d.calls())
                {
                    if calls > 0.0 && (ipc - incl / calls).abs() > EPS * (1.0 + ipc.abs()) {
                        problems.push(format!(
                            "{event}@{thread}: per-call {ipc} != inclusive/calls {}",
                            incl / calls
                        ));
                    }
                }
            }
        }
        for (&(e, t), d) in &self.atomic_data {
            if d.count > 0 && !(d.min <= d.mean + EPS && d.mean <= d.max + EPS) {
                problems.push(format!(
                    "atomic {}@{}: min {} mean {} max {} out of order",
                    self.atomic_events[e].name, self.threads[t], d.min, d.mean, d.max
                ));
            }
        }
        problems
    }
}

fn is_present(d: &IntervalData) -> bool {
    !(d.inclusive.is_nan()
        && d.exclusive.is_nan()
        && d.calls.is_nan()
        && d.subroutines.is_nan()
        && d.inclusive_percent.is_nan()
        && d.exclusive_percent.is_nan()
        && d.inclusive_per_call.is_nan())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Profile, EventId, EventId, MetricId) {
        let mut p = Profile::new("t");
        let m = p.add_metric(Metric::measured("TIME"));
        let main = p.add_event(IntervalEvent::new("main", "TAU_USER"));
        let send = p.add_event(IntervalEvent::new("MPI_Send()", "MPI"));
        p.add_threads((0..4).map(|n| ThreadId::new(n, 0, 0)));
        for (n, t) in p.threads().to_vec().into_iter().enumerate() {
            p.set_interval(
                main,
                t,
                m,
                IntervalData::new(100.0, 60.0 + n as f64, 1.0, 5.0),
            );
            p.set_interval(
                send,
                t,
                m,
                IntervalData::new(40.0 - n as f64, 40.0 - n as f64, 10.0, 0.0),
            );
        }
        (p, main, send, m)
    }

    #[test]
    fn registration_dedupes() {
        let mut p = Profile::new("t");
        let a = p.add_metric(Metric::measured("TIME"));
        let b = p.add_metric(Metric::measured("TIME"));
        assert_eq!(a, b);
        let e1 = p.add_event(IntervalEvent::new("f", "g"));
        let e2 = p.add_event(IntervalEvent::ungrouped("f"));
        assert_eq!(e1, e2);
        assert_eq!(p.events().len(), 1);
        let t1 = p.add_thread(ThreadId::ZERO);
        let t2 = p.add_thread(ThreadId::ZERO);
        assert_eq!(t1, t2);
    }

    #[test]
    fn set_and_get_interval() {
        let (p, main, send, m) = tiny();
        let t0 = ThreadId::new(0, 0, 0);
        assert_eq!(p.interval(main, t0, m).unwrap().inclusive(), Some(100.0));
        assert_eq!(p.interval(send, t0, m).unwrap().calls(), Some(10.0));
        assert!(p.interval(main, ThreadId::new(9, 9, 9), m).is_none());
        assert_eq!(p.data_point_count(), 8);
    }

    #[test]
    fn late_thread_registration_restrides() {
        let (mut p, main, _send, m) = tiny();
        let t_new = ThreadId::new(10, 0, 0);
        p.add_thread(t_new);
        // existing data still addressable
        assert_eq!(
            p.interval(main, ThreadId::new(3, 0, 0), m)
                .unwrap()
                .exclusive(),
            Some(63.0)
        );
        p.set_interval(main, t_new, m, IntervalData::new(1.0, 1.0, 1.0, 0.0));
        assert_eq!(p.interval(main, t_new, m).unwrap().inclusive(), Some(1.0));
        assert_eq!(p.data_point_count(), 9);
    }

    #[test]
    fn late_metric_registration() {
        let (mut p, main, _send, _m) = tiny();
        let papi = p.add_metric(Metric::measured("PAPI_FP_OPS"));
        let t0 = ThreadId::new(0, 0, 0);
        assert!(p.interval(main, t0, papi).is_none());
        p.set_interval(main, t0, papi, IntervalData::new(1e9, 1e9, 1.0, 0.0));
        assert_eq!(p.interval(main, t0, papi).unwrap().inclusive(), Some(1e9));
    }

    #[test]
    fn derived_fields() {
        let (mut p, main, send, m) = tiny();
        p.recompute_derived_fields(m);
        let t0 = ThreadId::new(0, 0, 0);
        let d = p.interval(main, t0, m).unwrap();
        assert_eq!(d.inclusive_percent(), Some(100.0));
        assert_eq!(d.exclusive_percent(), Some(60.0));
        let s = p.interval(send, t0, m).unwrap();
        assert_eq!(s.inclusive_percent(), Some(40.0));
        assert_eq!(s.inclusive_per_call(), Some(4.0));
        assert!(p.validate().is_empty(), "{:?}", p.validate());
    }

    #[test]
    fn total_and_mean_summary() {
        let (p, main, send, m) = tiny();
        let total = p.total_summary(m);
        assert_eq!(total[main.0].inclusive(), Some(400.0));
        assert_eq!(total[main.0].exclusive(), Some(60.0 + 61.0 + 62.0 + 63.0));
        assert_eq!(total[send.0].calls(), Some(40.0));
        let mean = p.mean_summary(m);
        assert_eq!(mean[main.0].inclusive(), Some(100.0));
        assert_eq!(mean[send.0].calls(), Some(10.0));
        // mean × count == total (summary invariant)
        assert!(
            (mean[send.0].inclusive().unwrap() * 4.0 - total[send.0].inclusive().unwrap()).abs()
                < 1e-9
        );
    }

    #[test]
    fn event_stats_across_threads() {
        let (p, _main, send, m) = tiny();
        let s = p.event_stats(send, m, IntervalField::Exclusive).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 37.0);
        assert_eq!(s.max, 40.0);
        assert!((s.mean - 38.5).abs() < 1e-12);
        let xs = [40.0f64, 39.0, 38.0, 37.0];
        let mean = 38.5;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / 3.0;
        assert!((s.stddev - var.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn atomic_recording() {
        let mut p = Profile::new("t");
        p.add_thread(ThreadId::ZERO);
        let ae = p.add_atomic_event(AtomicEvent::new("Message size", "TAU_EVENT"));
        for x in [100.0, 200.0, 300.0] {
            p.record_atomic(ae, ThreadId::ZERO, x);
        }
        let d = p.atomic(ae, ThreadId::ZERO).unwrap();
        assert_eq!(d.count, 3);
        assert_eq!(d.min, 100.0);
        assert_eq!(d.max, 300.0);
        assert_eq!(d.mean, 200.0);
        assert_eq!(p.iter_atomic().count(), 1);
        assert!(p.validate().is_empty());
    }

    #[test]
    fn iter_metric_covers_all_present() {
        let (p, _, _, m) = tiny();
        let triples: Vec<_> = p.iter_metric(m).collect();
        assert_eq!(triples.len(), 8);
        assert!(triples
            .iter()
            .all(|(e, t, _)| e.0 < 2 && p.thread_position(*t).is_some()));
    }

    #[test]
    fn validate_catches_bad_data() {
        let mut p = Profile::new("t");
        let m = p.add_metric(Metric::measured("TIME"));
        let e = p.add_event(IntervalEvent::ungrouped("f"));
        p.add_thread(ThreadId::ZERO);
        // exclusive > inclusive
        p.set_interval(
            e,
            ThreadId::ZERO,
            m,
            IntervalData::new(10.0, 20.0, 1.0, 0.0),
        );
        assert_eq!(p.validate().len(), 1);
    }

    #[test]
    fn empty_profile_is_sane() {
        let p = Profile::new("empty");
        assert_eq!(p.data_point_count(), 0);
        assert!(p.validate().is_empty());
        assert!(p.find_metric("TIME").is_none());
    }
}
