//! Vectorized aggregate kernels over column chunks.
//!
//! The columnar execution path compiles a whole-table aggregate query
//! (no joins, no GROUP BY) into a [`ColumnarPlan`]: typed predicates
//! plus one aggregate kernel per expression. Execution walks the
//! table's [`Chunk`]s with tight per-type loops — no per-row `Value`
//! dispatch, no row materialization — and packages each chunk's state
//! into an [`Accumulator`] partial via `Accumulator::from_parts`.
//! Partials merge in ascending chunk order (a fixed left-deep merge
//! tree), so the result is deterministic regardless of how many pool
//! workers processed the chunks.
//!
//! Kernels replicate the serial accumulator update sequence exactly
//! within a chunk (checked integer sums with the same overflow
//! degradation point, the same Welford recurrence), and cross-chunk
//! merging uses the same Chan et al. combination as the parallel row
//! path — so columnar results match serial results to within the float
//! tolerance the differential oracle already accepts, and bit-for-bit
//! on integer aggregates.
//!
//! Compilation is deliberately strict: any predicate or aggregate whose
//! typed semantics could diverge from the row path (booleans in SUM,
//! cross-type comparisons the total order ranks by type, NULL
//! constants) declines, and the query falls back to row execution.

use super::aggregate::Accumulator;
use super::eval::Layout;
use crate::column::{bit, Chunk, ColumnData};
use crate::error::Result;
use crate::schema::TableSchema;
use crate::sql::ast::{AggregateFn, BinaryOp, Expr};
use crate::table::Table;
use crate::value::{DataType, IStr, Value};
use perfdmf_pool as pool;
use std::cell::Cell;
use std::cmp::Ordering;
use std::ops::Range;

// ---------------- columnar mode ----------------

/// When the executor uses the columnar path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnarMode {
    /// Never — always row execution.
    Off,
    /// Statistics decide (the default).
    Auto,
    /// Columnar whenever the query shape is eligible.
    Force,
}

thread_local! {
    static MODE_OVERRIDE: Cell<Option<ColumnarMode>> = const { Cell::new(None) };
}

/// The effective columnar mode: a thread-local override if set, else the
/// `PERFDMF_COLUMNAR` environment variable (`0` off, `1` force), else
/// [`ColumnarMode::Auto`].
pub fn columnar_mode() -> ColumnarMode {
    if let Some(m) = MODE_OVERRIDE.with(|c| c.get()) {
        return m;
    }
    match std::env::var("PERFDMF_COLUMNAR").ok().as_deref() {
        Some("0") | Some("off") | Some("false") => ColumnarMode::Off,
        Some("1") | Some("on") | Some("force") | Some("true") => ColumnarMode::Force,
        _ => ColumnarMode::Auto,
    }
}

/// Force a columnar mode for the current thread until the guard drops.
/// Tests use this to run the same query through both paths in-process.
pub fn override_for_thread(mode: ColumnarMode) -> ColumnarOverrideGuard {
    let prev = MODE_OVERRIDE.with(|c| c.replace(Some(mode)));
    ColumnarOverrideGuard { prev }
}

/// Restores the previous thread-local mode on drop.
pub struct ColumnarOverrideGuard {
    prev: Option<ColumnarMode>,
}

impl Drop for ColumnarOverrideGuard {
    fn drop(&mut self) {
        MODE_OVERRIDE.with(|c| c.set(self.prev));
    }
}

// ---------------- plan ----------------

/// One aggregate kernel: the function and its source column (`None` for
/// `COUNT(*)`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct AggSpec {
    pub func: AggregateFn,
    pub col: Option<usize>,
}

/// A typed predicate constant.
#[derive(Debug, Clone, Copy)]
enum ColConst {
    I(i64),
    F(f64),
    B(bool),
    /// Interned dictionary id of a text constant.
    T(u32),
}

/// Comparison operator on the column's total order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PredOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl PredOp {
    fn from_binary(op: BinaryOp) -> Option<PredOp> {
        Some(match op {
            BinaryOp::Eq => PredOp::Eq,
            BinaryOp::NotEq => PredOp::Ne,
            BinaryOp::Lt => PredOp::Lt,
            BinaryOp::LtEq => PredOp::Le,
            BinaryOp::Gt => PredOp::Gt,
            BinaryOp::GtEq => PredOp::Ge,
            _ => return None,
        })
    }

    fn flip(self) -> PredOp {
        match self {
            PredOp::Lt => PredOp::Gt,
            PredOp::Le => PredOp::Ge,
            PredOp::Gt => PredOp::Lt,
            PredOp::Ge => PredOp::Le,
            other => other,
        }
    }

    #[inline]
    fn test(self, ord: Ordering) -> bool {
        match self {
            PredOp::Eq => ord == Ordering::Equal,
            PredOp::Ne => ord != Ordering::Equal,
            PredOp::Lt => ord == Ordering::Less,
            PredOp::Le => ord != Ordering::Greater,
            PredOp::Gt => ord == Ordering::Greater,
            PredOp::Ge => ord != Ordering::Less,
        }
    }
}

/// One compiled WHERE conjunct. All variants treat a NULL operand as
/// not-selected, matching three-valued WHERE semantics.
#[derive(Debug, Clone)]
enum ColPred {
    Cmp {
        col: usize,
        op: PredOp,
        k: ColConst,
    },
    Between {
        col: usize,
        lo: ColConst,
        hi: ColConst,
        negated: bool,
    },
    InList {
        col: usize,
        items: Vec<ColConst>,
        negated: bool,
        /// The original list carried a NULL: a non-matching operand
        /// yields NULL (not selected) instead of `negated`.
        saw_null: bool,
    },
    IsNull {
        col: usize,
        negated: bool,
    },
}

/// A compiled whole-table aggregate query.
#[derive(Debug, Clone)]
pub(crate) struct ColumnarPlan {
    /// One kernel per aggregate expression, in collection order.
    pub aggs: Vec<AggSpec>,
    preds: Vec<ColPred>,
}

impl ColumnarPlan {
    /// Number of compiled predicates (EXPLAIN detail).
    pub fn pred_count(&self) -> usize {
        self.preds.len()
    }
}

/// Execution measurements for EXPLAIN ANALYZE and telemetry.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ColScanStats {
    pub chunks: usize,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub partitions: usize,
}

// ---------------- compilation ----------------

fn resolve_base_col(e: &Expr, binding: &str, layout1: &Layout) -> Option<usize> {
    if let Expr::Column { table, column } = e {
        match table {
            Some(t) if !t.eq_ignore_ascii_case(binding) => None,
            _ => layout1.resolve(None, column).ok(),
        }
    } else {
        None
    }
}

fn const_val(e: &Expr, params: &[Value]) -> Option<Value> {
    match e {
        Expr::Literal(v) => Some(v.clone()),
        Expr::Param(i) => params.get(*i).cloned(),
        _ => None,
    }
}

/// Type a constant against a column. `None` declines the predicate:
/// either the comparison is cross-type (the total order ranks by type,
/// which the row path handles) or the column kind has no kernel.
fn typed_const(ty: DataType, v: &Value) -> Option<ColConst> {
    match (ty, v) {
        (DataType::Integer | DataType::Double, Value::Int(i)) => Some(ColConst::I(*i)),
        (DataType::Integer | DataType::Double, Value::Float(f)) => Some(ColConst::F(*f)),
        (DataType::Boolean, Value::Bool(b)) => Some(ColConst::B(*b)),
        (DataType::Text, Value::Text(s)) => Some(ColConst::T(s.id())),
        _ => None,
    }
}

/// Compile the aggregate expressions plus WHERE conjuncts of a
/// single-table aggregate query. Returns `None` when any part has no
/// exact columnar equivalent — the caller falls back to row execution.
pub(crate) fn plan_columnar(
    schema: &TableSchema,
    binding: &str,
    layout1: &Layout,
    agg_exprs: &[&Expr],
    where_clause: Option<&Expr>,
    params: &[Value],
) -> Option<ColumnarPlan> {
    let mut aggs = Vec::with_capacity(agg_exprs.len());
    for a in agg_exprs {
        let Expr::Aggregate {
            func,
            arg,
            distinct: false,
        } = a
        else {
            return None; // DISTINCT pins the row path
        };
        let spec = match arg {
            None => AggSpec {
                func: *func,
                col: None,
            },
            Some(arg) => {
                let col = resolve_base_col(arg, binding, layout1)?;
                let ty = schema.columns[col].ty;
                let eligible = match func {
                    // COUNT(col) only needs the null bitmap.
                    AggregateFn::Count => true,
                    // Booleans SUM through the row path's float
                    // degradation and text SUM is an eval error; both
                    // decline so semantics stay identical.
                    AggregateFn::Sum | AggregateFn::Avg | AggregateFn::StdDev => {
                        matches!(ty, DataType::Integer | DataType::Double)
                    }
                    AggregateFn::Min | AggregateFn::Max => {
                        matches!(ty, DataType::Integer | DataType::Double | DataType::Text)
                    }
                };
                if !eligible {
                    return None;
                }
                AggSpec {
                    func: *func,
                    col: Some(col),
                }
            }
        };
        aggs.push(spec);
    }

    let mut preds = Vec::new();
    if let Some(pred) = where_clause {
        for c in super::select::conjuncts(pred) {
            preds.push(compile_conjunct(c, schema, binding, layout1, params)?);
        }
    }
    Some(ColumnarPlan { aggs, preds })
}

fn compile_conjunct(
    c: &Expr,
    schema: &TableSchema,
    binding: &str,
    layout1: &Layout,
    params: &[Value],
) -> Option<ColPred> {
    match c {
        Expr::Binary { op, left, right } => {
            let (col, v, op) = match (
                resolve_base_col(left, binding, layout1),
                const_val(right, params),
            ) {
                (Some(col), Some(v)) => (col, v, PredOp::from_binary(*op)?),
                _ => match (
                    resolve_base_col(right, binding, layout1),
                    const_val(left, params),
                ) {
                    (Some(col), Some(v)) => (col, v, PredOp::from_binary(*op)?.flip()),
                    _ => return None,
                },
            };
            if v.is_null() {
                return None; // NULL comparisons are never true; row path
            }
            let ty = schema.columns[col].ty;
            let k = typed_const(ty, &v)?;
            // Text supports only dictionary-id equality; ordered text
            // comparisons stay on the row path.
            if matches!(k, ColConst::T(_)) && !matches!(op, PredOp::Eq | PredOp::Ne) {
                return None;
            }
            Some(ColPred::Cmp { col, op, k })
        }
        Expr::Between {
            operand,
            low,
            high,
            negated,
        } => {
            let col = resolve_base_col(operand, binding, layout1)?;
            let ty = schema.columns[col].ty;
            if !matches!(ty, DataType::Integer | DataType::Double) {
                return None;
            }
            let lo = const_val(low, params)?;
            let hi = const_val(high, params)?;
            if lo.is_null() || hi.is_null() {
                return None;
            }
            Some(ColPred::Between {
                col,
                lo: typed_const(ty, &lo)?,
                hi: typed_const(ty, &hi)?,
                negated: *negated,
            })
        }
        Expr::InList {
            operand,
            list,
            negated,
        } => {
            let col = resolve_base_col(operand, binding, layout1)?;
            let ty = schema.columns[col].ty;
            let mut items = Vec::with_capacity(list.len());
            let mut saw_null = false;
            for item in list {
                let v = const_val(item, params)?;
                if v.is_null() {
                    saw_null = true;
                    continue;
                }
                // A cross-type item never equals this column's values
                // (sql_eq ranks by type): inert, drop it.
                if let Some(k) = typed_const(ty, &v) {
                    items.push(k);
                }
            }
            Some(ColPred::InList {
                col,
                items,
                negated: *negated,
                saw_null,
            })
        }
        Expr::IsNull { operand, negated } => {
            let col = resolve_base_col(operand, binding, layout1)?;
            Some(ColPred::IsNull {
                col,
                negated: *negated,
            })
        }
        _ => None,
    }
}

// ---------------- predicate kernels ----------------

#[inline]
fn clear_bit(words: &mut [u64], i: usize) {
    words[i >> 6] &= !(1u64 << (i & 63));
}

/// Compare row `i` of a typed column against a constant, on the same
/// total order the row path uses. Caller guarantees the row is live and
/// non-NULL. Returns `None` if the column data has no kernel.
#[inline]
fn cmp_cell(data: &ColumnData, i: usize, k: ColConst) -> Option<Ordering> {
    Some(match (data, k) {
        (ColumnData::Int(xs), ColConst::I(b)) => xs[i].cmp(&b),
        (ColumnData::Int(xs), ColConst::F(b)) => (xs[i] as f64).total_cmp(&b),
        (ColumnData::Int(xs), ColConst::B(b)) => (xs[i] != 0).cmp(&b),
        (ColumnData::Float(xs), ColConst::I(b)) => xs[i].total_cmp(&(b as f64)),
        (ColumnData::Float(xs), ColConst::F(b)) => xs[i].total_cmp(&b),
        (ColumnData::Dict(ds), ColConst::T(id)) => {
            if ds[i] == id {
                Ordering::Equal
            } else {
                // Only Eq/Ne reach dictionary columns; any non-equal
                // ordering stands in for "not equal".
                Ordering::Less
            }
        }
        _ => return None,
    })
}

/// Apply one predicate to the selection bitmap. Returns `false` when the
/// column data is unsupported and the query must fall back.
fn apply_pred(sel: &mut [u64], chunk: &Chunk, pred: &ColPred) -> bool {
    match pred {
        ColPred::IsNull { col, negated } => {
            let nulls = &chunk.cols[*col].nulls;
            for i in 0..chunk.len {
                if bit(sel, i) && (bit(nulls, i) == *negated) {
                    clear_bit(sel, i);
                }
            }
            true
        }
        ColPred::Cmp { col, op, k } => {
            let cc = &chunk.cols[*col];
            if matches!(cc.data, ColumnData::Unsupported) {
                return false;
            }
            for i in 0..chunk.len {
                if !bit(sel, i) {
                    continue;
                }
                let keep =
                    !bit(&cc.nulls, i) && cmp_cell(&cc.data, i, *k).is_some_and(|ord| op.test(ord));
                if !keep {
                    clear_bit(sel, i);
                }
            }
            true
        }
        ColPred::Between {
            col,
            lo,
            hi,
            negated,
        } => {
            let cc = &chunk.cols[*col];
            if matches!(cc.data, ColumnData::Unsupported) {
                return false;
            }
            for i in 0..chunk.len {
                if !bit(sel, i) {
                    continue;
                }
                let keep = !bit(&cc.nulls, i)
                    && match (cmp_cell(&cc.data, i, *lo), cmp_cell(&cc.data, i, *hi)) {
                        (Some(a), Some(b)) => {
                            (a != Ordering::Less && b != Ordering::Greater) != *negated
                        }
                        _ => false,
                    };
                if !keep {
                    clear_bit(sel, i);
                }
            }
            true
        }
        ColPred::InList {
            col,
            items,
            negated,
            saw_null,
        } => {
            let cc = &chunk.cols[*col];
            if matches!(cc.data, ColumnData::Unsupported) && !items.is_empty() {
                return false;
            }
            for i in 0..chunk.len {
                if !bit(sel, i) {
                    continue;
                }
                let keep = if bit(&cc.nulls, i) {
                    false
                } else {
                    let matched = items
                        .iter()
                        .any(|k| cmp_cell(&cc.data, i, *k) == Some(Ordering::Equal));
                    if matched {
                        !*negated
                    } else if *saw_null {
                        false // NULL in the list ⇒ non-match is NULL
                    } else {
                        *negated
                    }
                };
                if !keep {
                    clear_bit(sel, i);
                }
            }
            true
        }
    }
}

/// Build the chunk's selection bitmap: live ∧ every predicate. `None`
/// means an unsupported column forced a fallback.
fn selection(chunk: &Chunk, preds: &[ColPred]) -> Option<Vec<u64>> {
    let mut sel = chunk.live.clone();
    for p in preds {
        if !apply_pred(&mut sel, chunk, p) {
            return None;
        }
    }
    Some(sel)
}

// ---------------- aggregate kernels ----------------

/// Welford + checked-integer-sum state, updated in exactly the serial
/// accumulator's operation order so a chunk partial is bit-identical to
/// a serial accumulator fed the same rows.
struct NumState {
    count: u64,
    int_sum: i64,
    int_exact: bool,
    float_sum: f64,
    mean: f64,
    m2: f64,
}

impl NumState {
    fn new() -> Self {
        NumState {
            count: 0,
            int_sum: 0,
            int_exact: true,
            float_sum: 0.0,
            mean: 0.0,
            m2: 0.0,
        }
    }

    #[inline]
    fn push_int(&mut self, i: i64) {
        self.count += 1;
        if self.int_exact {
            match self.int_sum.checked_add(i) {
                Some(s) => self.int_sum = s,
                None => {
                    self.int_exact = false;
                    self.float_sum = self.int_sum as f64 + i as f64;
                }
            }
        } else {
            self.float_sum += i as f64;
        }
        self.welford(i as f64);
    }

    #[inline]
    fn push_float(&mut self, x: f64) {
        self.count += 1;
        if self.int_exact {
            self.float_sum = self.int_sum as f64;
            self.int_exact = false;
        }
        self.float_sum += x;
        self.welford(x);
    }

    #[inline]
    fn welford(&mut self, x: f64) {
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    fn into_accumulator(self, func: AggregateFn) -> Accumulator {
        Accumulator::from_parts(
            func,
            self.count,
            self.int_sum,
            self.int_exact,
            self.float_sum,
            None,
            None,
            self.mean,
            self.m2,
        )
    }
}

/// Count of selected rows with bit clear in `nulls`.
fn count_non_null(sel: &[u64], nulls: &[u64]) -> u64 {
    sel.iter()
        .zip(nulls)
        .map(|(s, n)| (s & !n).count_ones() as u64)
        .sum()
}

/// Run one aggregate kernel over a chunk's selected rows. `None` means
/// the column data has no kernel (fallback).
fn agg_partial(chunk: &Chunk, sel: &[u64], spec: AggSpec) -> Option<Accumulator> {
    let AggSpec { func, col } = spec;
    let Some(col) = col else {
        // COUNT(*): every selected row.
        let count: u64 = sel.iter().map(|w| w.count_ones() as u64).sum();
        return Some(Accumulator::from_parts(
            func, count, 0, true, 0.0, None, None, 0.0, 0.0,
        ));
    };
    let cc = &chunk.cols[col];
    if func == AggregateFn::Count {
        let count = count_non_null(sel, &cc.nulls);
        return Some(Accumulator::from_parts(
            func, count, 0, true, 0.0, None, None, 0.0, 0.0,
        ));
    }
    match (&cc.data, func) {
        (ColumnData::Int(xs), AggregateFn::Sum | AggregateFn::Avg | AggregateFn::StdDev) => {
            let mut st = NumState::new();
            for (i, &x) in xs.iter().enumerate() {
                if bit(sel, i) && !bit(&cc.nulls, i) {
                    st.push_int(x);
                }
            }
            Some(st.into_accumulator(func))
        }
        (ColumnData::Float(xs), AggregateFn::Sum | AggregateFn::Avg | AggregateFn::StdDev) => {
            let mut st = NumState::new();
            for (i, &x) in xs.iter().enumerate() {
                if bit(sel, i) && !bit(&cc.nulls, i) {
                    st.push_float(x);
                }
            }
            Some(st.into_accumulator(func))
        }
        (ColumnData::Int(xs), AggregateFn::Min | AggregateFn::Max) => {
            let mut count = 0u64;
            let mut best: Option<i64> = None;
            let want = if func == AggregateFn::Min {
                Ordering::Less
            } else {
                Ordering::Greater
            };
            for (i, &x) in xs.iter().enumerate() {
                if bit(sel, i) && !bit(&cc.nulls, i) {
                    count += 1;
                    if best.is_none_or(|b| x.cmp(&b) == want) {
                        best = Some(x);
                    }
                }
            }
            Some(minmax_accumulator(func, count, best.map(Value::Int)))
        }
        (ColumnData::Float(xs), AggregateFn::Min | AggregateFn::Max) => {
            let mut count = 0u64;
            let mut best: Option<f64> = None;
            let want = if func == AggregateFn::Min {
                Ordering::Less
            } else {
                Ordering::Greater
            };
            for (i, &x) in xs.iter().enumerate() {
                if bit(sel, i) && !bit(&cc.nulls, i) {
                    count += 1;
                    // total_cmp matches the row path's Value order (NaN
                    // and -0.0 included).
                    if best.is_none_or(|b| x.total_cmp(&b) == want) {
                        best = Some(x);
                    }
                }
            }
            Some(minmax_accumulator(func, count, best.map(Value::Float)))
        }
        (ColumnData::Dict(ds), AggregateFn::Min | AggregateFn::Max) => {
            let mut count = 0u64;
            let mut best: Option<IStr> = None;
            let want = if func == AggregateFn::Min {
                Ordering::Less
            } else {
                Ordering::Greater
            };
            for (i, &id) in ds.iter().enumerate() {
                if bit(sel, i) && !bit(&cc.nulls, i) {
                    count += 1;
                    match &best {
                        Some(b) if b.id() == id => {}
                        _ => {
                            let s = IStr::from_id(id)?;
                            if best
                                .as_ref()
                                .is_none_or(|b| s.as_str().cmp(b.as_str()) == want)
                            {
                                best = Some(s);
                            }
                        }
                    }
                }
            }
            Some(minmax_accumulator(func, count, best.map(Value::Text)))
        }
        _ => None,
    }
}

fn minmax_accumulator(func: AggregateFn, count: u64, best: Option<Value>) -> Accumulator {
    let (min, max) = if func == AggregateFn::Min {
        (best, None)
    } else {
        (None, best)
    };
    Accumulator::from_parts(func, count, 0, true, 0.0, min, max, 0.0, 0.0)
}

// ---------------- chunk dispatch ----------------

/// Split `0..n_chunks` into at most `max_parts` contiguous runs.
fn chunk_runs(n_chunks: usize, max_parts: usize) -> Vec<Range<usize>> {
    let parts = max_parts.clamp(1, n_chunks);
    let per = n_chunks.div_ceil(parts);
    (0..parts)
        .map(|p| (p * per).min(n_chunks)..((p + 1) * per).min(n_chunks))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Execute a compiled plan over a table. Returns `Ok(None)` when a chunk
/// exposed unsupported column data — the caller must fall back to row
/// execution. Chunk partials merge in ascending chunk order regardless
/// of worker count, so results are deterministic under any
/// `PERFDMF_THREADS` setting.
pub(crate) fn execute_columnar(
    table: &Table,
    plan: &ColumnarPlan,
) -> Result<Option<(Vec<Accumulator>, ColScanStats)>> {
    let n_chunks = table.chunk_count();
    let mut accs: Vec<Accumulator> = plan
        .aggs
        .iter()
        .map(|a| Accumulator::new(a.func, false))
        .collect();
    let mut stats = ColScanStats {
        chunks: n_chunks,
        ..ColScanStats::default()
    };
    if n_chunks == 0 {
        return Ok(Some((accs, stats)));
    }
    let runs = match pool::partitions(table.slab_len()) {
        Some(parts) => chunk_runs(n_chunks, parts.len()),
        None => chunk_runs(n_chunks, 1),
    };
    stats.partitions = if runs.len() > 1 { runs.len() } else { 0 };

    type RunOut = Option<(Vec<Vec<Accumulator>>, u64, u64)>;
    let runs_ref = &runs;
    let results: Vec<RunOut> = pool::try_run(runs.len(), |pi| -> Result<RunOut> {
        let mut partials = Vec::new();
        let mut hits = 0u64;
        let mut misses = 0u64;
        for ci in runs_ref[pi].clone() {
            let (chunk, hit) = table.chunk(ci);
            let Some(chunk) = chunk else { continue };
            if hit {
                hits += 1;
            } else {
                misses += 1;
            }
            let Some(sel) = selection(&chunk, &plan.preds) else {
                return Ok(None);
            };
            let mut chunk_accs = Vec::with_capacity(plan.aggs.len());
            for spec in &plan.aggs {
                match agg_partial(&chunk, &sel, *spec) {
                    Some(a) => chunk_accs.push(a),
                    None => return Ok(None),
                }
            }
            partials.push(chunk_accs);
        }
        Ok(Some((partials, hits, misses)))
    })?;

    for run in results {
        let Some((partials, hits, misses)) = run else {
            return Ok(None);
        };
        stats.cache_hits += hits;
        stats.cache_misses += misses;
        for chunk_accs in partials {
            for (dst, src) in accs.iter_mut().zip(&chunk_accs) {
                dst.merge(src)?;
            }
        }
    }
    Ok(Some((accs, stats)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::table::Row;

    fn schema() -> TableSchema {
        TableSchema::new(
            "m",
            vec![
                ColumnDef::new("a", DataType::Integer),
                ColumnDef::new("x", DataType::Double),
                ColumnDef::new("s", DataType::Text),
                ColumnDef::new("b", DataType::Boolean),
            ],
        )
        .unwrap()
    }

    fn rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                vec![
                    if i % 11 == 5 {
                        Value::Null
                    } else {
                        Value::Int(i as i64)
                    },
                    Value::Float(i as f64 * 0.25),
                    Value::from(["alpha", "beta", "gamma"][i % 3]),
                    Value::Bool(i % 2 == 0),
                ]
            })
            .collect()
    }

    fn table_with(n: usize) -> Table {
        let mut t = Table::new(schema());
        for r in rows(n) {
            t.insert(r).unwrap();
        }
        t
    }

    fn layout1(schema: &TableSchema) -> Layout {
        Layout::single(
            schema.name.clone(),
            schema.columns.iter().map(|c| c.name.clone()).collect(),
        )
    }

    fn agg(func: AggregateFn, col: Option<&str>) -> Expr {
        Expr::Aggregate {
            func,
            arg: col.map(|c| {
                Box::new(Expr::Column {
                    table: None,
                    column: c.to_string(),
                })
            }),
            distinct: false,
        }
    }

    /// Run `exprs` through both the serial accumulator and the columnar
    /// kernels and compare.
    fn columnar_matches_serial(t: &Table, exprs: &[Expr], where_clause: Option<&Expr>) {
        let sch = &t.schema;
        let l1 = layout1(sch);
        let refs: Vec<&Expr> = exprs.iter().collect();
        let plan = plan_columnar(sch, &sch.name, &l1, &refs, where_clause, &[])
            .expect("plan should compile");
        let (cols, stats) = execute_columnar(t, &plan).unwrap().expect("no fallback");
        assert_eq!(stats.chunks, t.chunk_count());

        // Serial reference over the same rows.
        let env_rows: Vec<&Row> = t.iter().map(|(_, r)| r).collect();
        let mut serial: Vec<Accumulator> = exprs
            .iter()
            .map(|e| match e {
                Expr::Aggregate { func, distinct, .. } => Accumulator::new(*func, *distinct),
                _ => unreachable!(),
            })
            .collect();
        for row in env_rows {
            if let Some(pred) = where_clause {
                let env = super::super::eval::Env::new(&l1, row, &[]);
                if !super::super::eval::eval_condition(pred, &env).unwrap() {
                    continue;
                }
            }
            for (acc, e) in serial.iter_mut().zip(exprs) {
                let Expr::Aggregate { arg, .. } = e else {
                    unreachable!()
                };
                match arg {
                    None => acc.update(None).unwrap(),
                    Some(a) => {
                        let env = super::super::eval::Env::new(&l1, row, &[]);
                        let v = super::super::eval::eval(a, &env).unwrap();
                        acc.update(Some(&v)).unwrap();
                    }
                }
            }
        }
        for (i, (c, s)) in cols.iter().zip(&serial).enumerate() {
            match (c.finish(), s.finish()) {
                (Value::Float(a), Value::Float(b)) => {
                    let tol = 1e-9 * b.abs().max(1.0);
                    assert!((a - b).abs() <= tol, "agg {i}: {a} vs {b}");
                }
                (a, b) => assert_eq!(a, b, "agg {i}"),
            }
        }
    }

    #[test]
    fn kernels_match_serial_accumulators() {
        let t = table_with(10_000); // spans 3 chunks
        let exprs = vec![
            agg(AggregateFn::Count, None),
            agg(AggregateFn::Count, Some("a")),
            agg(AggregateFn::Sum, Some("a")),
            agg(AggregateFn::Avg, Some("x")),
            agg(AggregateFn::StdDev, Some("x")),
            agg(AggregateFn::Min, Some("a")),
            agg(AggregateFn::Max, Some("x")),
            agg(AggregateFn::Min, Some("s")),
            agg(AggregateFn::Max, Some("s")),
        ];
        columnar_matches_serial(&t, &exprs, None);
    }

    #[test]
    fn predicates_match_row_filtering() {
        let t = table_with(6_000);
        let col = |c: &str| Expr::Column {
            table: None,
            column: c.to_string(),
        };
        let preds = vec![
            // a > 100 AND x <= 700.5
            Expr::Binary {
                op: BinaryOp::And,
                left: Box::new(Expr::Binary {
                    op: BinaryOp::Gt,
                    left: Box::new(col("a")),
                    right: Box::new(Expr::Literal(Value::Int(100))),
                }),
                right: Box::new(Expr::Binary {
                    op: BinaryOp::LtEq,
                    left: Box::new(col("x")),
                    right: Box::new(Expr::Literal(Value::Float(700.5))),
                }),
            },
            // s = 'beta'
            Expr::Binary {
                op: BinaryOp::Eq,
                left: Box::new(col("s")),
                right: Box::new(Expr::Literal(Value::from("beta"))),
            },
            // a BETWEEN 50 AND 2000
            Expr::Between {
                operand: Box::new(col("a")),
                low: Box::new(Expr::Literal(Value::Int(50))),
                high: Box::new(Expr::Literal(Value::Int(2000))),
                negated: false,
            },
            // a IS NULL
            Expr::IsNull {
                operand: Box::new(col("a")),
                negated: false,
            },
            // a IN (7, 8, 9.0, NULL)
            Expr::InList {
                operand: Box::new(col("a")),
                list: vec![
                    Expr::Literal(Value::Int(7)),
                    Expr::Literal(Value::Int(8)),
                    Expr::Literal(Value::Float(9.0)),
                    Expr::Literal(Value::Null),
                ],
                negated: false,
            },
            // s NOT IN ('alpha')
            Expr::InList {
                operand: Box::new(col("s")),
                list: vec![Expr::Literal(Value::from("alpha"))],
                negated: true,
            },
            // b = TRUE
            Expr::Binary {
                op: BinaryOp::Eq,
                left: Box::new(col("b")),
                right: Box::new(Expr::Literal(Value::Bool(true))),
            },
        ];
        let exprs = vec![
            agg(AggregateFn::Count, None),
            agg(AggregateFn::Sum, Some("a")),
            agg(AggregateFn::Avg, Some("x")),
        ];
        for p in &preds {
            columnar_matches_serial(&t, &exprs, Some(p));
        }
    }

    #[test]
    fn strict_compilation_declines_divergent_shapes() {
        let sch = schema();
        let l1 = layout1(&sch);
        let sum_bool = agg(AggregateFn::Sum, Some("b"));
        let refs = vec![&sum_bool];
        assert!(
            plan_columnar(&sch, &sch.name, &l1, &refs, None, &[]).is_none(),
            "SUM over a boolean column must decline"
        );
        let count = agg(AggregateFn::Count, None);
        let refs = vec![&count];
        // Cross-type comparison: int column vs text constant.
        let pred = Expr::Binary {
            op: BinaryOp::Eq,
            left: Box::new(Expr::Column {
                table: None,
                column: "a".into(),
            }),
            right: Box::new(Expr::Literal(Value::from("nope"))),
        };
        assert!(plan_columnar(&sch, &sch.name, &l1, &refs, Some(&pred), &[]).is_none());
        // Ordered text comparison declines too.
        let pred = Expr::Binary {
            op: BinaryOp::Lt,
            left: Box::new(Expr::Column {
                table: None,
                column: "s".into(),
            }),
            right: Box::new(Expr::Literal(Value::from("m"))),
        };
        assert!(plan_columnar(&sch, &sch.name, &l1, &refs, Some(&pred), &[]).is_none());
    }

    #[test]
    fn merge_order_is_chunk_order_for_any_partitioning() {
        let t = table_with(20_000); // 5 chunks
        let exprs = [
            agg(AggregateFn::StdDev, Some("x")),
            agg(AggregateFn::Sum, Some("a")),
        ];
        let sch = &t.schema;
        let l1 = layout1(sch);
        let refs: Vec<&Expr> = exprs.iter().collect();
        let plan = plan_columnar(sch, &sch.name, &l1, &refs, None, &[]).unwrap();
        let serial_pool = pool::override_for_thread(1, usize::MAX);
        let (one, _) = execute_columnar(&t, &plan).unwrap().unwrap();
        drop(serial_pool);
        let wide_pool = pool::override_for_thread(4, 1);
        let (four, _) = execute_columnar(&t, &plan).unwrap().unwrap();
        drop(wide_pool);
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.finish(), b.finish(), "bit-identical across worker counts");
        }
    }

    #[test]
    fn mode_override_round_trips() {
        // The base mode depends on the PERFDMF_COLUMNAR environment (CI
        // legs set it), so only assert the override stack semantics.
        let base = columnar_mode();
        {
            let _g = override_for_thread(ColumnarMode::Force);
            assert_eq!(columnar_mode(), ColumnarMode::Force);
            {
                let _g2 = override_for_thread(ColumnarMode::Off);
                assert_eq!(columnar_mode(), ColumnarMode::Off);
            }
            assert_eq!(columnar_mode(), ColumnarMode::Force);
        }
        assert_eq!(columnar_mode(), base);
    }
}
