/root/repo/target/debug/deps/sql_advanced-0f5f109550cad588.d: crates/db/tests/sql_advanced.rs

/root/repo/target/debug/deps/sql_advanced-0f5f109550cad588: crates/db/tests/sql_advanced.rs

crates/db/tests/sql_advanced.rs:
