//! Quickstart: the PerfDMF happy path in one file.
//!
//! 1. A synthetic application run writes TAU `profile.n.c.t` files.
//! 2. The importer parses them (format autodetected).
//! 3. A `DatabaseSession` stores the trial in the relational schema.
//! 4. The trial is browsed, queried with SQL aggregates, and a derived
//!    metric is appended.
//!
//! Run with: `cargo run --example quickstart`

use perfdmf::core::{append_derived_metric, DatabaseSession};
use perfdmf::db::Connection;
use perfdmf::import::load_path;
use perfdmf::workload::{write_tau_directory, Evh1Model};

fn main() {
    // --- 1. produce tool output files (stand-in for a real TAU run) ---
    let dir = std::env::temp_dir().join(format!("perfdmf_quickstart_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let run = Evh1Model::default_mix(42).generate(8);
    write_tau_directory(&run, &dir).expect("write TAU profiles");
    println!("wrote TAU profiles for 8 ranks to {}", dir.display());

    // --- 2. import (autodetected) ---
    let profile = load_path(&dir).expect("import TAU directory");
    println!(
        "imported trial: {} events, {} threads, {} data points",
        profile.events().len(),
        profile.threads().len(),
        profile.data_point_count()
    );

    // --- 3. store in the performance database ---
    let conn = Connection::open_in_memory();
    let mut session = DatabaseSession::new(conn.clone()).expect("create PerfDMF schema");
    let trial_id = session
        .store_profile("evh1", "quickstart", &profile)
        .expect("store trial");
    println!("stored as trial {trial_id}");

    // --- 4a. browse the hierarchy ---
    session.set_trial(trial_id);
    println!("\napplications in the archive:");
    for app in session.application_list().expect("list") {
        println!("  [{}] {}", app.id.unwrap_or(-1), app.name);
    }
    println!(
        "metrics of trial {trial_id}: {:?}",
        session.metric_list().unwrap()
    );

    // --- 4b. SQL aggregates across threads (paper §5.2) ---
    println!("\ntop 5 events by mean exclusive time (SQL aggregates):");
    let mut aggs = session
        .event_aggregates("GET_TIME_OF_DAY")
        .expect("aggregates");
    aggs.sort_by(|a, b| {
        b.mean_exclusive
            .unwrap_or(0.0)
            .total_cmp(&a.mean_exclusive.unwrap_or(0.0))
    });
    for a in aggs.iter().take(5) {
        println!(
            "  {:<24} mean={:8.3}s  min={:8.3}s  max={:8.3}s  stddev={:6.4}",
            a.event_name,
            a.mean_exclusive.unwrap_or(0.0),
            a.min_exclusive.unwrap_or(0.0),
            a.max_exclusive.unwrap_or(0.0),
            a.stddev_exclusive.unwrap_or(0.0),
        );
    }

    // --- 4c. derived metric appended to the stored trial ---
    append_derived_metric(&conn, trial_id, "TIME_MS", "GET_TIME_OF_DAY * 1000").expect("derive");
    println!(
        "\nderived metric added; trial now has metrics {:?}",
        session.metric_list().unwrap()
    );

    // --- 4d. raw SQL is also available (the JDBC-style interface) ---
    let rs = conn
        .query(
            "SELECT COUNT(*) AS rows FROM interval_location_profile",
            &[],
        )
        .expect("sql");
    println!("interval_location_profile rows: {}", rs.scalar().unwrap());

    let _ = std::fs::remove_dir_all(&dir);
}
