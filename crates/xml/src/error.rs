//! Error type shared by the XML reader, writer, and DOM.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// An XML parsing or writing error.
///
/// Parse errors carry the byte offset in the input where the problem was
/// detected, which callers can convert to line/column if they retained the
/// source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The input ended in the middle of a construct.
    UnexpectedEof {
        /// What the parser was in the middle of reading.
        context: &'static str,
    },
    /// A syntactic error at a known byte offset.
    Syntax {
        /// Human-readable description of what went wrong.
        message: String,
        /// Byte offset in the input.
        offset: usize,
    },
    /// An end tag did not match the innermost open start tag.
    MismatchedTag {
        /// The element that was open.
        expected: String,
        /// The end tag that was found.
        found: String,
        /// Byte offset of the offending end tag.
        offset: usize,
    },
    /// An entity reference could not be resolved.
    UnknownEntity {
        /// The entity name (without `&` and `;`).
        name: String,
        /// Byte offset of the reference.
        offset: usize,
    },
    /// The writer was used incorrectly (e.g. `end` without `begin`).
    WriterMisuse(&'static str),
    /// Formatting into the underlying sink failed.
    Fmt,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while reading {context}")
            }
            Error::Syntax { message, offset } => {
                write!(f, "XML syntax error at byte {offset}: {message}")
            }
            Error::MismatchedTag {
                expected,
                found,
                offset,
            } => write!(
                f,
                "mismatched end tag at byte {offset}: expected </{expected}>, found </{found}>"
            ),
            Error::UnknownEntity { name, offset } => {
                write!(f, "unknown entity &{name}; at byte {offset}")
            }
            Error::WriterMisuse(msg) => write!(f, "XML writer misuse: {msg}"),
            Error::Fmt => write!(f, "formatting error while writing XML"),
        }
    }
}

impl std::error::Error for Error {}

impl From<fmt::Error> for Error {
    fn from(_: fmt::Error) -> Self {
        Error::Fmt
    }
}
