/root/repo/target/debug/deps/perfdmf_explorer-4c6a82f44707e0a9.d: crates/explorer/src/lib.rs crates/explorer/src/client.rs crates/explorer/src/protocol.rs crates/explorer/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libperfdmf_explorer-4c6a82f44707e0a9.rmeta: crates/explorer/src/lib.rs crates/explorer/src/client.rs crates/explorer/src/protocol.rs crates/explorer/src/server.rs Cargo.toml

crates/explorer/src/lib.rs:
crates/explorer/src/client.rs:
crates/explorer/src/protocol.rs:
crates/explorer/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
