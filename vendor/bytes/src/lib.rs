//! Offline shim for the `bytes` crate.
//!
//! Provides the [`Buf`]/[`BufMut`] subset this workspace uses, in
//! little-endian form, implemented for `&[u8]` (reading, consuming the
//! slice as it goes) and `Vec<u8>` (writing by appending).
//! [`Buf::copy_to_bytes`] returns a plain `Vec<u8>` instead of upstream's
//! `Bytes` handle; callers that chain `.to_vec()` keep working via slice
//! deref.

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skip `n` bytes. Panics if fewer than `n` remain.
    fn advance(&mut self, n: usize);

    /// Copy out the next `n` bytes. Panics if fewer than `n` remain.
    fn copy_to_bytes(&mut self, n: usize) -> Vec<u8>;

    /// True while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_to_bytes(1)[0]
    }

    /// Read a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let b = self.copy_to_bytes(4);
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Read a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let b = self.copy_to_bytes(8);
        u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// Read a little-endian i64.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Read a little-endian f64.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_bytes(&mut self, n: usize) -> Vec<u8> {
        assert!(n <= self.len(), "read past end of buffer");
        let (head, tail) = self.split_at(n);
        *self = tail;
        head.to_vec()
    }
}

/// Append-only write sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian i64.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian f64.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_i64_le(-42);
        buf.put_f64_le(2.5);
        buf.put_slice(b"xyz");
        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 2.5);
        assert_eq!(r.copy_to_bytes(3), b"xyz");
        assert_eq!(r.remaining(), 0);
        assert!(!r.has_remaining());
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
        assert_eq!(r.remaining(), 1);
    }
}
