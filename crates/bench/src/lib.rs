//! Shared helpers for the PerfDMF benchmark harness.
//!
//! Each bench target regenerates one experiment from the paper's
//! evaluation (see DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for recorded results).

use perfdmf_core::DatabaseSession;
use perfdmf_db::Connection;
use perfdmf_profile::Profile;

/// True when `PERFDMF_BENCH_QUICK` is set: size sweeps shrink to their
/// smallest point so CI can smoke-test the whole harness in seconds.
pub fn quick() -> bool {
    std::env::var_os("PERFDMF_BENCH_QUICK").is_some()
}

/// The full size sweep, or only its first (smallest) entry in quick mode.
pub fn sizes(full: &[usize]) -> Vec<usize> {
    if quick() {
        full[..1].to_vec()
    } else {
        full.to_vec()
    }
}

/// Store a profile in a fresh in-memory database; returns (connection,
/// trial id).
pub fn store_fresh(profile: &Profile) -> (Connection, i64) {
    let conn = Connection::open_in_memory();
    let mut session = DatabaseSession::new(conn.clone()).expect("schema");
    let trial = session
        .store_profile("bench", "bench", profile)
        .expect("store");
    (conn, trial)
}

/// Deterministic row-major data for clustering benches: `n` rows in `k`
/// well-separated blobs of dimension `d`.
pub fn blob_data(n: usize, d: usize, k: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..k)
        .map(|c| {
            (0..d)
                .map(|j| (c * 37 + j * 11) as f64 % 23.0 * 5.0)
                .collect()
        })
        .collect();
    let mut data = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % k;
        labels.push(c);
        data.push(
            centers[c]
                .iter()
                .map(|&x| x + rng.gen_range(-1.0..1.0))
                .collect(),
        );
    }
    (data, labels)
}
