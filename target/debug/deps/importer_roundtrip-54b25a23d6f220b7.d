/root/repo/target/debug/deps/importer_roundtrip-54b25a23d6f220b7.d: tests/importer_roundtrip.rs

/root/repo/target/debug/deps/importer_roundtrip-54b25a23d6f220b7: tests/importer_roundtrip.rs

tests/importer_roundtrip.rs:
