//! HPMtoolkit (IBM) importer.
//!
//! `libhpm` writes one `perfhpm<taskid>.<pid>` text file per task. Each
//! file contains a summary header and one block per instrumented section
//! with wall-clock time, call count, and a list of hardware counters:
//!
//! ```text
//! libhpm (Version 2.5.3) summary
//! Total execution time (wall clock time): 12.345 seconds
//!
//! ########  Resource Usage Statistics  ########
//!
//! Instrumented section: 1 - Label: main  process: 1234
//!  file: sppm.f, lines: 100 <--> 200
//!  Count: 1
//!  Wall Clock Time: 12.1 seconds
//!  Total time in user mode: 11.9 seconds
//!
//!  PM_FPU0_CMPL (FPU 0 instructions)            :       123456789
//!  PM_FPU1_CMPL (FPU 1 instructions)            :        23456789
//! ```
//!
//! Each counter becomes a metric; `Wall Clock Time` becomes the
//! `HPM_WALL_CLOCK` metric. HPM sections have no caller/callee nesting, so
//! inclusive == exclusive.

use crate::error::{ImportError, Result};
use perfdmf_profile::{IntervalData, IntervalEvent, Metric, Profile, ThreadId, UNDEFINED};

const FORMAT: &str = "hpmtoolkit";

/// Parse one HPMtoolkit task file into `profile` as `thread`.
pub fn parse_hpm_text(text: &str, thread: ThreadId, profile: &mut Profile) -> Result<()> {
    if !text.contains("libhpm") {
        return Err(ImportError::format(FORMAT, 1, "missing libhpm header line"));
    }
    profile.add_thread(thread);
    let wall = profile.add_metric(Metric::measured("HPM_WALL_CLOCK"));

    let mut current: Option<(String, f64)> = None; // (label, count)
    let mut sections = 0usize;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if let Some(rest) = line.strip_prefix("Instrumented section:") {
            let label = rest
                .split("Label:")
                .nth(1)
                .map(|s| s.split("process:").next().unwrap_or(s).trim().to_string())
                .ok_or_else(|| {
                    ImportError::format(FORMAT, lineno + 1, "section line missing Label:")
                })?;
            current = Some((label, UNDEFINED));
            sections += 1;
            continue;
        }
        let Some((label, count)) = current.as_mut() else {
            continue;
        };
        if let Some(rest) = line.strip_prefix("Count:") {
            *count = rest
                .trim()
                .parse()
                .map_err(|_| ImportError::format(FORMAT, lineno + 1, "bad Count value"))?;
            continue;
        }
        if let Some(rest) = line.strip_prefix("Wall Clock Time:") {
            let secs: f64 = rest
                .trim()
                .trim_end_matches("seconds")
                .trim()
                .parse()
                .map_err(|_| ImportError::format(FORMAT, lineno + 1, "bad Wall Clock Time"))?;
            let event = profile.add_event(IntervalEvent::new(label.clone(), "HPM"));
            profile.set_interval(
                event,
                thread,
                wall,
                IntervalData::new(secs, secs, *count, UNDEFINED),
            );
            continue;
        }
        // counter line: "PM_XXX (description) : value"
        if line.starts_with("PM_") && line.contains(':') {
            let (head, value) = line.rsplit_once(':').expect("contains ':'");
            let counter = head.split('(').next().unwrap_or(head).trim().to_string();
            let v: f64 = value
                .trim()
                .replace(',', "")
                .parse()
                .map_err(|_| ImportError::format(FORMAT, lineno + 1, "bad counter value"))?;
            let metric = profile.add_metric(Metric::measured(counter));
            let event = profile.add_event(IntervalEvent::new(label.clone(), "HPM"));
            profile.set_interval(
                event,
                thread,
                metric,
                IntervalData::new(v, v, *count, UNDEFINED),
            );
        }
    }
    if sections == 0 {
        return Err(ImportError::format(
            FORMAT,
            0,
            "no instrumented sections found",
        ));
    }
    for m in 0..profile.metrics().len() {
        profile.recompute_derived_fields(perfdmf_profile::MetricId(m));
    }
    Ok(())
}

/// Parse the `<taskid>` out of a `perfhpm<taskid>.<pid>` filename.
pub fn parse_hpm_filename(name: &str) -> Option<u32> {
    let rest = name.strip_prefix("perfhpm")?;
    rest.split('.').next()?.parse().ok()
}

/// Load a directory of `perfhpm*` files (one per task) into one profile.
pub fn load_hpm_directory(dir: &std::path::Path) -> Result<Profile> {
    let mut profile = Profile::new(
        dir.file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default(),
    );
    profile.source_format = "hpmtoolkit".into();
    let mut files: Vec<(u32, std::path::PathBuf)> = std::fs::read_dir(dir)
        .map_err(|e| ImportError::io(dir, e))?
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            parse_hpm_filename(&name).map(|t| (t, e.path()))
        })
        .collect();
    if files.is_empty() {
        return Err(ImportError::NoProfiles(dir.to_path_buf()));
    }
    files.sort();
    profile.add_threads(files.iter().map(|(t, _)| ThreadId::new(*t, 0, 0)));
    for (task, path) in files {
        let text = std::fs::read_to_string(&path).map_err(|e| ImportError::io(&path, e))?;
        parse_hpm_text(&text, ThreadId::new(task, 0, 0), &mut profile)?;
    }
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
libhpm (Version 2.5.3) summary
Total execution time (wall clock time): 12.345 seconds

########  Resource Usage Statistics  ########

Instrumented section: 1 - Label: main  process: 1234
 file: sppm.f, lines: 100 <--> 200
 Count: 1
 Wall Clock Time: 12.1 seconds

 PM_FPU0_CMPL (FPU 0 instructions)            :       123456789
 PM_FPU1_CMPL (FPU 1 instructions)            :        23456789

Instrumented section: 2 - Label: sweep  process: 1234
 Count: 48
 Wall Clock Time: 8.4 seconds

 PM_FPU0_CMPL (FPU 0 instructions)            :       100000000
";

    #[test]
    fn parses_sections_and_counters() {
        let mut p = Profile::new("t");
        parse_hpm_text(SAMPLE, ThreadId::ZERO, &mut p).unwrap();
        assert_eq!(p.events().len(), 2);
        assert_eq!(p.metrics().len(), 3); // wall + 2 counters
        let wall = p.find_metric("HPM_WALL_CLOCK").unwrap();
        let main = p.find_event("main").unwrap();
        let d = p.interval(main, ThreadId::ZERO, wall).unwrap();
        assert_eq!(d.inclusive(), Some(12.1));
        assert_eq!(d.calls(), Some(1.0));
        let fpu0 = p.find_metric("PM_FPU0_CMPL").unwrap();
        let sweep = p.find_event("sweep").unwrap();
        let d = p.interval(sweep, ThreadId::ZERO, fpu0).unwrap();
        assert_eq!(d.inclusive(), Some(1e8));
        assert_eq!(d.calls(), Some(48.0));
        // section 2 has no FPU1 counter
        let fpu1 = p.find_metric("PM_FPU1_CMPL").unwrap();
        assert!(p.interval(sweep, ThreadId::ZERO, fpu1).is_none());
    }

    #[test]
    fn filename_parsing() {
        assert_eq!(parse_hpm_filename("perfhpm0017.4321"), Some(17));
        assert_eq!(parse_hpm_filename("perfhpm3.99"), Some(3));
        assert_eq!(parse_hpm_filename("other3.99"), None);
    }

    #[test]
    fn rejects_non_hpm() {
        let mut p = Profile::new("t");
        assert!(parse_hpm_text("not hpm output", ThreadId::ZERO, &mut p).is_err());
        assert!(parse_hpm_text("libhpm summary, but no sections", ThreadId::ZERO, &mut p).is_err());
    }

    #[test]
    fn directory_load_multiple_tasks() {
        let dir = std::env::temp_dir().join(format!(
            "pdmf_hpm_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("perfhpm0000.100"), SAMPLE).unwrap();
        std::fs::write(dir.join("perfhpm0001.101"), SAMPLE).unwrap();
        let p = load_hpm_directory(&dir).unwrap();
        assert_eq!(p.threads().len(), 2);
        assert_eq!(p.source_format, "hpmtoolkit");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
