//! # perfdmf-import
//!
//! Profile input/output — the translator component of PerfDMF (paper
//! §3.1): "PerfDMF is designed to parse parallel profile data from
//! multiple sources ... through the use of embedded translators ...
//! targeting a common, extensible parallel profile representation."
//!
//! Importers for the six formats the paper supports, plus the sPPM custom
//! parser it mentions and the common XML exchange format it exports:
//!
//! | Format | Entry point | Input shape |
//! |---|---|---|
//! | TAU profiles | [`tau::load_tau_directory`] | directory of `profile.n.c.t` (or `MULTI__*` subdirs) |
//! | gprof | [`gprof::load_gprof_file`] | `gprof` text report |
//! | mpiP | [`mpip::load_mpip_file`] | `*.mpip` text report |
//! | dynaprof | [`dynaprof::load_dynaprof_file`] | probe text report |
//! | HPMtoolkit | [`hpm::load_hpm_directory`] | `perfhpm<task>.<pid>` files |
//! | PerfSuite | [`psrun::load_psrun_file`] | `psrun` XML |
//! | sPPM custom | [`sppm::load_sppm_file`] | self-instrumented timing table |
//! | PerfDMF XML | [`xml_format::import_xml`] / [`xml_format::export_xml`] | exchange format |
//!
//! [`cube::export_cube`] / [`cube::import_cube`] implement the paper's
//! planned CUBE translation (§7) for the Expert tool.
//!
//! [`load_path`] autodetects the format; [`load_directory_filtered`]
//! scans directories with the prefix/suffix filters the paper describes.

pub mod cube;
pub mod dynaprof;
mod error;
pub mod gprof;
pub mod hpm;
pub mod mpip;
pub mod psrun;
pub mod source;
pub mod sppm;
pub mod tau;
pub mod xml_format;

pub use cube::{export_cube, import_cube};
pub use error::{ImportError, Result};
pub use source::{detect_format, load_directory_filtered, load_path, FileFilter, ProfileFormat};
pub use xml_format::{export_xml, import_xml};
