//! The PerfExplorer client handle.

use crate::protocol::{Request, Response};
use crate::server::{AnalysisServer, Job};
use crossbeam::channel::{bounded, RecvTimeoutError, Sender, TrySendError};
use perfdmf_telemetry as telemetry;
use std::time::{Duration, Instant};

/// How a client retries requests that fail transiently.
///
/// Retries apply to [`Response::Overloaded`] (the queue was full) and to
/// [`Response::Failed`] with `retryable: true` (a deadline expired in
/// the queue, or the transport dropped mid-request). Deterministic
/// failures — panics, analysis errors — are returned immediately. Delay
/// doubles after each attempt, capped at `max_delay`, plus a jitter term
/// of up to `jitter` so simultaneous retriers don't re-collide in
/// lockstep.
///
/// The jitter is **seed-deterministic**: it is a pure function of
/// `(seed, key, attempt)`, where the seed comes from the
/// `PERFDMF_RETRY_SEED` environment variable (same convention as
/// `PERFDMF_POOL_SEED`) and `key` identifies the logical request (the
/// network client passes its idempotency key). A chaos-test failure
/// therefore replays with exactly the same backoff schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = no retries).
    pub max_retries: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Upper bound on the per-attempt exponential delay (jitter rides
    /// on top).
    pub max_delay: Duration,
    /// Upper bound on the additive per-attempt jitter.
    pub jitter: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            jitter: Duration::from_millis(10),
        }
    }
}

/// Default jitter seed; override with `PERFDMF_RETRY_SEED`.
const DEFAULT_RETRY_SEED: u64 = 0x5045_5246_444D_4601;

/// The process-wide jitter seed (`PERFDMF_RETRY_SEED`, read once).
pub(crate) fn retry_seed() -> u64 {
    static SEED: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *SEED.get_or_init(|| {
        std::env::var("PERFDMF_RETRY_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_RETRY_SEED)
    })
}

/// SplitMix64 — the same tiny deterministic generator the fault and
/// pool seams use.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// No retries at all: every failure is returned to the caller.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter: Duration::ZERO,
        }
    }

    /// Backoff before retry attempt `n` (0-based) of the request
    /// identified by `key`: `base_delay` doubling per attempt and
    /// saturating at `max_delay`, plus a deterministic jitter in
    /// `[0, jitter]` drawn from `(seed, key, attempt)`.
    pub fn delay(&self, attempt: u32, key: u64) -> Duration {
        self.delay_seeded(attempt, key, retry_seed())
    }

    /// [`RetryPolicy::delay`] with an explicit seed (tests).
    pub(crate) fn delay_seeded(&self, attempt: u32, key: u64, seed: u64) -> Duration {
        let factor = 1u32 << attempt.min(16);
        let exp = (self.base_delay * factor).min(self.max_delay);
        let jitter_ns = self.jitter.as_nanos().min(u64::MAX as u128) as u64;
        if jitter_ns == 0 {
            return exp;
        }
        let draw = splitmix64(seed ^ key.rotate_left(17) ^ (u64::from(attempt) << 1));
        exp + Duration::from_nanos(draw % (jitter_ns + 1))
    }
}

/// A client connected to an [`AnalysisServer`].
///
/// Cheap to clone; requests from multiple clients are served concurrently
/// by the server's worker pool.
#[derive(Clone)]
pub struct ExplorerClient {
    tx: Sender<Job>,
    /// Monotonic ticket shared by all clones: each retried request gets
    /// a distinct jitter key, so backoff schedules are deterministic per
    /// (seed, submission order) without coupling unrelated requests.
    retry_ticket: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl ExplorerClient {
    /// Connect to a server.
    pub fn connect(server: &AnalysisServer) -> ExplorerClient {
        ExplorerClient {
            tx: server.sender(),
            retry_ticket: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }

    /// Send a request and block for the response.
    ///
    /// The submission never blocks: if the server's bounded queue is
    /// full the request is shed and [`Response::Overloaded`] returned.
    /// The wait for the reply is unbounded, but every accepted request
    /// is answered — workers reply even when the handler panics — so
    /// this cannot hang on a live server.
    pub fn request(&self, request: Request) -> Response {
        match self.submit(request, None) {
            Ok(rrx) => rrx
                .recv()
                .unwrap_or_else(|_| Response::Error("analysis server dropped the request".into())),
            Err(shed) => shed,
        }
    }

    /// Send a request with a deadline covering both queue time and the
    /// wait for the reply.
    ///
    /// Workers discard requests whose deadline passed while queued
    /// (returning a retryable [`Response::Failed`]); if no reply arrives
    /// by the deadline the client stops waiting and returns a retryable
    /// [`Response::Failed`] itself, so the call returns within roughly
    /// `deadline` even if the server stalls.
    pub fn request_with_deadline(&self, request: Request, deadline: Duration) -> Response {
        match self.submit(request, Some(Instant::now() + deadline)) {
            Ok(rrx) => match rrx.recv_timeout(deadline) {
                Ok(response) => response,
                Err(RecvTimeoutError::Timeout) => {
                    telemetry::add("explorer.timeouts", 1);
                    telemetry::emit(
                        telemetry::Event::new(telemetry::Severity::Warn, "explorer_timeout")
                            .field("where", "client")
                            .field("deadline_ns", deadline.as_nanos() as u64),
                    );
                    let trace_tag = telemetry::trace::current_trace_id()
                        .map(|t| format!(" [trace {}]", t.as_hex()))
                        .unwrap_or_default();
                    Response::Failed {
                        reason: format!("no response within {deadline:?}{trace_tag}"),
                        retryable: true,
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    Response::Error("analysis server dropped the request".into())
                }
            },
            Err(shed) => shed,
        }
    }

    /// Send a request, retrying transient failures (shed and queue
    /// timeouts) with exponential backoff per `policy`. `deadline`, if
    /// given, applies to each attempt separately.
    pub fn request_with_retry(
        &self,
        request: Request,
        deadline: Option<Duration>,
        policy: RetryPolicy,
    ) -> Response {
        let key = self
            .retry_ticket
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut attempt = 0u32;
        loop {
            let response = match deadline {
                Some(d) => self.request_with_deadline(request.clone(), d),
                None => self.request(request.clone()),
            };
            let transient = matches!(
                response,
                Response::Overloaded
                    | Response::Failed {
                        retryable: true,
                        ..
                    }
            );
            if !transient || attempt >= policy.max_retries {
                return response;
            }
            telemetry::add("explorer.retries", 1);
            std::thread::sleep(policy.delay(attempt, key));
            attempt += 1;
        }
    }

    /// Enqueue a request without blocking. Returns the reply channel on
    /// success, or the shed/error response the caller should return.
    fn submit(
        &self,
        request: Request,
        deadline: Option<Instant>,
    ) -> Result<crossbeam::channel::Receiver<Response>, Response> {
        self.submit_with_notify(request, deadline, None)
    }

    /// Enqueue a request without blocking, registering an optional waker
    /// that the worker invokes right after the reply is sent.
    ///
    /// This is the seam event-driven callers (the `perfdmf-server`
    /// session executor) build on: submit here, park the connection on
    /// readiness, and let the waker poke the event loop when the reply
    /// channel becomes ready — no thread blocks on `recv`. The trace
    /// context and request meter active on the *calling* thread are
    /// captured now, exactly as for the blocking paths.
    pub fn submit_with_notify(
        &self,
        request: Request,
        deadline: Option<Instant>,
        notify: Option<std::sync::Arc<dyn Fn() + Send + Sync>>,
    ) -> Result<crossbeam::channel::Receiver<Response>, Response> {
        let (rtx, rrx) = bounded(1);
        match self.tx.try_send(Job {
            request,
            reply: rtx,
            submitted: Instant::now(),
            deadline,
            trace: telemetry::trace::current_context(),
            meter: telemetry::current_meter(),
            notify,
        }) {
            Ok(()) => Ok(rrx),
            Err(TrySendError::Full(_)) => {
                telemetry::add("explorer.sheds", 1);
                telemetry::emit(telemetry::Event::new(
                    telemetry::Severity::Warn,
                    "explorer_shed",
                ));
                Err(Response::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => {
                Err(Response::Error("analysis server is down".into()))
            }
        }
    }

    /// Convenience: cluster a trial's threads by their per-event time
    /// breakdown of one metric, with automatic k selection.
    pub fn cluster(&self, trial_id: i64, metric: &str, max_k: usize) -> Response {
        self.request(Request::ClusterTrial {
            trial_id,
            features: crate::protocol::FeatureSpace::EventsOfMetric(metric.to_string()),
            k: None,
            max_k,
            pca_components: 0,
            method: crate::protocol::ClusterMethod::KMeans,
        })
    }

    /// Convenience: cluster a trial's threads by their hardware-counter
    /// vectors at one event (the Ahn & Vetter sPPM feature space).
    pub fn cluster_counters(&self, trial_id: i64, event: &str, max_k: usize) -> Response {
        self.request(Request::ClusterTrial {
            trial_id,
            features: crate::protocol::FeatureSpace::MetricsOfEvent(event.to_string()),
            k: None,
            max_k,
            pca_components: 0,
            method: crate::protocol::ClusterMethod::KMeans,
        })
    }

    /// Convenience: hierarchical (dendrogram) clustering of counter
    /// vectors, cut at the silhouette-selected k.
    pub fn cluster_hierarchical(&self, trial_id: i64, event: &str, max_k: usize) -> Response {
        self.request(Request::ClusterTrial {
            trial_id,
            features: crate::protocol::FeatureSpace::MetricsOfEvent(event.to_string()),
            k: None,
            max_k,
            pca_components: 0,
            method: crate::protocol::ClusterMethod::Hierarchical,
        })
    }

    /// Convenience: correlation matrix of a trial's metrics at one event.
    pub fn correlate(&self, trial_id: i64, event: &str) -> Response {
        self.request(Request::CorrelateMetrics {
            trial_id,
            event: event.to_string(),
        })
    }

    /// Convenience: browse a stored result.
    pub fn fetch(&self, settings_id: i64) -> Response {
        self.request(Request::FetchResult { settings_id })
    }

    /// Convenience: server-side speedup study over an experiment's trials.
    pub fn speedup(&self, experiment_id: i64, metric: &str) -> Response {
        self.request(Request::SpeedupStudy {
            experiment_id,
            metric: metric.to_string(),
        })
    }

    /// Convenience: scan an experiment's trial history for regressions.
    pub fn regressions(&self, experiment_id: i64, threshold: f64) -> Response {
        self.request(Request::RegressionScan {
            experiment_id,
            threshold,
        })
    }

    /// Convenience: watchdog-check one trial against its experiment's
    /// archive baseline (all other trials, Chan–Welford combined).
    pub fn watchdog(
        &self,
        experiment_id: i64,
        trial_id: i64,
        metric: &str,
        min_ratio: f64,
    ) -> Response {
        self.request(Request::WatchdogCheck {
            experiment_id,
            trial_id,
            metric: metric.to_string(),
            min_ratio,
        })
    }
}
