//! The network client: `ExplorerClient` semantics over a TCP
//! connection, with retries that survive torn connections.
//!
//! [`NetClient`] mirrors the in-process [`ExplorerClient`] API —
//! `request(Request) -> Response` — but adds what a network hop
//! requires:
//!
//! * **reconnect-and-retry** — transport failures (reset, torn frame,
//!   refused reply) tear down the connection and retry on a fresh one,
//!   paced by the explorer's [`RetryPolicy`] with its seed-deterministic
//!   backoff jitter;
//! * **idempotency keys** — every *effectful* request carries a key
//!   drawn from the client's server-assigned key space (granted in
//!   `HelloAck`, so clients in different processes can never collide);
//!   the server records the response under it, so a retry whose
//!   predecessor *did* execute (the ack was lost, not the write)
//!   replays the recorded response instead of applying the write twice.
//!   Pure reads and pings send no key, keeping the server's bounded
//!   replay cache for the writes that need it;
//! * **deadline propagation** — an optional per-request deadline covers
//!   *all* attempts; each `Call` frame carries the milliseconds still
//!   remaining at send time, and the server enforces that budget across
//!   queue wait and execution.
//!
//! Transport failures that outlive the retry budget surface as
//! [`Response::Failed`] with `retryable: true` — the caller sees the
//! same vocabulary the in-process client uses, never an `io::Error`.

use crate::server::DEFAULT_PIPELINE_WINDOW;
use crate::stream::{write_all, NetFaultPlan, RealStream, Stream};
use crate::wire::{parse_header, verify_body, Message, HEADER_LEN, PROTOCOL_VERSION};
use perfdmf_explorer::{Request, Response, RetryPolicy};
use perfdmf_telemetry as telemetry;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// How long a single connect attempt may take.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// Read-poll granularity while waiting for a reply.
const READ_POLL: Duration = Duration::from_millis(25);

/// How long to wait for a reply when the request has no deadline.
const DEFAULT_REPLY_WAIT: Duration = Duration::from_secs(10);

/// A TCP client for [`crate::PerfdmfServer`].
pub struct NetClient {
    addr: SocketAddr,
    tenant: String,
    /// Session token presented in the handshake. Defaults to
    /// `PERFDMF_SERVER_TOKEN` so a client process pointed at a
    /// token-guarded server authenticates without code changes.
    token: Option<String>,
    policy: RetryPolicy,
    deadline: Option<Duration>,
    /// Max calls left unanswered on the wire by [`NetClient::pipeline`].
    window: usize,
    fault: Option<NetFaultPlan>,
    stream: Option<Box<dyn Stream>>,
    /// Server-assigned session id of the current connection (0 = none).
    session: u64,
    next_seq: u64,
    /// Idempotency key space (high 32 bits of every drawn key).
    /// 0 = not yet assigned: the server grants one in the first
    /// `HelloAck`, uniquely across *all* clients of that server —
    /// a process-local counter could hand two clients in different
    /// processes the same space and let one replay the other's cached
    /// responses. [`NetClient::with_key_space`] pins it for tests.
    key_space: u64,
    next_key: u64,
    next_jitter: u64,
    connects: u64,
    /// Server-side resource usage attached to the most recent reply
    /// (`None` before the first reply, or when the server sent none).
    last_usage: Option<telemetry::ResourceUsage>,
}

impl NetClient {
    /// A client for `addr`, tagged with `tenant`. No I/O happens until
    /// the first request (or [`NetClient::ping`]).
    pub fn new(addr: SocketAddr, tenant: impl Into<String>) -> NetClient {
        NetClient {
            addr,
            tenant: tenant.into(),
            token: std::env::var("PERFDMF_SERVER_TOKEN").ok(),
            policy: RetryPolicy::default(),
            deadline: None,
            window: DEFAULT_PIPELINE_WINDOW,
            fault: None,
            stream: None,
            session: 0,
            next_seq: 1,
            key_space: 0,
            next_key: 1,
            next_jitter: 0,
            connects: 0,
            last_usage: None,
        }
    }

    /// Builder: replace the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builder: present `token` in the handshake (overrides the
    /// `PERFDMF_SERVER_TOKEN` environment default; `None` clears it).
    pub fn with_token(mut self, token: Option<String>) -> Self {
        self.token = token;
        self
    }

    /// Builder: cap how many pipelined calls may be outstanding at once
    /// (see [`NetClient::pipeline`]). Keep at or below the server's
    /// window or the excess comes back as typed errors.
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Builder: give every request this overall deadline (covering all
    /// retry attempts, propagated to the server in each frame).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Builder: wrap every connection in a
    /// [`crate::stream::FaultStream`] with this plan (chaos tests). The
    /// plan's seed is decorrelated per reconnect so retries don't replay
    /// the identical tear.
    pub fn with_fault_plan(mut self, plan: NetFaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Builder: pin the idempotency-key space instead of adopting the
    /// server-assigned one (chaos tests want keys that are a pure
    /// function of the scenario seed). Pinned spaces bypass the
    /// server's uniqueness guarantee — the caller owns non-collision.
    pub fn with_key_space(mut self, space: u64) -> Self {
        self.key_space = space;
        self
    }

    /// The session id granted by the server's `HelloAck` (0 before the
    /// first successful handshake).
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The idempotency-key space in use: pinned via
    /// [`NetClient::with_key_space`], else granted by the server's
    /// first `HelloAck` (0 before then). Stable across reconnects —
    /// keys drawn before a reconnect stay valid for replay.
    pub fn key_space(&self) -> u64 {
        self.key_space
    }

    /// Times this client has (re)connected.
    pub fn connects(&self) -> u64 {
        self.connects
    }

    /// The server-side [`telemetry::ResourceUsage`] attached to the most
    /// recent reply: what the last request cost the server in rows,
    /// cache traffic, WAL bytes, and queue/execute time. `None` before
    /// the first reply or when the peer predates protocol v3.
    pub fn last_usage(&self) -> Option<telemetry::ResourceUsage> {
        self.last_usage
    }

    /// Draw the next idempotency key: `key_space` in the high 32 bits,
    /// a local counter below. Never zero (zero means "no key"). Only
    /// called once a key space exists — post-handshake or pinned.
    fn draw_key(&mut self) -> u64 {
        let key = (self.key_space << 32) | self.next_key;
        self.next_key += 1;
        key
    }

    /// Liveness probe; `true` when the server answered `Pong`.
    pub fn ping(&mut self) -> bool {
        matches!(self.request(Request::Ping), Response::Pong)
    }

    /// Send `request`, retrying transport failures and retryable
    /// rejections per the policy. Effectful requests (see
    /// [`Request::is_effectful`]) automatically draw an idempotency key
    /// from the server-assigned key space on their first attempt; pure
    /// reads and pings carry none. Use [`NetClient::request_keyed`] to
    /// control the key explicitly.
    pub fn request(&mut self, request: Request) -> Response {
        self.run_request(request, None)
    }

    /// Send `request` under an explicit idempotency key. Reusing a key
    /// re-delivers the recorded response of the first successful
    /// execution instead of executing again.
    pub fn request_keyed(&mut self, request: Request, key: u64) -> Response {
        self.run_request(request, Some(key))
    }

    /// Send `requests` pipelined on one connection: up to the client
    /// window are left outstanding at once, replies are matched to
    /// requests by seq (the server may answer them out of order), and
    /// the result lines up index-for-index with the input.
    ///
    /// A transport failure tears the connection down and resends only
    /// the *unanswered* requests on a fresh one, under their original
    /// idempotency keys — so an effectful request whose reply was lost
    /// replays the recorded response instead of executing twice, the
    /// same at-most-once contract as [`NetClient::request`]. Server
    /// verdicts (including window-overflow errors and overload sheds)
    /// are returned as-is, never retried here.
    pub fn pipeline(&mut self, requests: &[Request]) -> Vec<Response> {
        telemetry::add("netclient.pipelines", 1);
        let deadline = self.deadline.map(|d| Instant::now() + d);
        let mut responses: Vec<Option<Response>> = vec![None; requests.len()];
        let mut keys: Vec<Option<u64>> = vec![None; requests.len()];
        for attempt in 0..=self.policy.max_retries {
            if attempt > 0 {
                telemetry::add("netclient.retries", 1);
                self.next_jitter = self.next_jitter.wrapping_add(1);
                let mut pause = self.policy.delay(attempt - 1, self.next_jitter);
                if let Some(deadline) = deadline {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        break;
                    }
                    pause = pause.min(remaining);
                }
                std::thread::sleep(pause);
            }
            match self.pipeline_attempt(requests, &mut keys, &mut responses, deadline) {
                Ok(()) => break,
                Err(e) if e.kind() == std::io::ErrorKind::PermissionDenied => {
                    telemetry::add("netclient.auth_rejections", 1);
                    self.disconnect();
                    let reason = e.to_string();
                    for slot in responses.iter_mut().filter(|s| s.is_none()) {
                        *slot = Some(Response::Error(reason.clone()));
                    }
                    break;
                }
                Err(_) => {
                    telemetry::add("netclient.transport_errors", 1);
                    self.disconnect();
                }
            }
        }
        responses
            .into_iter()
            .map(|r| {
                r.unwrap_or(Response::Failed {
                    reason: "transport: pipelined request unanswered after retries".into(),
                    retryable: true,
                })
            })
            .collect()
    }

    /// One pipelined pass: keep the window full of unanswered requests,
    /// read replies (any order) until none remain. `Err` means the
    /// transport failed mid-flight; answered slots keep their verdicts
    /// and only the rest are retried by [`NetClient::pipeline`].
    fn pipeline_attempt(
        &mut self,
        requests: &[Request],
        keys: &mut [Option<u64>],
        responses: &mut [Option<Response>],
        deadline: Option<Instant>,
    ) -> std::io::Result<()> {
        self.ensure_connected()?;
        let pending: Vec<usize> = (0..requests.len())
            .filter(|&i| responses[i].is_none())
            .collect();
        let mut outstanding: Vec<(u64, usize)> = Vec::new();
        let mut next = 0usize;
        let reply_by = deadline
            .map(|d| d + Duration::from_millis(250))
            .unwrap_or_else(|| Instant::now() + DEFAULT_REPLY_WAIT);
        while next < pending.len() || !outstanding.is_empty() {
            while next < pending.len() && outstanding.len() < self.window {
                let i = pending[next];
                next += 1;
                let key = match keys[i] {
                    Some(k) => k,
                    None if requests[i].is_effectful() => {
                        let k = self.draw_key();
                        keys[i] = Some(k);
                        k
                    }
                    None => 0,
                };
                let deadline_ms = match deadline {
                    Some(d) => {
                        let remaining = d.saturating_duration_since(Instant::now());
                        if remaining.is_zero() {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::TimedOut,
                                "deadline expired before send",
                            ));
                        }
                        remaining.as_millis().min(u128::from(u32::MAX)) as u32
                    }
                    None => 0,
                };
                let seq = self.next_seq;
                self.next_seq += 1;
                let frame = Message::Call {
                    seq,
                    deadline_ms,
                    idempotency: key,
                    trace: None,
                    request: requests[i].clone(),
                }
                .to_frame();
                let stream = self.stream.as_mut().expect("connected");
                write_all(stream.as_mut(), &frame)?;
                outstanding.push((seq, i));
            }
            let stream = self.stream.as_mut().expect("connected");
            match read_message(stream.as_mut(), reply_by)? {
                Some(Message::Reply {
                    seq,
                    usage,
                    response,
                }) => {
                    if let Some(pos) = outstanding.iter().position(|&(s, _)| s == seq) {
                        let (_, i) = outstanding.swap_remove(pos);
                        self.last_usage = usage;
                        responses[i] = Some(response);
                    }
                    // Unknown seq: a stale reply from an abandoned
                    // attempt on this connection; skip it.
                }
                Some(Message::Goodbye { reason }) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::ConnectionAborted,
                        format!("server goodbye: {reason}"),
                    ));
                }
                Some(_) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "unexpected message while awaiting pipelined replies",
                    ));
                }
                None => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "pipelined reply deadline expired",
                    ));
                }
            }
        }
        Ok(())
    }

    /// The retry loop shared by [`NetClient::request`] and
    /// [`NetClient::request_keyed`]. `key` is `None` until the first
    /// attempt resolves it (drawn post-handshake so the space is the
    /// server-assigned one); every retry then reuses the same key.
    fn run_request(&mut self, request: Request, mut key: Option<u64>) -> Response {
        let deadline = self.deadline.map(|d| Instant::now() + d);
        telemetry::add("netclient.requests", 1);
        let started = Instant::now();
        // The client half of the end-to-end trace: when tracing is on
        // and the sampler elects this request (`PERFDMF_TRACE_SAMPLE`),
        // open a `client.request` span covering every attempt and
        // propagate its context in each Call frame, so the server's
        // `server.request` span parents into it across the wire.
        let sampled = telemetry::tracing_enabled() && telemetry::trace::sample_request();
        let _span = sampled.then(|| telemetry::span("client.request"));
        let trace = if sampled {
            telemetry::trace::current_context()
        } else {
            None
        };
        // Backoff jitter seed: the pinned key when there is one, else a
        // per-client nonce — deterministic either way, and independent
        // of the idempotency key, which may not exist yet (or at all,
        // for reads).
        let jitter = key.unwrap_or_else(|| {
            self.next_jitter = self.next_jitter.wrapping_add(1);
            self.next_jitter
        });
        let mut last = Response::Failed {
            reason: "request not attempted".into(),
            retryable: true,
        };
        for attempt in 0..=self.policy.max_retries {
            if attempt > 0 {
                telemetry::add("netclient.retries", 1);
                let mut pause = self.policy.delay(attempt - 1, jitter);
                if let Some(deadline) = deadline {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        break;
                    }
                    pause = pause.min(remaining);
                }
                std::thread::sleep(pause);
            }
            match self.attempt(&request, &mut key, deadline, trace) {
                Ok(response) => {
                    let transient = matches!(
                        response,
                        Response::Overloaded
                            | Response::Failed {
                                retryable: true,
                                ..
                            }
                    );
                    if !transient || attempt == self.policy.max_retries {
                        telemetry::record_duration(
                            "netclient.request_latency_ns",
                            started.elapsed(),
                        );
                        return response;
                    }
                    last = response;
                }
                Err(e) if e.kind() == std::io::ErrorKind::PermissionDenied => {
                    telemetry::add("netclient.auth_rejections", 1);
                    self.disconnect();
                    telemetry::record_duration("netclient.request_latency_ns", started.elapsed());
                    return Response::Error(e.to_string());
                }
                Err(e) => {
                    telemetry::add("netclient.transport_errors", 1);
                    self.disconnect();
                    last = Response::Failed {
                        reason: format!("transport: {e}"),
                        retryable: true,
                    };
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        break;
                    }
                }
            }
        }
        telemetry::record_duration("netclient.request_latency_ns", started.elapsed());
        last
    }

    /// One attempt over the current (or a fresh) connection.
    /// `Err` means the transport failed and the caller should
    /// reconnect; `Ok` is the server's verdict, favorable or not.
    ///
    /// An unresolved `key` is settled here, after the handshake has
    /// granted a key space: effectful requests draw a fresh key (stored
    /// back so retries reuse it), everything else sends 0 (no key).
    fn attempt(
        &mut self,
        request: &Request,
        key: &mut Option<u64>,
        deadline: Option<Instant>,
        trace: Option<telemetry::SpanContext>,
    ) -> std::io::Result<Response> {
        self.ensure_connected()?;
        let key = match *key {
            Some(k) => k,
            None if request.is_effectful() => {
                let k = self.draw_key();
                *key = Some(k);
                k
            }
            None => 0,
        };
        let deadline_ms = match deadline {
            Some(d) => {
                let remaining = d.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Ok(Response::Failed {
                        reason: "deadline expired before send".into(),
                        retryable: false,
                    });
                }
                remaining.as_millis().min(u128::from(u32::MAX)) as u32
            }
            None => 0,
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        let frame = Message::Call {
            seq,
            deadline_ms,
            idempotency: key,
            trace,
            request: request.clone(),
        }
        .to_frame();
        let stream = self.stream.as_mut().expect("connected");
        write_all(stream.as_mut(), &frame)?;
        // Give the server its full deadline plus slack for the reply to
        // cross the wire; without a deadline, wait a bounded default.
        let reply_by = deadline
            .map(|d| d + Duration::from_millis(250))
            .unwrap_or_else(|| Instant::now() + DEFAULT_REPLY_WAIT);
        loop {
            let message = match read_message(stream.as_mut(), reply_by) {
                Ok(Some(message)) => message,
                Ok(None) => {
                    // No reply in time. Drop the connection so a stale
                    // reply can never be matched to a future request.
                    self.disconnect();
                    return Ok(Response::Failed {
                        reason: "reply deadline expired".into(),
                        retryable: true,
                    });
                }
                Err(e) => return Err(e),
            };
            match message {
                Message::Reply {
                    seq: reply_seq,
                    usage,
                    response,
                } => {
                    if reply_seq == seq {
                        self.last_usage = usage;
                        return Ok(response);
                    }
                    // A stale reply from an abandoned attempt on this
                    // connection; skip it and keep reading.
                }
                Message::Goodbye { reason } => {
                    self.disconnect();
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::ConnectionAborted,
                        format!("server goodbye: {reason}"),
                    ));
                }
                _ => {
                    self.disconnect();
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "unexpected message while awaiting reply",
                    ));
                }
            }
        }
    }

    /// Connect and handshake if there is no live connection.
    fn ensure_connected(&mut self) -> std::io::Result<()> {
        if self.stream.is_some() {
            return Ok(());
        }
        let socket = TcpStream::connect_timeout(&self.addr, CONNECT_TIMEOUT)?;
        let mut stream: Box<dyn Stream> = Box::new(RealStream::new(socket));
        if let Some(plan) = self.fault.clone() {
            let mut plan = plan;
            plan.seed = plan
                .seed
                .wrapping_add(self.connects.wrapping_mul(0x9E37_79B9));
            stream = Box::new(crate::stream::FaultStream::new(stream, plan));
        }
        stream.set_read_timeout(Some(READ_POLL))?;
        self.connects += 1;
        telemetry::add("netclient.connects", 1);
        write_all(
            stream.as_mut(),
            &Message::Hello {
                protocol: PROTOCOL_VERSION,
                tenant: self.tenant.clone(),
                token: self.token.clone(),
            }
            .to_frame(),
        )?;
        let reply_by = Instant::now() + DEFAULT_REPLY_WAIT;
        match read_message(stream.as_mut(), reply_by)? {
            Some(Message::HelloAck { session, key_space }) => {
                self.session = session;
                // Adopt the server-assigned key space once, on the
                // first handshake; reconnects grant fresh spaces that
                // are ignored so keys drawn before the reconnect stay
                // in a space no other client can ever be assigned.
                if self.key_space == 0 {
                    self.key_space = key_space;
                }
                self.stream = Some(stream);
                Ok(())
            }
            Some(Message::AuthFailed { reason }) => Err(std::io::Error::new(
                // PermissionDenied is terminal: the retry loop gives up
                // immediately — retrying the same bad token cannot help
                // and would hammer the server's auth-failure path.
                std::io::ErrorKind::PermissionDenied,
                format!("authentication rejected: {reason}"),
            )),
            Some(Message::Goodbye { reason }) => Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                format!("server refused session: {reason}"),
            )),
            Some(_) => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "unexpected handshake reply",
            )),
            None => Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "no handshake reply",
            )),
        }
    }

    /// Tear down the current connection, if any.
    fn disconnect(&mut self) {
        if let Some(mut stream) = self.stream.take() {
            stream.shutdown();
        }
    }

    /// Say goodbye and close. Dropping the client without calling this
    /// is also fine — the server treats the EOF as a clean close.
    pub fn close(mut self) {
        if let Some(mut stream) = self.stream.take() {
            let _ = write_all(
                stream.as_mut(),
                &Message::Goodbye {
                    reason: "client done".into(),
                }
                .to_frame(),
            );
            stream.shutdown();
        }
    }
}

/// Read one message, polling until `reply_by`. `Ok(None)` means the
/// wait expired with no complete frame; any transport or protocol
/// defect is an `Err` (the connection is no longer trustworthy).
fn read_message(stream: &mut dyn Stream, reply_by: Instant) -> std::io::Result<Option<Message>> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    let mut crc = 0u32;
    let mut body: Option<(Vec<u8>, usize)> = None;
    loop {
        if Instant::now() >= reply_by {
            return Ok(None);
        }
        let target: &mut [u8] = match &mut body {
            None => &mut header[filled..],
            Some((buf, at)) => &mut buf[*at..],
        };
        match stream.read(target) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            Ok(n) => match &mut body {
                None => {
                    filled += n;
                    if filled == header.len() {
                        let (len, declared) = parse_header(&header).map_err(wire_to_io)?;
                        crc = declared;
                        if len == 0 {
                            verify_body(crc, &[]).map_err(wire_to_io)?;
                            return Message::decode(&[]).map(Some).map_err(wire_to_io);
                        }
                        body = Some((vec![0u8; len as usize], 0));
                    }
                }
                Some((buf, at)) => {
                    *at += n;
                    if *at == buf.len() {
                        let (buf, _) = body.take().expect("body present");
                        verify_body(crc, &buf).map_err(wire_to_io)?;
                        return Message::decode(&buf).map(Some).map_err(wire_to_io);
                    }
                }
            },
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn wire_to_io(e: crate::wire::WireError) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, format!("wire: {e}"))
}
