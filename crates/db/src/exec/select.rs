//! SELECT execution: scan → join → filter → aggregate → sort → limit.
//!
//! The planner is deliberately simple but does the two optimizations that
//! matter for PerfDMF's access patterns (large `INTERVAL_LOCATION_PROFILE`
//! tables filtered by trial/metric, joined to small dimension tables):
//!
//! * **Index pushdown** — an equality or range conjunct on an indexed
//!   column of the base table restricts the scan to index hits.
//! * **Hash joins** — `JOIN ... ON a.x = b.y` builds a hash table on the
//!   smaller, right side instead of a nested loop.

use super::aggregate::Accumulator;
use super::eval::{eval, eval_condition, Env, Layout};
use super::vector;
use super::ResultSet;
use crate::column::CHUNK_ROWS;
use crate::database::Database;
use crate::error::{DbError, Result};
use crate::introspect;
use crate::sql::ast::*;
use crate::table::{Row, Table};
use crate::value::Value;
use perfdmf_pool as pool;
use perfdmf_telemetry as telemetry;
use std::collections::HashMap;
use std::ops::Bound;
use std::ops::Range;
use std::time::Instant;

/// A resolved FROM-clause table: either a borrowed base table or a
/// virtual system table materialized for this statement. Derefs to
/// [`Table`] so the scan/join/EXPLAIN code is agnostic to the source.
pub(crate) enum TableSource<'a> {
    Base(&'a Table),
    Virtual(Box<Table>),
}

impl std::ops::Deref for TableSource<'_> {
    type Target = Table;

    fn deref(&self) -> &Table {
        match self {
            TableSource::Base(t) => t,
            TableSource::Virtual(t) => t,
        }
    }
}

impl TableSource<'_> {
    pub(crate) fn is_virtual(&self) -> bool {
        matches!(self, TableSource::Virtual(_))
    }
}

/// Resolve a FROM-clause table name: names under the reserved `perfdmf_`
/// prefix materialize the corresponding virtual system table from live
/// engine state; everything else resolves against the database catalog.
pub(crate) fn resolve_table<'a>(db: &'a Database, name: &str) -> Result<TableSource<'a>> {
    if introspect::is_reserved_name(name) {
        return match introspect::materialize(db, name) {
            Some(t) => {
                telemetry::add("db.exec.virtual_scans", 1);
                Ok(TableSource::Virtual(Box::new(t)))
            }
            None => Err(DbError::NoSuchTable(name.to_string())),
        };
    }
    db.table(name).map(TableSource::Base)
}

/// Per-operator measurements collected while executing a SELECT for
/// `EXPLAIN ANALYZE`. Everywhere else the executor runs with `None`, so
/// the normal path pays one `Option` check per stage.
#[derive(Debug, Default)]
pub(crate) struct ExecProfile {
    /// (rows out, partitions used, wall ns) of the base scan.
    scan: Option<(u64, usize, u64)>,
    /// (live rows, chunks, cache hits, cache misses, partitions, wall ns)
    /// of a columnar scan (fused scan + filter + aggregate).
    colscan: Option<(u64, usize, u64, u64, usize, u64)>,
    /// (rows out, wall ns) per join, left to right.
    joins: Vec<(u64, u64)>,
    /// (rows in, rows out, partitions used, wall ns) of the WHERE pass.
    filter: Option<(u64, u64, usize, u64)>,
    /// (groups, partitions used, wall ns) of the aggregate pass.
    aggregate: Option<(u64, usize, u64)>,
    /// Wall ns of the ORDER BY sort (plain or grouped path).
    sort_ns: u64,
    /// (rows in, rows out) of the DISTINCT pass.
    distinct: Option<(u64, u64)>,
}

fn stage_ns(t0: Option<Instant>) -> u64 {
    t0.map(|t| t.elapsed().as_nanos().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

fn fmt_ns(ns: u64) -> String {
    format!("{:.3}ms", ns as f64 / 1e6)
}

fn partitions_label(n: usize) -> String {
    if n == 0 {
        "serial".to_string()
    } else {
        n.to_string()
    }
}

/// Replace uncorrelated subqueries (`IN (SELECT ...)`, scalar
/// `(SELECT ...)`) in an expression by executing them once up front.
pub(crate) fn resolve_subqueries(db: &Database, expr: &Expr, params: &[Value]) -> Result<Expr> {
    let rec = |e: &Expr| resolve_subqueries(db, e, params);
    Ok(match expr {
        Expr::InSubquery {
            operand,
            select,
            negated,
        } => {
            let rs = execute_select(db, select, params)?;
            if rs.columns.len() != 1 {
                return Err(DbError::Eval(format!(
                    "IN subquery must return one column, got {}",
                    rs.columns.len()
                )));
            }
            Expr::InList {
                operand: Box::new(rec(operand)?),
                list: rs
                    .rows
                    .into_iter()
                    .map(|mut r| Expr::Literal(r.remove(0)))
                    .collect(),
                negated: *negated,
            }
        }
        Expr::ScalarSubquery(select) => {
            let rs = execute_select(db, select, params)?;
            if rs.columns.len() != 1 {
                return Err(DbError::Eval(format!(
                    "scalar subquery must return one column, got {}",
                    rs.columns.len()
                )));
            }
            if rs.rows.len() > 1 {
                return Err(DbError::Eval(format!(
                    "scalar subquery returned {} rows",
                    rs.rows.len()
                )));
            }
            Expr::Literal(
                rs.rows
                    .into_iter()
                    .next()
                    .map(|mut r| r.remove(0))
                    .unwrap_or(Value::Null),
            )
        }
        Expr::Exists { select, negated } => {
            let rs = execute_select(db, select, params)?;
            Expr::Literal(Value::Bool(rs.rows.is_empty() == *negated))
        }
        Expr::Unary { op, operand } => Expr::Unary {
            op: *op,
            operand: Box::new(rec(operand)?),
        },
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(rec(left)?),
            right: Box::new(rec(right)?),
        },
        Expr::IsNull { operand, negated } => Expr::IsNull {
            operand: Box::new(rec(operand)?),
            negated: *negated,
        },
        Expr::InList {
            operand,
            list,
            negated,
        } => Expr::InList {
            operand: Box::new(rec(operand)?),
            list: list.iter().map(rec).collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Between {
            operand,
            low,
            high,
            negated,
        } => Expr::Between {
            operand: Box::new(rec(operand)?),
            low: Box::new(rec(low)?),
            high: Box::new(rec(high)?),
            negated: *negated,
        },
        Expr::Aggregate {
            func,
            arg,
            distinct,
        } => Expr::Aggregate {
            func: *func,
            arg: arg.as_ref().map(|a| rec(a).map(Box::new)).transpose()?,
            distinct: *distinct,
        },
        Expr::Function { name, args } => Expr::Function {
            name: name.clone(),
            args: args.iter().map(rec).collect::<Result<_>>()?,
        },
        Expr::Case {
            branches,
            else_branch,
        } => Expr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| Ok((rec(c)?, rec(v)?)))
                .collect::<Result<_>>()?,
            else_branch: else_branch
                .as_ref()
                .map(|e| rec(e).map(Box::new))
                .transpose()?,
        },
        leaf => leaf.clone(),
    })
}

fn expr_has_subquery(expr: &Expr) -> bool {
    match expr {
        Expr::InSubquery { .. } | Expr::ScalarSubquery(_) | Expr::Exists { .. } => true,
        Expr::Unary { operand, .. } | Expr::IsNull { operand, .. } => expr_has_subquery(operand),
        Expr::Binary { left, right, .. } => expr_has_subquery(left) || expr_has_subquery(right),
        Expr::InList { operand, list, .. } => {
            expr_has_subquery(operand) || list.iter().any(expr_has_subquery)
        }
        Expr::Between {
            operand, low, high, ..
        } => expr_has_subquery(operand) || expr_has_subquery(low) || expr_has_subquery(high),
        Expr::Aggregate { arg, .. } => arg.as_ref().is_some_and(|a| expr_has_subquery(a)),
        Expr::Function { args, .. } => args.iter().any(expr_has_subquery),
        Expr::Case {
            branches,
            else_branch,
        } => {
            branches
                .iter()
                .any(|(c, v)| expr_has_subquery(c) || expr_has_subquery(v))
                || else_branch.as_ref().is_some_and(|e| expr_has_subquery(e))
        }
        _ => false,
    }
}

fn select_has_subqueries(sel: &Select) -> bool {
    sel.projections.iter().any(|p| match p {
        Projection::Expr { expr, .. } => expr_has_subquery(expr),
        _ => false,
    }) || sel.where_clause.as_ref().is_some_and(expr_has_subquery)
        || sel.group_by.iter().any(expr_has_subquery)
        || sel.having.as_ref().is_some_and(expr_has_subquery)
        || sel.order_by.iter().any(|o| expr_has_subquery(&o.expr))
        || sel
            .joins
            .iter()
            .any(|j| j.on.as_ref().is_some_and(expr_has_subquery))
}

/// Rewrite a SELECT with every subquery resolved.
fn resolve_select(db: &Database, sel: &Select, params: &[Value]) -> Result<Select> {
    let mut out = sel.clone();
    for p in &mut out.projections {
        if let Projection::Expr { expr, .. } = p {
            *expr = resolve_subqueries(db, expr, params)?;
        }
    }
    if let Some(w) = &mut out.where_clause {
        *w = resolve_subqueries(db, w, params)?;
    }
    for g in &mut out.group_by {
        *g = resolve_subqueries(db, g, params)?;
    }
    if let Some(h) = &mut out.having {
        *h = resolve_subqueries(db, h, params)?;
    }
    for o in &mut out.order_by {
        o.expr = resolve_subqueries(db, &o.expr, params)?;
    }
    for j in &mut out.joins {
        if let Some(on) = &mut j.on {
            *on = resolve_subqueries(db, on, params)?;
        }
    }
    Ok(out)
}

// ---------------- scan strategy selection ----------------

/// True if the expression reads a column outside of any aggregate call.
/// Such expressions need a representative row, which the columnar path
/// never materializes.
fn has_bare_column(expr: &Expr) -> bool {
    match expr {
        Expr::Column { .. } => true,
        Expr::Aggregate { .. } => false, // columns inside the arg are fine
        Expr::Literal(_) | Expr::Param(_) => false,
        Expr::Unary { operand, .. } | Expr::IsNull { operand, .. } => has_bare_column(operand),
        Expr::Binary { left, right, .. } => has_bare_column(left) || has_bare_column(right),
        Expr::InList { operand, list, .. } => {
            has_bare_column(operand) || list.iter().any(has_bare_column)
        }
        Expr::Between {
            operand, low, high, ..
        } => has_bare_column(operand) || has_bare_column(low) || has_bare_column(high),
        Expr::Function { args, .. } => args.iter().any(has_bare_column),
        Expr::Case {
            branches,
            else_branch,
        } => {
            branches
                .iter()
                .any(|(c, v)| has_bare_column(c) || has_bare_column(v))
                || else_branch.as_ref().is_some_and(|e| has_bare_column(e))
        }
        Expr::InSubquery { operand, .. } => has_bare_column(operand),
        Expr::ScalarSubquery(_) | Expr::Exists { .. } => false,
    }
}

/// Query shapes the columnar path can execute: a single-table,
/// ungrouped aggregate query whose projections are pure aggregate
/// expressions. Everything else keeps row execution.
fn columnar_shape_ok(sel: &Select) -> bool {
    sel.from.is_some()
        && sel.joins.is_empty()
        && sel.group_by.is_empty()
        && sel.having.is_none()
        && !sel.distinct
        && sel.order_by.is_empty()
        && !sel.projections.is_empty()
        && sel.projections.iter().all(|p| match p {
            Projection::Expr { expr, .. } => expr.contains_aggregate() && !has_bare_column(expr),
            _ => false,
        })
}

/// A decided columnar scan: the compiled plan plus the statistics that
/// justified choosing it (rendered by EXPLAIN).
pub(crate) struct ColumnarChoice {
    plan: vector::ColumnarPlan,
    reason: String,
}

/// Decide between index, columnar, and sequential scan for an eligible
/// aggregate query, using table and index statistics. Returns `None`
/// when row execution (index or seq) should run. Shared by EXPLAIN and
/// the executor so the plan cannot drift from reality.
fn columnar_decision(
    db: &Database,
    sel: &Select,
    params: &[Value],
    had_subqueries: bool,
) -> Result<Option<ColumnarChoice>> {
    // Subqueries resolve to literals before execution but EXPLAIN sees
    // them unresolved; decline in both so the paths agree.
    if had_subqueries || !columnar_shape_ok(sel) {
        return Ok(None);
    }
    let mode = vector::columnar_mode();
    if mode == vector::ColumnarMode::Off {
        return Ok(None);
    }
    let base = sel.from.as_ref().expect("shape check");
    if introspect::is_reserved_name(&base.table) {
        // Virtual tables are rematerialized per statement, so their chunk
        // caches would never pay off: always take the row path.
        return Ok(None);
    }
    let table = db.table(&base.table)?;
    let binding = base.effective_name().to_string();
    let layout1 = Layout::single(
        binding.clone(),
        table
            .schema
            .columns
            .iter()
            .map(|c| c.name.clone())
            .collect(),
    );
    let projections = expand_projections(sel, &layout1)?;
    let mut aggs: Vec<&Expr> = Vec::new();
    for (_, e) in &projections {
        collect_aggregates(e, &mut aggs);
    }
    let Some(plan) = vector::plan_columnar(
        &table.schema,
        &binding,
        &layout1,
        &aggs,
        sel.where_clause.as_ref(),
        params,
    ) else {
        return Ok(None);
    };
    let live = table.len();
    let reason = match mode {
        vector::ColumnarMode::Force => "forced by PERFDMF_COLUMNAR".to_string(),
        vector::ColumnarMode::Auto => {
            match index_candidates(table, &binding, &layout1, sel.where_clause.as_ref(), params)? {
                Some(choice) => {
                    // A selective index beats scanning every chunk; a
                    // low-selectivity one does not.
                    if choice.ids.len().saturating_mul(4) <= live {
                        return Ok(None);
                    }
                    format!(
                        "index {} unselective: {} candidate(s) of {} live row(s), {} distinct key(s)",
                        choice.index_name,
                        choice.ids.len(),
                        live,
                        choice.distinct_keys
                    )
                }
                None => {
                    if live < CHUNK_ROWS {
                        return Ok(None); // small table: seq scan is fine
                    }
                    format!("no usable index, {live} live row(s) ≥ {CHUNK_ROWS} threshold")
                }
            }
        }
        vector::ColumnarMode::Off => unreachable!("handled above"),
    };
    Ok(Some(ColumnarChoice { plan, reason }))
}

/// Execute a decided columnar scan. Returns `Ok(None)` when a chunk
/// exposed column data the kernels cannot handle — the caller falls
/// back to row execution.
fn columnar_select(
    db: &Database,
    sel: &Select,
    choice: &ColumnarChoice,
    params: &[Value],
    prof: Option<&mut ExecProfile>,
) -> Result<Option<ResultSet>> {
    let base = sel.from.as_ref().expect("shape check");
    let table = db.table(&base.table)?;
    let t0 = prof.is_some().then(Instant::now);
    let (accs, stats) = {
        let _stage = telemetry::span("db.exec.colscan");
        match vector::execute_columnar(table, &choice.plan)? {
            Some(out) => out,
            None => return Ok(None),
        }
    };
    telemetry::add("db.exec.columnar_scans", 1);

    let binding = base.effective_name().to_string();
    let layout = Layout::single(
        binding,
        table
            .schema
            .columns
            .iter()
            .map(|c| c.name.clone())
            .collect(),
    );
    // Same collection order as `columnar_decision`, so accumulator `i`
    // belongs to aggregate expression `i`.
    let projections = expand_projections(sel, &layout)?;
    let columns: Vec<String> = projections.iter().map(|(n, _)| n.clone()).collect();
    let mut aggs: Vec<&Expr> = Vec::new();
    for (_, e) in &projections {
        collect_aggregates(e, &mut aggs);
    }
    debug_assert_eq!(aggs.len(), accs.len());
    let agg_values: Vec<Value> = accs.iter().map(|a| a.finish()).collect();

    // No bare columns survive the shape check, so a NULL row suffices as
    // the evaluation environment (matching the serial empty-group case).
    let null_row: Row = vec![Value::Null; layout.width()];
    let env = Env::new(&layout, &null_row, params);
    let mut out_row = Vec::with_capacity(projections.len());
    for (_, e) in &projections {
        let e_sub = substitute(e, &aggs, &agg_values);
        out_row.push(eval(&e_sub, &env)?);
    }

    if let Some(p) = prof {
        let ns = stage_ns(t0);
        p.colscan = Some((
            table.len() as u64,
            stats.chunks,
            stats.cache_hits,
            stats.cache_misses,
            stats.partitions,
            ns,
        ));
        p.aggregate = Some((1, stats.partitions, ns));
    }
    Ok(Some(ResultSet {
        columns,
        rows: vec![out_row],
        rows_scanned: table.len() as u64,
        ..ResultSet::default()
    }))
}

/// Query shapes where the serial scan can stop early once
/// `OFFSET + LIMIT` rows match: no joins, no ordering, no aggregation,
/// no DISTINCT.
fn early_exit_shape_ok(sel: &Select) -> bool {
    sel.from.is_some()
        && sel.limit.is_some()
        && sel.joins.is_empty()
        && sel.order_by.is_empty()
        && !sel.distinct
        && sel.group_by.is_empty()
        && sel.having.is_none()
        && !sel.projections.iter().any(|p| match p {
            Projection::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        })
}

/// Rows the early-exit scan needs before it can stop.
fn early_exit_take(sel: &Select) -> usize {
    (sel.offset.unwrap_or(0) as usize).saturating_add(sel.limit.unwrap_or(0) as usize)
}

/// Serial scan that stops after `OFFSET + LIMIT` matching rows instead
/// of materializing and filtering the whole table.
fn early_exit_select(
    db: &Database,
    sel: &Select,
    params: &[Value],
    prof: Option<&mut ExecProfile>,
) -> Result<ResultSet> {
    let base = sel.from.as_ref().expect("shape check");
    let source = resolve_table(db, &base.table)?;
    let table: &Table = &source;
    let binding = base.effective_name().to_string();
    let cols: Vec<String> = table
        .schema
        .columns
        .iter()
        .map(|c| c.name.clone())
        .collect();
    let layout = Layout::single(binding.clone(), cols.clone());
    let where_clause = sel.where_clause.as_ref();
    if let Some(pred) = where_clause {
        if pred.contains_aggregate() {
            return Err(DbError::Eval("aggregates are not allowed in WHERE".into()));
        }
    }
    let take = early_exit_take(sel);
    let needed = needed_columns(sel);
    let mask = column_mask(&binding, &cols, &needed);
    let scan_t0 = prof.is_some().then(Instant::now);
    let _stage = telemetry::span("db.exec.scan");
    let mut kept: Vec<Row> = Vec::new();
    let mut examined = 0u64;
    if take > 0 {
        let check = |row: &Row| -> Result<bool> {
            match where_clause {
                None => Ok(true),
                Some(pred) => {
                    let env = Env::new(&layout, row, params);
                    eval_condition(pred, &env)
                }
            }
        };
        match index_candidates(table, &binding, &layout, where_clause, params)? {
            Some(choice) => {
                for id in choice.ids {
                    if let Some(row) = table.row(id) {
                        examined += 1;
                        if check(row)? {
                            kept.push(masked_clone(row, &mask));
                            if kept.len() >= take {
                                break;
                            }
                        }
                    }
                }
            }
            None => {
                for (_, row) in table.iter() {
                    examined += 1;
                    if check(row)? {
                        kept.push(masked_clone(row, &mask));
                        if kept.len() >= take {
                            break;
                        }
                    }
                }
            }
        }
    }
    if let Some(p) = prof {
        let ns = stage_ns(scan_t0);
        p.scan = Some((examined, 0, ns));
        if where_clause.is_some() {
            p.filter = Some((examined, kept.len() as u64, 0, 0));
        }
    }
    let mut out = plain_path(sel, &layout, &kept, params, None)?;
    let offset = sel.offset.unwrap_or(0) as usize;
    if offset > 0 {
        out.rows.drain(..offset.min(out.rows.len()));
    }
    if let Some(limit) = sel.limit {
        out.rows.truncate(limit as usize);
    }
    out.rows_scanned = examined;
    Ok(out)
}

/// Execute a SELECT.
pub fn execute_select(db: &Database, sel: &Select, params: &[Value]) -> Result<ResultSet> {
    execute_select_profiled(db, sel, params, None)
}

/// Execute a SELECT, optionally collecting per-operator measurements
/// (the `EXPLAIN ANALYZE` path).
fn execute_select_profiled(
    db: &Database,
    sel: &Select,
    params: &[Value],
    mut prof: Option<&mut ExecProfile>,
) -> Result<ResultSet> {
    let started = std::time::Instant::now();
    // Uncorrelated subqueries run once, up front.
    let had_subqueries = select_has_subqueries(sel);
    let resolved;
    let sel = if had_subqueries {
        resolved = resolve_select(db, sel, params)?;
        &resolved
    } else {
        sel
    };

    // Statistics-driven scan selection: an eligible aggregate query may
    // run on column chunks instead of materialized rows. A `None` from
    // the kernels (unsupported chunk data) falls through to row
    // execution below.
    if let Some(choice) = columnar_decision(db, sel, params, had_subqueries)? {
        if let Some(mut out) = columnar_select(db, sel, &choice, params, prof.as_deref_mut())? {
            let offset = sel.offset.unwrap_or(0) as usize;
            if offset > 0 {
                out.rows.drain(..offset.min(out.rows.len()));
            }
            if let Some(limit) = sel.limit {
                out.rows.truncate(limit as usize);
            }
            out.elapsed = started.elapsed();
            return Ok(out);
        }
    } else if early_exit_shape_ok(sel) && !had_subqueries {
        // LIMIT pushdown: stop scanning once OFFSET + LIMIT rows match.
        // Mutually exclusive with the columnar path (which requires
        // aggregation) — checked in the else so only one fast path runs.
        let mut out = early_exit_select(db, sel, params, prof.as_deref_mut())?;
        out.elapsed = started.elapsed();
        return Ok(out);
    }

    // Scalar SELECT without FROM.
    let (layout, mut rows) = match &sel.from {
        None => (Layout::default(), vec![Vec::new()]),
        Some(base) => scan_and_join(db, base, sel, params, prof.as_deref_mut())?,
    };
    let rows_scanned = match &sel.from {
        None => 0,
        Some(_) => rows.len() as u64,
    };

    // WHERE
    if let Some(pred) = &sel.where_clause {
        if pred.contains_aggregate() {
            return Err(DbError::Eval("aggregates are not allowed in WHERE".into()));
        }
        let _stage = telemetry::span("db.exec.filter");
        let t0 = prof.is_some().then(Instant::now);
        let rows_in = rows.len();
        let mut partitions_used = 0;
        rows = match pool::partitions(rows.len()) {
            Some(ranges) => {
                // Partition the materialized rows; concatenating kept rows
                // in partition order preserves the serial result order.
                telemetry::add("db.exec.parallel_filters", 1);
                partitions_used = ranges.len();
                let rows_ref = &rows;
                let chunks = pool::try_run(ranges.len(), |pi| {
                    let mut kept = Vec::new();
                    for row in &rows_ref[ranges[pi].clone()] {
                        let env = Env::new(&layout, row, params);
                        if eval_condition(pred, &env)? {
                            kept.push(row.clone());
                        }
                    }
                    Ok::<Vec<Row>, DbError>(kept)
                })?;
                chunks.into_iter().flatten().collect()
            }
            None => {
                let mut kept = Vec::with_capacity(rows.len());
                for row in rows {
                    let env = Env::new(&layout, &row, params);
                    if eval_condition(pred, &env)? {
                        kept.push(row);
                    }
                }
                kept
            }
        };
        if let Some(p) = prof.as_deref_mut() {
            p.filter = Some((
                rows_in as u64,
                rows.len() as u64,
                partitions_used,
                stage_ns(t0),
            ));
        }
    }

    let needs_aggregation = !sel.group_by.is_empty()
        || sel.having.is_some()
        || sel.projections.iter().any(|p| match p {
            Projection::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        });

    let mut out = if needs_aggregation {
        let _stage = telemetry::span("db.exec.aggregate");
        aggregate_path(sel, &layout, &rows, params, prof.as_deref_mut())?
    } else {
        let _stage = telemetry::span("db.exec.project");
        plain_path(sel, &layout, &rows, params, prof.as_deref_mut())?
    };

    // DISTINCT
    if sel.distinct {
        let rows_in = out.rows.len();
        let mut seen = std::collections::HashSet::new();
        out.rows.retain(|r| seen.insert(r.clone()));
        if let Some(p) = prof {
            p.distinct = Some((rows_in as u64, out.rows.len() as u64));
        }
    }

    // LIMIT / OFFSET
    let offset = sel.offset.unwrap_or(0) as usize;
    if offset > 0 {
        out.rows.drain(..offset.min(out.rows.len()));
    }
    if let Some(limit) = sel.limit {
        out.rows.truncate(limit as usize);
    }
    out.rows_scanned = rows_scanned;
    out.elapsed = started.elapsed();
    Ok(out)
}

/// Describe the plan the executor would use for a SELECT (`EXPLAIN`).
///
/// The description is produced by the same decision code the executor
/// runs — index candidate selection, base-conjunct pushdown, projection
/// masking, and per-join strategy — so it cannot drift from reality.
pub fn explain_select(db: &Database, sel: &Select, params: &[Value]) -> Result<Vec<String>> {
    let mut lines = Vec::new();
    let Some(base) = &sel.from else {
        lines.push("result: constant row (no FROM)".to_string());
        return Ok(lines);
    };
    let base_source = resolve_table(db, &base.table)?;
    let base_table: &Table = &base_source;
    let base_binding = base.effective_name().to_string();
    let layout1 = Layout::single(
        base_binding.clone(),
        base_table
            .schema
            .columns
            .iter()
            .map(|c| c.name.clone())
            .collect(),
    );
    let needed = needed_columns(sel);
    // Same decision the executor makes: columnar beats index beats seq
    // when statistics justify it.
    let had_subqueries = select_has_subqueries(sel);
    let columnar = columnar_decision(db, sel, params, had_subqueries)?;
    if base_source.is_virtual() {
        // System tables have no indexes or chunk caches; the executor
        // always row-scans the per-statement materialization.
        let mut line = format!(
            "virtual scan on {} ({} row(s), materialized from live engine state)",
            base.table,
            base_table.len()
        );
        if early_exit_shape_ok(sel) && !had_subqueries {
            line.push_str(&format!(
                " [early exit after {} match(es)]",
                early_exit_take(sel)
            ));
        }
        lines.push(line);
    } else if let Some(choice) = &columnar {
        lines.push(format!(
            "columnar scan on {} ({} live row(s), {} chunk(s) of {}, {} kernel(s), {} fused predicate(s); {})",
            base.table,
            base_table.len(),
            base_table.chunk_count(),
            CHUNK_ROWS,
            choice.plan.aggs.len(),
            choice.plan.pred_count(),
            choice.reason
        ));
    } else {
        match index_candidates(
            base_table,
            &base_binding,
            &layout1,
            sel.where_clause.as_ref(),
            params,
        )? {
            Some(choice) => {
                let mut line = format!(
                    "index scan on {} ({} candidate row(s) of {}) via {}, {} distinct key(s)",
                    base.table,
                    choice.ids.len(),
                    base_table.len(),
                    choice.index_name,
                    choice.distinct_keys
                );
                if let Some((lo, hi)) = &choice.key_range {
                    line.push_str(&format!(", key range [{lo}, {hi}]"));
                }
                if early_exit_shape_ok(sel) && !had_subqueries {
                    line.push_str(&format!(
                        " [early exit after {} match(es)]",
                        early_exit_take(sel)
                    ));
                }
                lines.push(line);
            }
            None => {
                let mut line = format!("seq scan on {} ({} row(s))", base.table, base_table.len());
                if early_exit_shape_ok(sel) && !had_subqueries {
                    line.push_str(&format!(
                        " [early exit after {} match(es)]",
                        early_exit_take(sel)
                    ));
                }
                lines.push(line);
            }
        }
    }
    if !sel.joins.is_empty() {
        if let Some(pred) = &sel.where_clause {
            let pushed = conjuncts(pred)
                .into_iter()
                .filter(|c| !c.contains_aggregate() && refs_only_layout(c, &layout1))
                .count();
            if pushed > 0 {
                lines.push(format!("  pushdown: {pushed} base-only conjunct(s)"));
            }
        }
    }
    let base_cols: Vec<String> = base_table
        .schema
        .columns
        .iter()
        .map(|c| c.name.clone())
        .collect();
    if let Some(mask) = column_mask(&base_binding, &base_cols, &needed) {
        let masked = mask.iter().filter(|&&k| !k).count();
        lines.push(format!(
            "  projection pruning: {masked}/{} column(s) of {} masked",
            base_cols.len(),
            base.table
        ));
    }
    // joins, left-to-right, using the same equi-detection
    let mut bindings = vec![(base_binding.clone(), base_cols.clone())];
    for join in &sel.joins {
        let right_source = resolve_table(db, &join.table.table)?;
        let right_table: &Table = &right_source;
        let right_binding = join.table.effective_name().to_string();
        let right_cols: Vec<String> = right_table
            .schema
            .columns
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let left_layout = Layout::new(bindings.clone());
        let strategy = match join.kind {
            JoinKind::Cross => "cross join (cartesian)".to_string(),
            JoinKind::Inner | JoinKind::Left => {
                let kind = if join.kind == JoinKind::Left {
                    "left"
                } else {
                    "inner"
                };
                match join
                    .on
                    .as_ref()
                    .and_then(|on| equi_offsets(on, &left_layout, &right_binding, &right_cols))
                {
                    Some(_) => format!("{kind} hash join"),
                    None => format!("{kind} nested-loop join"),
                }
            }
        };
        lines.push(format!(
            "{strategy} with {} ({} row(s))",
            join.table.table,
            right_table.len()
        ));
        if let Some(mask) = column_mask(&right_binding, &right_cols, &needed) {
            let masked = mask.iter().filter(|&&k| !k).count();
            lines.push(format!(
                "  projection pruning: {masked}/{} column(s) of {} masked",
                right_cols.len(),
                join.table.table
            ));
        }
        bindings.push((right_binding, right_cols));
    }
    // A columnar scan fuses the WHERE predicates into the scan itself, so
    // there is no separate filter operator to report.
    if sel.where_clause.is_some() && columnar.is_none() {
        lines.push("filter: WHERE".to_string());
    }
    let has_agg = !sel.group_by.is_empty()
        || sel.having.is_some()
        || sel.projections.iter().any(|p| match p {
            Projection::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        });
    if has_agg {
        lines.push(format!(
            "aggregate: group by {} expr(s){}",
            sel.group_by.len(),
            if sel.having.is_some() { ", having" } else { "" }
        ));
    }
    if sel.distinct {
        lines.push("distinct".to_string());
    }
    if !sel.order_by.is_empty() {
        lines.push(format!("sort: {} key(s)", sel.order_by.len()));
    }
    if sel.limit.is_some() || sel.offset.is_some() {
        lines.push(format!("limit {:?} offset {:?}", sel.limit, sel.offset));
    }
    Ok(lines)
}

/// `EXPLAIN ANALYZE` for a SELECT: execute it for real with per-operator
/// instrumentation, then annotate the [`explain_select`] plan lines with
/// actual rows, partitions used, and wall time. The closing `total:`
/// line carries the executed query's `ResultSet` provenance verbatim
/// (rows returned, rows scanned, elapsed), so the annotated plan cannot
/// disagree with what a plain execution reports.
pub fn explain_analyze_select(
    db: &Database,
    sel: &Select,
    params: &[Value],
) -> Result<Vec<String>> {
    let mut prof = ExecProfile::default();
    let rs = execute_select_profiled(db, sel, params, Some(&mut prof))?;
    // The static plan comes from the same decision code the execution
    // just ran, against the same database state, so lines match operators
    // one-to-one.
    let mut lines = explain_select(db, sel, params)?;
    let mut joins = prof.joins.iter();
    for line in lines.iter_mut() {
        if line.starts_with("columnar scan on ") {
            if let Some((live, chunks, hits, misses, parts, ns)) = prof.colscan {
                line.push_str(&format!(
                    " [actual rows={live}, chunks={chunks}, cache hits={hits} misses={misses}, partitions={}, {}]",
                    partitions_label(parts),
                    fmt_ns(ns)
                ));
            } else if prof.scan.is_some() {
                // The plan chose columnar but the kernels declined a
                // chunk at run time and the row path executed instead.
                line.push_str(" [fell back to row execution]");
            }
        } else if line.starts_with("index scan on ")
            || line.starts_with("seq scan on ")
            || line.starts_with("virtual scan on ")
        {
            if let Some((rows_out, parts, ns)) = prof.scan {
                line.push_str(&format!(
                    " [actual rows={rows_out}, partitions={}, {}]",
                    partitions_label(parts),
                    fmt_ns(ns)
                ));
            }
        } else if line.contains(" join with ") || line.starts_with("cross join") {
            if let Some((rows_out, ns)) = joins.next() {
                line.push_str(&format!(" [actual rows={rows_out}, {}]", fmt_ns(*ns)));
            }
        } else if line.starts_with("filter: WHERE") {
            if let Some((rows_in, rows_out, parts, ns)) = prof.filter {
                line.push_str(&format!(
                    " [actual rows={rows_out} of {rows_in}, partitions={}, {}]",
                    partitions_label(parts),
                    fmt_ns(ns)
                ));
            }
        } else if line.starts_with("aggregate: ") {
            if let Some((groups, parts, ns)) = prof.aggregate {
                line.push_str(&format!(
                    " [actual groups={groups}, partitions={}, {}]",
                    partitions_label(parts),
                    fmt_ns(ns)
                ));
            }
        } else if line == "distinct" {
            if let Some((rows_in, rows_out)) = prof.distinct {
                line.push_str(&format!(" [actual rows={rows_out} of {rows_in}]"));
            }
        } else if line.starts_with("sort: ") {
            line.push_str(&format!(" [{}]", fmt_ns(prof.sort_ns)));
        } else if line.starts_with("limit ") {
            line.push_str(&format!(" [actual rows={}]", rs.rows.len()));
        } else if line.starts_with("result: constant row") {
            line.push_str(" [actual rows=1]");
        }
    }
    lines.push(format!(
        "total: {} row(s) returned, {} row(s) scanned, {}",
        rs.rows.len(),
        rs.rows_scanned,
        fmt_ns(rs.elapsed.as_nanos().min(u64::MAX as u128) as u64)
    ));
    Ok(lines)
}

// ---------------- scan + join ----------------

fn table_layout_entry(db: &Database, tref: &TableRef) -> Result<(String, Vec<String>)> {
    let t = resolve_table(db, &tref.table)?;
    Ok((
        tref.effective_name().to_string(),
        t.schema.columns.iter().map(|c| c.name.clone()).collect(),
    ))
}

/// Collect every column reference in an expression tree.
fn collect_columns<'a>(expr: &'a Expr, out: &mut Vec<(Option<&'a str>, &'a str)>) {
    match expr {
        Expr::Column { table, column } => out.push((table.as_deref(), column)),
        Expr::Literal(_) | Expr::Param(_) => {}
        Expr::Unary { operand, .. } | Expr::IsNull { operand, .. } => collect_columns(operand, out),
        Expr::Binary { left, right, .. } => {
            collect_columns(left, out);
            collect_columns(right, out);
        }
        Expr::InList { operand, list, .. } => {
            collect_columns(operand, out);
            for e in list {
                collect_columns(e, out);
            }
        }
        Expr::Between {
            operand, low, high, ..
        } => {
            collect_columns(operand, out);
            collect_columns(low, out);
            collect_columns(high, out);
        }
        Expr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                collect_columns(a, out);
            }
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_columns(a, out);
            }
        }
        Expr::Case {
            branches,
            else_branch,
        } => {
            for (c, v) in branches {
                collect_columns(c, out);
                collect_columns(v, out);
            }
            if let Some(e) = else_branch {
                collect_columns(e, out);
            }
        }
        // Subqueries are resolved before this pass runs; their operand is
        // the only outer-query reference.
        Expr::InSubquery { operand, .. } => collect_columns(operand, out),
        Expr::ScalarSubquery(_) | Expr::Exists { .. } => {}
    }
}

/// Columns the query actually reads, or `None` when a wildcard projection
/// requires everything. Used for projection pruning: unneeded columns are
/// masked to NULL at materialization time, which avoids cloning large
/// strings from dimension tables into every joined fact row.
fn needed_columns(sel: &Select) -> Option<Vec<(Option<&str>, &str)>> {
    let mut out = Vec::new();
    for p in &sel.projections {
        match p {
            Projection::Wildcard | Projection::TableWildcard(_) => return None,
            Projection::Expr { expr, .. } => collect_columns(expr, &mut out),
        }
    }
    if let Some(w) = &sel.where_clause {
        collect_columns(w, &mut out);
    }
    for g in &sel.group_by {
        collect_columns(g, &mut out);
    }
    if let Some(h) = &sel.having {
        collect_columns(h, &mut out);
    }
    for o in &sel.order_by {
        collect_columns(&o.expr, &mut out);
        // ORDER BY bare names may refer to projection aliases; aliases are
        // computed from projections already collected above. Bare names
        // that are real columns are collected by collect_columns too.
    }
    for j in &sel.joins {
        if let Some(on) = &j.on {
            collect_columns(on, &mut out);
        }
    }
    Some(out)
}

/// Per-column keep/mask flags for one binding.
fn column_mask(
    binding: &str,
    columns: &[String],
    needed: &Option<Vec<(Option<&str>, &str)>>,
) -> Option<Vec<bool>> {
    let needed = needed.as_ref()?;
    let mask: Vec<bool> = columns
        .iter()
        .map(|col| {
            needed.iter().any(|(t, c)| {
                c.eq_ignore_ascii_case(col) && t.is_none_or(|t| t.eq_ignore_ascii_case(binding))
            })
        })
        .collect();
    if mask.iter().all(|&k| k) {
        None // nothing to prune
    } else {
        Some(mask)
    }
}

fn masked_clone(row: &Row, mask: &Option<Vec<bool>>) -> Row {
    match mask {
        None => row.clone(),
        Some(mask) => row
            .iter()
            .zip(mask)
            .map(|(v, &keep)| if keep { v.clone() } else { Value::Null })
            .collect(),
    }
}

fn scan_and_join(
    db: &Database,
    base: &TableRef,
    sel: &Select,
    params: &[Value],
    mut prof: Option<&mut ExecProfile>,
) -> Result<(Layout, Vec<Row>)> {
    let joins = &sel.joins;
    let where_clause = sel.where_clause.as_ref();
    let needed = needed_columns(sel);
    // Base scan with index pushdown.
    let base_source = resolve_table(db, &base.table)?;
    let base_table: &Table = &base_source;
    let base_binding = base.effective_name().to_string();
    let mut bindings = vec![table_layout_entry(db, base)?];

    let mut scan_partitions = 0usize;
    let scan_t0 = prof.is_some().then(Instant::now);
    let base_rows: Vec<Row> = {
        let _stage = telemetry::span("db.exec.scan");
        let layout1 = Layout::single(
            base_binding.clone(),
            base_table
                .schema
                .columns
                .iter()
                .map(|c| c.name.clone())
                .collect(),
        );
        let candidates =
            index_candidates(base_table, &base_binding, &layout1, where_clause, params)?;
        // Push down every WHERE conjunct that references only base-table
        // columns, *before* materializing rows for the join — this keeps
        // filtered scans over million-row fact tables from cloning the
        // whole table.
        let pushdown: Vec<&Expr> = match (where_clause, joins.is_empty()) {
            (Some(pred), false) => conjuncts(pred)
                .into_iter()
                .filter(|c| !c.contains_aggregate() && refs_only_layout(c, &layout1))
                .collect(),
            _ => Vec::new(), // without joins the main WHERE pass handles it
        };
        let keep = |row: &Row| -> Result<bool> {
            for c in &pushdown {
                let env = Env::new(&layout1, row, params);
                if !eval_condition(c, &env)? {
                    return Ok(false);
                }
            }
            Ok(true)
        };
        let base_mask = column_mask(
            &base_binding,
            &base_table
                .schema
                .columns
                .iter()
                .map(|c| c.name.clone())
                .collect::<Vec<_>>(),
            &needed,
        );
        match candidates {
            Some(choice) => {
                let mut out = Vec::with_capacity(choice.ids.len());
                for id in choice.ids {
                    if let Some(row) = base_table.row(id) {
                        if keep(row)? {
                            out.push(masked_clone(row, &base_mask));
                        }
                    }
                }
                out
            }
            None => {
                // Full scan. The slab is chunked by row-id range; live rows
                // concatenated in partition order match `Table::iter`'s
                // ascending-id order, so the parallel scan returns rows in
                // exactly the serial order.
                match pool::partitions(base_table.slab_len()) {
                    Some(ranges) => {
                        telemetry::add("db.exec.parallel_scans", 1);
                        scan_partitions = ranges.len();
                        let keep = &keep;
                        let base_mask = &base_mask;
                        let chunks = pool::try_run(ranges.len(), |pi| {
                            let mut part = Vec::new();
                            for id in ranges[pi].clone() {
                                if let Some(row) = base_table.row(id as crate::table::RowId) {
                                    if keep(row)? {
                                        part.push(masked_clone(row, base_mask));
                                    }
                                }
                            }
                            Ok::<Vec<Row>, DbError>(part)
                        })?;
                        chunks.into_iter().flatten().collect()
                    }
                    None => {
                        let mut out = Vec::new();
                        for (_, row) in base_table.iter() {
                            if keep(row)? {
                                out.push(masked_clone(row, &base_mask));
                            }
                        }
                        out
                    }
                }
            }
        }
    };

    if let Some(p) = prof.as_deref_mut() {
        p.scan = Some((base_rows.len() as u64, scan_partitions, stage_ns(scan_t0)));
    }

    let mut rows = base_rows;
    for join in joins {
        let _stage = telemetry::span("db.exec.join");
        let join_t0 = prof.is_some().then(Instant::now);
        let right_source = resolve_table(db, &join.table.table)?;
        let right_table: &Table = &right_source;
        let right_binding = join.table.effective_name().to_string();
        if bindings
            .iter()
            .any(|(b, _)| b.eq_ignore_ascii_case(&right_binding))
        {
            return Err(DbError::Unsupported(format!(
                "duplicate table binding {right_binding:?} in FROM (use an alias)"
            )));
        }
        let right_cols: Vec<String> = right_table
            .schema
            .columns
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let right_width = right_cols.len();
        let left_layout = Layout::new(bindings.clone());
        bindings.push((right_binding.clone(), right_cols.clone()));
        let full_layout = Layout::new(bindings.clone());

        let right_rows: Vec<&Row> = right_table.iter().map(|(_, r)| r).collect();
        let right_mask = column_mask(&right_binding, &right_cols, &needed);
        let extend_masked = |row: &mut Row, r: &Row| match &right_mask {
            None => row.extend(r.iter().cloned()),
            Some(mask) => {
                row.extend(
                    r.iter()
                        .zip(mask)
                        .map(|(v, &keep)| if keep { v.clone() } else { Value::Null }),
                )
            }
        };

        let mut joined: Vec<Row> = Vec::new();
        match join.kind {
            JoinKind::Cross => {
                for l in &rows {
                    for r in &right_rows {
                        let mut row = l.clone();
                        extend_masked(&mut row, r);
                        joined.push(row);
                    }
                }
            }
            JoinKind::Inner | JoinKind::Left => {
                let on = join
                    .on
                    .as_ref()
                    .ok_or_else(|| DbError::Unsupported("JOIN requires ON".into()))?;
                // Try hash join on a simple equi-condition.
                if let Some((l_off, r_off)) =
                    equi_offsets(on, &left_layout, &right_binding, &right_cols)
                {
                    let mut table: HashMap<Value, Vec<&Row>> = HashMap::new();
                    for r in &right_rows {
                        let key = &r[r_off];
                        if !key.is_null() {
                            table.entry(key.clone()).or_default().push(r);
                        }
                    }
                    for l in &rows {
                        let key = &l[l_off];
                        let matches = if key.is_null() { None } else { table.get(key) };
                        match matches {
                            Some(ms) if !ms.is_empty() => {
                                for m in ms {
                                    let mut row = l.clone();
                                    extend_masked(&mut row, m);
                                    joined.push(row);
                                }
                            }
                            _ if join.kind == JoinKind::Left => {
                                let mut row = l.clone();
                                row.extend(std::iter::repeat_n(Value::Null, right_width));
                                joined.push(row);
                            }
                            _ => {}
                        }
                    }
                } else {
                    // General nested loop with full ON evaluation.
                    for l in &rows {
                        let mut matched = false;
                        for r in &right_rows {
                            let mut row = l.clone();
                            extend_masked(&mut row, r);
                            let env = Env::new(&full_layout, &row, params);
                            if eval_condition(on, &env)? {
                                joined.push(row);
                                matched = true;
                            }
                        }
                        if !matched && join.kind == JoinKind::Left {
                            let mut row = l.clone();
                            row.extend(std::iter::repeat_n(Value::Null, right_width));
                            joined.push(row);
                        }
                    }
                }
            }
        }
        rows = joined;
        if let Some(p) = prof.as_deref_mut() {
            p.joins.push((rows.len() as u64, stage_ns(join_t0)));
        }
    }
    Ok((Layout::new(bindings), rows))
}

/// If `on` is `left_col = right_col` (either order), return flat offsets
/// (left offset in the accumulated layout, right offset in the right table).
fn equi_offsets(
    on: &Expr,
    left_layout: &Layout,
    right_binding: &str,
    right_cols: &[String],
) -> Option<(usize, usize)> {
    let Expr::Binary {
        op: BinaryOp::Eq,
        left,
        right,
    } = on
    else {
        return None;
    };
    let as_col = |e: &Expr| -> Option<(Option<String>, String)> {
        if let Expr::Column { table, column } = e {
            Some((table.clone(), column.clone()))
        } else {
            None
        }
    };
    let (lt, lc) = as_col(left)?;
    let (rt, rc) = as_col(right)?;
    let right_off = |t: &Option<String>, c: &str| -> Option<usize> {
        match t {
            Some(t) if !t.eq_ignore_ascii_case(right_binding) => None,
            _ => right_cols.iter().position(|n| n.eq_ignore_ascii_case(c)),
        }
    };
    let left_off = |t: &Option<String>, c: &str| -> Option<usize> {
        left_layout.resolve(t.as_deref(), c).ok()
    };
    // (left = right)
    if let (Some(lo), Some(ro)) = (left_off(&lt, &lc), right_off(&rt, &rc)) {
        // ensure "right" side really refers to the right table (unqualified
        // names could resolve on both sides — prefer explicit qualification)
        if rt.is_some() || left_layout.resolve(None, &rc).is_err() {
            return Some((lo, ro));
        }
    }
    // (right = left)
    if let (Some(lo), Some(ro)) = (left_off(&rt, &rc), right_off(&lt, &lc)) {
        if lt.is_some() || left_layout.resolve(None, &lc).is_err() {
            return Some((lo, ro));
        }
    }
    None
}

/// True if every column reference in `expr` resolves within `layout`.
fn refs_only_layout(expr: &Expr, layout: &Layout) -> bool {
    match expr {
        Expr::Column { table, column } => layout.resolve(table.as_deref(), column).is_ok(),
        Expr::Literal(_) | Expr::Param(_) => true,
        Expr::Unary { operand, .. } | Expr::IsNull { operand, .. } => {
            refs_only_layout(operand, layout)
        }
        Expr::Binary { left, right, .. } => {
            refs_only_layout(left, layout) && refs_only_layout(right, layout)
        }
        Expr::InList { operand, list, .. } => {
            refs_only_layout(operand, layout) && list.iter().all(|e| refs_only_layout(e, layout))
        }
        Expr::Between {
            operand, low, high, ..
        } => {
            refs_only_layout(operand, layout)
                && refs_only_layout(low, layout)
                && refs_only_layout(high, layout)
        }
        Expr::Aggregate { arg, .. } => arg.as_ref().is_none_or(|a| refs_only_layout(a, layout)),
        Expr::Function { args, .. } => args.iter().all(|e| refs_only_layout(e, layout)),
        Expr::Case {
            branches,
            else_branch,
        } => {
            branches
                .iter()
                .all(|(c, v)| refs_only_layout(c, layout) && refs_only_layout(v, layout))
                && else_branch
                    .as_ref()
                    .is_none_or(|e| refs_only_layout(e, layout))
        }
        // Unresolved subqueries cannot be pushed down safely.
        Expr::InSubquery { .. } | Expr::ScalarSubquery(_) | Expr::Exists { .. } => false,
    }
}

/// Collect top-level AND conjuncts.
pub(crate) fn conjuncts(expr: &Expr) -> Vec<&Expr> {
    match expr {
        Expr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => {
            let mut v = conjuncts(left);
            v.extend(conjuncts(right));
            v
        }
        other => vec![other],
    }
}

/// An index-restricted scan: the candidate row ids plus the statistics
/// of the index that produced them (surfaced by EXPLAIN and consulted by
/// the columnar-vs-index decision).
#[derive(Debug)]
pub(crate) struct IndexChoice {
    /// Candidate row ids, in index key order.
    pub ids: Vec<crate::table::RowId>,
    /// Name of the consulted index.
    pub index_name: String,
    /// Distinct non-NULL keys in the index (cardinality statistic).
    pub distinct_keys: usize,
    /// Smallest and largest indexed key, when the index is non-empty.
    pub key_range: Option<(Value, Value)>,
}

impl IndexChoice {
    fn new(ix: &crate::index::Index, ids: Vec<crate::table::RowId>) -> Self {
        IndexChoice {
            ids,
            index_name: ix.name.clone(),
            distinct_keys: ix.distinct_keys(),
            key_range: match (ix.min_key(), ix.max_key()) {
                (Some(lo), Some(hi)) => Some((lo.clone(), hi.clone())),
                _ => None,
            },
        }
    }
}

/// If the WHERE clause has an indexable conjunct on the base table, return
/// the candidate row ids; `None` means full scan. Also used by the
/// UPDATE/DELETE executors to avoid full-table target scans.
pub(crate) fn index_candidates(
    table: &crate::table::Table,
    binding: &str,
    layout1: &Layout,
    where_clause: Option<&Expr>,
    params: &[Value],
) -> Result<Option<IndexChoice>> {
    let Some(pred) = where_clause else {
        return Ok(None);
    };
    let resolve_base_col = |e: &Expr| -> Option<usize> {
        if let Expr::Column { table: t, column } = e {
            match t {
                Some(t) if !t.eq_ignore_ascii_case(binding) => None,
                _ => layout1.resolve(None, column).ok(),
            }
        } else {
            None
        }
    };
    let const_val = |e: &Expr| -> Option<Value> {
        match e {
            Expr::Literal(v) => Some(v.clone()),
            Expr::Param(i) => params.get(*i).cloned(),
            _ => None,
        }
    };
    for c in conjuncts(pred) {
        if let Expr::Binary { op, left, right } = c {
            // col op const / const op col
            let (col, val, op) = match (resolve_base_col(left), const_val(right)) {
                (Some(col), Some(v)) => (col, v, *op),
                _ => match (resolve_base_col(right), const_val(left)) {
                    (Some(col), Some(v)) => (col, v, flip(*op)),
                    _ => continue,
                },
            };
            if val.is_null() {
                continue;
            }
            let Some(ix) = table.index_on(col) else {
                continue;
            };
            let ids = match op {
                BinaryOp::Eq => ix.get(&val),
                BinaryOp::Lt => ix.range(Bound::Unbounded, Bound::Excluded(&val)),
                BinaryOp::LtEq => ix.range(Bound::Unbounded, Bound::Included(&val)),
                BinaryOp::Gt => ix.range(Bound::Excluded(&val), Bound::Unbounded),
                BinaryOp::GtEq => ix.range(Bound::Included(&val), Bound::Unbounded),
                _ => continue,
            };
            return Ok(Some(IndexChoice::new(ix, ids)));
        }
        if let Expr::Between {
            operand,
            low,
            high,
            negated: false,
        } = c
        {
            if let (Some(col), Some(lo), Some(hi)) =
                (resolve_base_col(operand), const_val(low), const_val(high))
            {
                if let Some(ix) = table.index_on(col) {
                    let ids = ix.range(Bound::Included(&lo), Bound::Included(&hi));
                    return Ok(Some(IndexChoice::new(ix, ids)));
                }
            }
        }
        if let Expr::InList {
            operand,
            list,
            negated: false,
        } = c
        {
            if let Some(col) = resolve_base_col(operand) {
                if let Some(ix) = table.index_on(col) {
                    let mut ids = Vec::new();
                    let mut all_const = true;
                    for item in list {
                        match const_val(item) {
                            Some(v) => ids.extend(ix.get(&v)),
                            None => {
                                all_const = false;
                                break;
                            }
                        }
                    }
                    if all_const {
                        ids.sort_unstable();
                        ids.dedup();
                        return Ok(Some(IndexChoice::new(ix, ids)));
                    }
                }
            }
        }
    }
    Ok(None)
}

fn flip(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other,
    }
}

// ---------------- projection ----------------

/// Expand projections into (name, expr) pairs; wildcards become columns.
fn expand_projections(sel: &Select, layout: &Layout) -> Result<Vec<(String, Expr)>> {
    let mut out = Vec::new();
    for p in &sel.projections {
        match p {
            Projection::Wildcard => {
                for (binding, col) in layout.flat() {
                    out.push((
                        col.clone(),
                        Expr::Column {
                            table: Some(binding.clone()),
                            column: col.clone(),
                        },
                    ));
                }
            }
            Projection::TableWildcard(t) => {
                let (start, len) = layout
                    .binding_span(t)
                    .ok_or_else(|| DbError::NoSuchTable(t.clone()))?;
                for (binding, col) in &layout.flat()[start..start + len] {
                    out.push((
                        col.clone(),
                        Expr::Column {
                            table: Some(binding.clone()),
                            column: col.clone(),
                        },
                    ));
                }
            }
            Projection::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| expr.default_name());
                out.push((name, expr.clone()));
            }
        }
    }
    Ok(out)
}

fn plain_path(
    sel: &Select,
    layout: &Layout,
    rows: &[Row],
    params: &[Value],
    prof: Option<&mut ExecProfile>,
) -> Result<ResultSet> {
    let projections = expand_projections(sel, layout)?;
    let columns: Vec<String> = projections.iter().map(|(n, _)| n.clone()).collect();

    // ORDER BY before projection so sort keys can use any source column.
    let mut indices: Vec<usize> = (0..rows.len()).collect();
    if !sel.order_by.is_empty() {
        let _stage = telemetry::span("db.exec.sort");
        let t0 = prof.is_some().then(Instant::now);
        let keys = order_keys(&sel.order_by, layout, rows, params, &projections, None)?;
        sort_indices(&mut indices, &keys, &sel.order_by);
        if let Some(p) = prof {
            p.sort_ns = stage_ns(t0);
        }
    }

    let mut out_rows = Vec::with_capacity(rows.len());
    for &i in &indices {
        let env = Env::new(layout, &rows[i], params);
        let mut out = Vec::with_capacity(projections.len());
        for (_, e) in &projections {
            out.push(eval(e, &env)?);
        }
        out_rows.push(out);
    }
    Ok(ResultSet {
        columns,
        rows: out_rows,
        ..ResultSet::default()
    })
}

// ---------------- aggregation ----------------

/// Collect every distinct aggregate sub-expression in a tree.
fn collect_aggregates<'a>(expr: &'a Expr, out: &mut Vec<&'a Expr>) {
    match expr {
        Expr::Aggregate { .. } => {
            if !out.contains(&expr) {
                out.push(expr);
            }
        }
        Expr::Unary { operand, .. } | Expr::IsNull { operand, .. } => {
            collect_aggregates(operand, out)
        }
        Expr::Binary { left, right, .. } => {
            collect_aggregates(left, out);
            collect_aggregates(right, out);
        }
        Expr::InList { operand, list, .. } => {
            collect_aggregates(operand, out);
            for e in list {
                collect_aggregates(e, out);
            }
        }
        Expr::Between {
            operand, low, high, ..
        } => {
            collect_aggregates(operand, out);
            collect_aggregates(low, out);
            collect_aggregates(high, out);
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_aggregates(a, out);
            }
        }
        Expr::Case {
            branches,
            else_branch,
        } => {
            for (c, v) in branches {
                collect_aggregates(c, out);
                collect_aggregates(v, out);
            }
            if let Some(e) = else_branch {
                collect_aggregates(e, out);
            }
        }
        Expr::InSubquery { operand, .. } => collect_aggregates(operand, out),
        Expr::ScalarSubquery(_) | Expr::Exists { .. } => {}
        Expr::Literal(_) | Expr::Param(_) | Expr::Column { .. } => {}
    }
}

/// Replace aggregate nodes with their computed literal values.
fn substitute(expr: &Expr, aggs: &[&Expr], values: &[Value]) -> Expr {
    if let Some(pos) = aggs.iter().position(|a| *a == expr) {
        return Expr::Literal(values[pos].clone());
    }
    match expr {
        Expr::Unary { op, operand } => Expr::Unary {
            op: *op,
            operand: Box::new(substitute(operand, aggs, values)),
        },
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(substitute(left, aggs, values)),
            right: Box::new(substitute(right, aggs, values)),
        },
        Expr::IsNull { operand, negated } => Expr::IsNull {
            operand: Box::new(substitute(operand, aggs, values)),
            negated: *negated,
        },
        Expr::InList {
            operand,
            list,
            negated,
        } => Expr::InList {
            operand: Box::new(substitute(operand, aggs, values)),
            list: list.iter().map(|e| substitute(e, aggs, values)).collect(),
            negated: *negated,
        },
        Expr::Between {
            operand,
            low,
            high,
            negated,
        } => Expr::Between {
            operand: Box::new(substitute(operand, aggs, values)),
            low: Box::new(substitute(low, aggs, values)),
            high: Box::new(substitute(high, aggs, values)),
            negated: *negated,
        },
        Expr::Function { name, args } => Expr::Function {
            name: name.clone(),
            args: args.iter().map(|e| substitute(e, aggs, values)).collect(),
        },
        Expr::Case {
            branches,
            else_branch,
        } => Expr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| (substitute(c, aggs, values), substitute(v, aggs, values)))
                .collect(),
            else_branch: else_branch
                .as_ref()
                .map(|e| Box::new(substitute(e, aggs, values))),
        },
        other => other.clone(),
    }
}

fn aggregate_path(
    sel: &Select,
    layout: &Layout,
    rows: &[Row],
    params: &[Value],
    mut prof: Option<&mut ExecProfile>,
) -> Result<ResultSet> {
    let agg_t0 = prof.is_some().then(Instant::now);
    let projections = expand_projections(sel, layout)?;
    let columns: Vec<String> = projections.iter().map(|(n, _)| n.clone()).collect();

    // All aggregate expressions across projections, HAVING, ORDER BY.
    let mut aggs: Vec<&Expr> = Vec::new();
    for (_, e) in &projections {
        collect_aggregates(e, &mut aggs);
    }
    if let Some(h) = &sel.having {
        collect_aggregates(h, &mut aggs);
    }
    for o in &sel.order_by {
        collect_aggregates(&o.expr, &mut aggs);
    }

    // Group rows and accumulate aggregates, in parallel when the row count
    // justifies it. DISTINCT aggregates dedupe through per-group hash sets
    // that cannot be split across partitions, so they pin the serial path.
    let has_distinct = aggs
        .iter()
        .any(|a| matches!(a, Expr::Aggregate { distinct: true, .. }));
    let parallel = if has_distinct {
        None
    } else {
        pool::partitions(rows.len())
    };
    let mut agg_partitions = 0usize;
    let groups = match parallel {
        Some(ranges) => {
            telemetry::add("db.exec.parallel_aggregates", 1);
            agg_partitions = ranges.len();
            let aggs_ref = &aggs;
            let partials = pool::try_run(ranges.len(), |pi| {
                group_and_accumulate(sel, layout, rows, params, aggs_ref, ranges[pi].clone())
            })?;
            let _merge = telemetry::span("db.exec.merge");
            merge_group_partials(partials)?
        }
        None => group_and_accumulate(sel, layout, rows, params, &aggs, 0..rows.len())?,
    };
    let group_count = groups.len() as u64;

    let null_row: Row = vec![Value::Null; layout.width()];
    let mut out_rows = Vec::with_capacity(groups.len());
    for (_, rep_idx, accs) in &groups {
        let agg_values: Vec<Value> = accs.iter().map(|a| a.finish()).collect();

        // Representative row for evaluating group-key expressions. An empty
        // group (aggregate over zero rows, no GROUP BY) uses a NULL row.
        let rep: &Row = match rep_idx {
            Some(i) => &rows[*i],
            None => &null_row,
        };
        let env = Env::new(layout, rep, params);

        // HAVING
        if let Some(h) = &sel.having {
            let h_sub = substitute(h, &aggs, &agg_values);
            if !eval_condition(&h_sub, &env)? {
                continue;
            }
        }

        let mut out = Vec::with_capacity(projections.len());
        for (_, e) in &projections {
            let e_sub = substitute(e, &aggs, &agg_values);
            out.push(eval(&e_sub, &env)?);
        }

        // ORDER BY keys for this group (computed now, sorted below).
        let mut keys = Vec::with_capacity(sel.order_by.len());
        for o in &sel.order_by {
            let key = resolve_order_expr(&o.expr, &projections, &columns, &out)?;
            match key {
                Some(v) => keys.push(v),
                None => {
                    let e_sub = substitute(&o.expr, &aggs, &agg_values);
                    keys.push(eval(&e_sub, &env)?);
                }
            }
        }
        out_rows.push((keys, out));
    }

    // Aggregate time excludes the group sort, reported on its own line.
    let agg_ns = stage_ns(agg_t0);
    if let Some(p) = prof.as_deref_mut() {
        p.aggregate = Some((group_count, agg_partitions, agg_ns));
    }

    // Sort groups.
    if !sel.order_by.is_empty() {
        let _stage = telemetry::span("db.exec.sort");
        let t0 = prof.is_some().then(Instant::now);
        out_rows.sort_by(|a, b| {
            for (i, o) in sel.order_by.iter().enumerate() {
                let ord = a.0[i].total_cmp(&b.0[i]);
                let ord = if o.descending { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        if let Some(p) = prof {
            p.sort_ns = stage_ns(t0);
        }
    }

    Ok(ResultSet {
        columns,
        rows: out_rows.into_iter().map(|(_, r)| r).collect(),
        ..ResultSet::default()
    })
}

/// Grouping state: key values, index of the group's first (representative)
/// row, and one accumulator per aggregate expression.
type GroupState = (Vec<Value>, Option<usize>, Vec<Accumulator>);

fn new_accumulators(aggs: &[&Expr]) -> Vec<Accumulator> {
    aggs.iter()
        .map(|a| match a {
            Expr::Aggregate { func, distinct, .. } => Accumulator::new(*func, *distinct),
            _ => unreachable!("collect_aggregates only collects aggregates"),
        })
        .collect()
}

fn update_accumulators(accs: &mut [Accumulator], aggs: &[&Expr], env: &Env) -> Result<()> {
    for (ai, a) in aggs.iter().enumerate() {
        let Expr::Aggregate { arg, .. } = a else {
            unreachable!()
        };
        match arg {
            None => accs[ai].update(None)?,
            Some(e) => {
                let v = eval(e, env)?;
                accs[ai].update(Some(&v))?;
            }
        }
    }
    Ok(())
}

/// Group `rows[range]` and feed the aggregates, producing groups in
/// first-occurrence order with the range's first member as representative.
/// Called with the full range on the serial path, and once per partition on
/// the parallel path.
fn group_and_accumulate(
    sel: &Select,
    layout: &Layout,
    rows: &[Row],
    params: &[Value],
    aggs: &[&Expr],
    range: Range<usize>,
) -> Result<Vec<GroupState>> {
    let mut groups: Vec<GroupState> = Vec::new();
    if sel.group_by.is_empty() {
        let rep = (!range.is_empty()).then_some(range.start);
        let mut accs = new_accumulators(aggs);
        for i in range {
            let env = Env::new(layout, &rows[i], params);
            update_accumulators(&mut accs, aggs, &env)?;
        }
        groups.push((Vec::new(), rep, accs));
    } else {
        let mut group_index: HashMap<Vec<Value>, usize> = HashMap::new();
        for i in range {
            let env = Env::new(layout, &rows[i], params);
            let mut key = Vec::with_capacity(sel.group_by.len());
            for g in &sel.group_by {
                key.push(eval(g, &env)?);
            }
            let gi = match group_index.get(&key) {
                Some(&gi) => gi,
                None => {
                    group_index.insert(key.clone(), groups.len());
                    groups.push((key, Some(i), new_accumulators(aggs)));
                    groups.len() - 1
                }
            };
            update_accumulators(&mut groups[gi].2, aggs, &env)?;
        }
    }
    Ok(groups)
}

/// Merge per-partition group partials in partition-index order. Because
/// partitions cover ascending row ranges, first occurrence across the merge
/// equals global first occurrence — group output order and representative
/// rows match the serial path exactly.
fn merge_group_partials(partials: Vec<Vec<GroupState>>) -> Result<Vec<GroupState>> {
    let mut groups: Vec<GroupState> = Vec::new();
    let mut group_index: HashMap<Vec<Value>, usize> = HashMap::new();
    for partial in partials {
        for (key, rep, accs) in partial {
            match group_index.get(&key) {
                Some(&gi) => {
                    // Keep the earlier representative; merge accumulators.
                    for (dst, src) in groups[gi].2.iter_mut().zip(&accs) {
                        dst.merge(src)?;
                    }
                    if groups[gi].1.is_none() {
                        groups[gi].1 = rep;
                    }
                }
                None => {
                    group_index.insert(key.clone(), groups.len());
                    groups.push((key, rep, accs));
                }
            }
        }
    }
    Ok(groups)
}

// ---------------- ORDER BY helpers ----------------

/// Resolve ORDER BY shortcuts: ordinal (`ORDER BY 2`) or output alias.
/// Returns the already-computed output value when applicable.
fn resolve_order_expr(
    expr: &Expr,
    projections: &[(String, Expr)],
    columns: &[String],
    out_row: &[Value],
) -> Result<Option<Value>> {
    match expr {
        Expr::Literal(Value::Int(n)) => {
            let i = *n as usize;
            if i == 0 || i > columns.len() {
                return Err(DbError::Eval(format!(
                    "ORDER BY ordinal {n} out of range 1..={}",
                    columns.len()
                )));
            }
            Ok(Some(out_row[i - 1].clone()))
        }
        Expr::Column {
            table: None,
            column,
        } => {
            // Prefer an explicit output alias over a source column only if
            // the alias was explicitly given (it shadows).
            if let Some(pos) = projections
                .iter()
                .position(|(n, e)| n.eq_ignore_ascii_case(column) && !matches!(e, Expr::Column { column: c, .. } if c.eq_ignore_ascii_case(column)))
            {
                return Ok(Some(out_row[pos].clone()));
            }
            Ok(None)
        }
        _ => Ok(None),
    }
}

/// Evaluate ORDER BY keys for every row (plain path).
fn order_keys(
    order_by: &[OrderItem],
    layout: &Layout,
    rows: &[Row],
    params: &[Value],
    projections: &[(String, Expr)],
    _unused: Option<()>,
) -> Result<Vec<Vec<Value>>> {
    let columns: Vec<String> = projections.iter().map(|(n, _)| n.clone()).collect();
    let mut keys = Vec::with_capacity(rows.len());
    for row in rows {
        let env = Env::new(layout, row, params);
        let mut k = Vec::with_capacity(order_by.len());
        for o in order_by {
            // For ordinals/aliases we must project first.
            let needs_projection = matches!(&o.expr, Expr::Literal(Value::Int(_)))
                || matches!(&o.expr, Expr::Column { table: None, .. });
            if needs_projection {
                // compute the projected row lazily only when required
                let mut out = Vec::with_capacity(projections.len());
                for (_, e) in projections {
                    out.push(eval(e, &env)?);
                }
                if let Some(v) = resolve_order_expr(&o.expr, projections, &columns, &out)? {
                    k.push(v);
                    continue;
                }
            }
            k.push(eval(&o.expr, &env)?);
        }
        keys.push(k);
    }
    Ok(keys)
}

fn sort_indices(indices: &mut [usize], keys: &[Vec<Value>], order_by: &[OrderItem]) {
    indices.sort_by(|&a, &b| {
        for (i, o) in order_by.iter().enumerate() {
            let ord = keys[a][i].total_cmp(&keys[b][i]);
            let ord = if o.descending { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}
