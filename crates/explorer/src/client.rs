//! The PerfExplorer client handle.

use crate::protocol::{Request, Response};
use crate::server::AnalysisServer;
use crossbeam::channel::{bounded, Sender};
use std::time::Instant;

/// A client connected to an [`AnalysisServer`].
///
/// Cheap to clone; requests from multiple clients are served concurrently
/// by the server's worker pool.
#[derive(Clone)]
pub struct ExplorerClient {
    tx: Sender<(Request, Sender<Response>, Instant)>,
}

impl ExplorerClient {
    /// Connect to a server.
    pub fn connect(server: &AnalysisServer) -> ExplorerClient {
        ExplorerClient {
            tx: server.sender(),
        }
    }

    /// Send a request and block for the response.
    pub fn request(&self, request: Request) -> Response {
        let (rtx, rrx) = bounded(1);
        if self.tx.send((request, rtx, Instant::now())).is_err() {
            return Response::Error("analysis server is down".into());
        }
        rrx.recv()
            .unwrap_or_else(|_| Response::Error("analysis server dropped the request".into()))
    }

    /// Convenience: cluster a trial's threads by their per-event time
    /// breakdown of one metric, with automatic k selection.
    pub fn cluster(&self, trial_id: i64, metric: &str, max_k: usize) -> Response {
        self.request(Request::ClusterTrial {
            trial_id,
            features: crate::protocol::FeatureSpace::EventsOfMetric(metric.to_string()),
            k: None,
            max_k,
            pca_components: 0,
            method: crate::protocol::ClusterMethod::KMeans,
        })
    }

    /// Convenience: cluster a trial's threads by their hardware-counter
    /// vectors at one event (the Ahn & Vetter sPPM feature space).
    pub fn cluster_counters(&self, trial_id: i64, event: &str, max_k: usize) -> Response {
        self.request(Request::ClusterTrial {
            trial_id,
            features: crate::protocol::FeatureSpace::MetricsOfEvent(event.to_string()),
            k: None,
            max_k,
            pca_components: 0,
            method: crate::protocol::ClusterMethod::KMeans,
        })
    }

    /// Convenience: hierarchical (dendrogram) clustering of counter
    /// vectors, cut at the silhouette-selected k.
    pub fn cluster_hierarchical(&self, trial_id: i64, event: &str, max_k: usize) -> Response {
        self.request(Request::ClusterTrial {
            trial_id,
            features: crate::protocol::FeatureSpace::MetricsOfEvent(event.to_string()),
            k: None,
            max_k,
            pca_components: 0,
            method: crate::protocol::ClusterMethod::Hierarchical,
        })
    }

    /// Convenience: correlation matrix of a trial's metrics at one event.
    pub fn correlate(&self, trial_id: i64, event: &str) -> Response {
        self.request(Request::CorrelateMetrics {
            trial_id,
            event: event.to_string(),
        })
    }

    /// Convenience: browse a stored result.
    pub fn fetch(&self, settings_id: i64) -> Response {
        self.request(Request::FetchResult { settings_id })
    }

    /// Convenience: server-side speedup study over an experiment's trials.
    pub fn speedup(&self, experiment_id: i64, metric: &str) -> Response {
        self.request(Request::SpeedupStudy {
            experiment_id,
            metric: metric.to_string(),
        })
    }

    /// Convenience: scan an experiment's trial history for regressions.
    pub fn regressions(&self, experiment_id: i64, threshold: f64) -> Response {
        self.request(Request::RegressionScan {
            experiment_id,
            threshold,
        })
    }
}
