/root/repo/target/debug/deps/prop_analysis-8cbf07ceeec2585c.d: crates/analysis/tests/prop_analysis.rs

/root/repo/target/debug/deps/prop_analysis-8cbf07ceeec2585c: crates/analysis/tests/prop_analysis.rs

crates/analysis/tests/prop_analysis.rs:
