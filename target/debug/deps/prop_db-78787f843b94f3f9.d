/root/repo/target/debug/deps/prop_db-78787f843b94f3f9.d: crates/db/tests/prop_db.rs Cargo.toml

/root/repo/target/debug/deps/libprop_db-78787f843b94f3f9.rmeta: crates/db/tests/prop_db.rs Cargo.toml

crates/db/tests/prop_db.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
