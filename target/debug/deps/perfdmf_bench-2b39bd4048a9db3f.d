/root/repo/target/debug/deps/perfdmf_bench-2b39bd4048a9db3f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libperfdmf_bench-2b39bd4048a9db3f.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libperfdmf_bench-2b39bd4048a9db3f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
