/root/repo/target/debug/deps/cli-c31bd83d85db7964.d: tests/cli.rs

/root/repo/target/debug/deps/cli-c31bd83d85db7964: tests/cli.rs

tests/cli.rs:
