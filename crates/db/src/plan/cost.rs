//! Physical access selection: decide per [`ScanNode`] how its rows are
//! read — columnar kernels, index candidates, index-order, or a
//! sequential scan — using table and index statistics.
//!
//! This is a *cost* decision, not a rewrite: it runs with the optimizer
//! off too (matching the pre-IR engine, where index and columnar
//! dispatch were per-statement heuristics independent of any rewrites),
//! and it never changes what rows the plan produces, only how they are
//! found.

use super::ir::{base_scan_mut, Access, LogicalPlan};
use crate::column::CHUNK_ROWS;
use crate::error::Result;
use crate::exec::select::{collect_aggregates, has_bare_column, index_candidates};
use crate::exec::vector;
use crate::sql::ast::{Expr, Projection};
use crate::value::Value;

/// Annotate every scan in the plan with its access decision.
pub(crate) fn decide_access(
    root: &mut LogicalPlan<'_>,
    params: &[Value],
    had_subqueries: bool,
) -> Result<()> {
    if let Some((plan, reason)) = columnar_choice(root, params, had_subqueries)? {
        if let Some(scan) = base_scan_mut(root) {
            scan.access = Access::Columnar {
                plan: Box::new(plan),
                reason,
            };
        }
        return Ok(());
    }
    // Join right sides always scan sequentially in insertion order (an
    // index-ordered right side would permute join output), so only the
    // base scan gets an index decision.
    let Some(scan) = base_scan_mut(root) else {
        return Ok(());
    };
    if !matches!(scan.access, Access::Seq) {
        return Ok(()); // sort-elision preset an index-order scan
    }
    if scan.source.is_virtual() {
        return Ok(()); // per-statement materializations have no indexes
    }
    let choice = index_candidates(
        &scan.source,
        &scan.binding,
        &scan.layout1(),
        scan.index_filter.as_ref(),
        params,
    )?;
    if let Some(choice) = choice {
        scan.access = Access::Index(choice);
    }
    Ok(())
}

/// Decide between columnar, index, and sequential execution for an
/// eligible aggregate plan, using the same statistics thresholds the
/// pre-IR heuristic applied. Returns `None` when row execution (index
/// or seq) should run.
fn columnar_choice(
    root: &LogicalPlan<'_>,
    params: &[Value],
    had_subqueries: bool,
) -> Result<Option<(vector::ColumnarPlan, String)>> {
    // Subqueries resolve to literals before execution but EXPLAIN plans
    // them unresolved; decline in both so the paths agree.
    if had_subqueries {
        return Ok(None);
    }
    let mode = vector::columnar_mode();
    if mode == vector::ColumnarMode::Off {
        return Ok(None);
    }
    // Eligible shape: Limit?(Project(Aggregate[ungrouped](Filter?(Scan))))
    // — a single-table, ungrouped aggregate query whose projections are
    // pure aggregate expressions. Any other node (Sort, Distinct, Join)
    // breaks the pattern and keeps row execution.
    let node = match root {
        LogicalPlan::Limit { input, .. } => &**input,
        other => other,
    };
    let LogicalPlan::Project { input, projections } = node else {
        return Ok(None);
    };
    let LogicalPlan::Aggregate {
        input,
        group_by,
        having,
    } = &**input
    else {
        return Ok(None);
    };
    if !group_by.is_empty() || having.is_some() {
        return Ok(None);
    }
    let (scan, pred) = match &**input {
        LogicalPlan::Scan(s) => (s, None),
        LogicalPlan::Filter { input, predicate } => match &**input {
            LogicalPlan::Scan(s) => (s, Some(predicate)),
            _ => return Ok(None),
        },
        _ => return Ok(None),
    };
    if scan.source.is_virtual() {
        // Virtual tables are rematerialized per statement, so their chunk
        // caches would never pay off: always take the row path.
        return Ok(None);
    }
    if projections.is_empty()
        || !projections.iter().all(|p| match p {
            Projection::Expr { expr, .. } => expr.contains_aggregate() && !has_bare_column(expr),
            _ => false,
        })
    {
        return Ok(None);
    }
    let layout1 = scan.layout1();
    // Same collection order as the executor, so accumulator `i` belongs
    // to aggregate expression `i`.
    let mut aggs: Vec<&Expr> = Vec::new();
    for p in projections {
        if let Projection::Expr { expr, .. } = p {
            collect_aggregates(expr, &mut aggs);
        }
    }
    let Some(plan) = vector::plan_columnar(
        &scan.source.schema,
        &scan.binding,
        &layout1,
        &aggs,
        pred,
        params,
    ) else {
        return Ok(None);
    };
    let live = scan.source.len();
    let reason = match mode {
        vector::ColumnarMode::Force => "forced by PERFDMF_COLUMNAR".to_string(),
        vector::ColumnarMode::Auto => {
            match index_candidates(
                &scan.source,
                &scan.binding,
                &layout1,
                scan.index_filter.as_ref(),
                params,
            )? {
                Some(choice) => {
                    // A selective index beats scanning every chunk; a
                    // low-selectivity one does not.
                    if choice.ids.len().saturating_mul(4) <= live {
                        return Ok(None);
                    }
                    format!(
                        "index {} unselective: {} candidate(s) of {} live row(s), {} distinct key(s)",
                        choice.index_name,
                        choice.ids.len(),
                        live,
                        choice.distinct_keys
                    )
                }
                None => {
                    if live < CHUNK_ROWS {
                        return Ok(None); // small table: seq scan is fine
                    }
                    format!("no usable index, {live} live row(s) ≥ {CHUNK_ROWS} threshold")
                }
            }
        }
        vector::ColumnarMode::Off => unreachable!("handled above"),
    };
    Ok(Some((plan, reason)))
}
