//! # perfdmf-workload
//!
//! Synthetic workload generation — the stand-in for the paper's datasets
//! (EVH1 scalability runs, ASCI sPPM counter studies, Miranda on BG/L at
//! 8K/16K processors) and for the 2005 profiling tools whose output files
//! we cannot run today.
//!
//! * [`models`] — seeded ground-truth profile generators with the
//!   statistical shape of the original workloads.
//! * [`writers`] — emit those profiles as syntactically-faithful files in
//!   each supported tool format (TAU, gprof, mpiP, dynaprof, HPMtoolkit,
//!   PerfSuite XML, sPPM custom), so the importers are testable
//!   end-to-end against known data.

pub mod models;
pub mod writers;

pub use models::{BehaviorClass, Evh1Model, MirandaModel, RoutineSpec, SppmModel};
pub use writers::{
    dynaprof_report_text, gprof_report_text, hpm_file_text, mpip_report_text, psrun_xml_text,
    sppm_timing_text, tau_file_text, write_hpm_files, write_tau_directory,
};
