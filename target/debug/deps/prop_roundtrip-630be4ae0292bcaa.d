/root/repo/target/debug/deps/prop_roundtrip-630be4ae0292bcaa.d: crates/workload/tests/prop_roundtrip.rs

/root/repo/target/debug/deps/prop_roundtrip-630be4ae0292bcaa: crates/workload/tests/prop_roundtrip.rs

crates/workload/tests/prop_roundtrip.rs:
