//! Experiment E6: all profile formats import correctly against ground
//! truth, and the common XML exchange format round-trips losslessly.

use perfdmf::import::{detect_format, export_xml, import_xml, load_path, ProfileFormat};
use perfdmf::profile::{IntervalData, IntervalEvent, Metric, Profile, ThreadId};
use perfdmf::workload::{
    dynaprof_report_text, gprof_report_text, mpip_report_text, psrun_xml_text, sppm_timing_text,
    write_hpm_files, write_tau_directory, Evh1Model,
};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "pdmf_it_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn tau_directory_import_matches_ground_truth() {
    let truth = Evh1Model::default_mix(123).generate(4);
    let dir = tmpdir("tau");
    write_tau_directory(&truth, &dir).unwrap();
    assert_eq!(detect_format(&dir).unwrap(), ProfileFormat::Tau);
    let got = load_path(&dir).unwrap();
    assert_eq!(got.threads().len(), truth.threads().len());
    assert_eq!(got.events().len(), truth.events().len());
    let tm = truth.find_metric("GET_TIME_OF_DAY").unwrap();
    let gm = got.find_metric("GET_TIME_OF_DAY").unwrap();
    // every single data point survives
    for (ei, ev) in truth.events().iter().enumerate() {
        let ge = got.find_event(&ev.name).unwrap();
        for &t in truth.threads() {
            let a = truth
                .interval(perfdmf::profile::EventId(ei), t, tm)
                .unwrap();
            let b = got.interval(ge, t, gm).unwrap();
            assert!(
                (a.exclusive().unwrap_or(0.0) - b.exclusive().unwrap_or(0.0)).abs() < 1e-9,
                "{} @ {t}",
                ev.name
            );
            assert_eq!(a.calls(), b.calls());
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn every_text_format_sniffs_and_parses() {
    // one synthetic run rendered per format; each must autodetect + load
    let mut p = Profile::new("mini");
    let m = p.add_metric(Metric::measured("GET_TIME_OF_DAY"));
    let main = p.add_event(IntervalEvent::new("main", "TAU_USER"));
    let work = p.add_event(IntervalEvent::new("work", "COMPUTE"));
    p.add_threads([ThreadId::new(0, 0, 0), ThreadId::new(1, 0, 0)]);
    for &t in p.threads().to_vec().iter() {
        p.set_interval(main, t, m, IntervalData::new(10.0, 2.0, 1.0, 1.0));
        p.set_interval(work, t, m, IntervalData::new(8.0, 8.0, 16.0, 0.0));
    }
    let dir = tmpdir("sniff");

    let gprof = dir.join("report.gprof");
    std::fs::write(&gprof, gprof_report_text(&p, m, ThreadId::ZERO)).unwrap();
    assert_eq!(detect_format(&gprof).unwrap(), ProfileFormat::Gprof);
    assert_eq!(load_path(&gprof).unwrap().source_format, "gprof");

    let dyna = dir.join("probe.dynaprof");
    std::fs::write(&dyna, dynaprof_report_text(&p, m, ThreadId::ZERO)).unwrap();
    assert_eq!(detect_format(&dyna).unwrap(), ProfileFormat::Dynaprof);
    assert_eq!(load_path(&dyna).unwrap().source_format, "dynaprof");

    let psrun = dir.join("run.xml");
    std::fs::write(&psrun, psrun_xml_text(&p, ThreadId::ZERO)).unwrap();
    assert_eq!(detect_format(&psrun).unwrap(), ProfileFormat::PerfSuite);
    assert_eq!(load_path(&psrun).unwrap().source_format, "psrun");

    let sppm = dir.join("timing.txt");
    std::fs::write(&sppm, sppm_timing_text(&p, m)).unwrap();
    assert_eq!(detect_format(&sppm).unwrap(), ProfileFormat::Sppm);
    assert_eq!(load_path(&sppm).unwrap().threads().len(), 2);

    // mpiP needs its specific event shape
    let mut mp = Profile::new("mp");
    let mt = mp.add_metric(Metric::measured("MPIP_TIME"));
    let app = mp.add_event(IntervalEvent::new("Application", "MPIP_APP"));
    let send = mp.add_event(IntervalEvent::new("MPI_Send() site 1", "MPI"));
    mp.add_thread(ThreadId::ZERO);
    mp.set_interval(
        app,
        ThreadId::ZERO,
        mt,
        IntervalData::new(5.0, f64::NAN, 1.0, f64::NAN),
    );
    mp.set_interval(
        send,
        ThreadId::ZERO,
        mt,
        IntervalData::new(1.0, 1.0, 10.0, 0.0),
    );
    let mpip = dir.join("run.mpip");
    std::fs::write(&mpip, mpip_report_text(&mp, mt)).unwrap();
    assert_eq!(detect_format(&mpip).unwrap(), ProfileFormat::MpiP);
    assert_eq!(load_path(&mpip).unwrap().source_format, "mpip");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn hpm_directory_detection() {
    let mut p = Profile::new("h");
    let wall = p.add_metric(Metric::measured("HPM_WALL_CLOCK"));
    let e = p.add_event(IntervalEvent::new("main", "HPM"));
    p.add_threads([ThreadId::new(0, 0, 0), ThreadId::new(1, 0, 0)]);
    for &t in p.threads().to_vec().iter() {
        p.set_interval(e, t, wall, IntervalData::new(3.0, 3.0, 1.0, 0.0));
    }
    let dir = tmpdir("hpmdir");
    write_hpm_files(&p, &dir).unwrap();
    assert_eq!(detect_format(&dir).unwrap(), ProfileFormat::HpmToolkit);
    let got = load_path(&dir).unwrap();
    assert_eq!(got.threads().len(), 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn xml_exchange_lossless_on_generated_workloads() {
    for seed in [1u64, 2, 3] {
        let truth = Evh1Model::default_mix(seed).generate(3);
        let xml = export_xml(&truth);
        let back = import_xml(&xml).unwrap();
        assert_eq!(back.metrics(), truth.metrics());
        assert_eq!(back.events(), truth.events());
        assert_eq!(back.threads(), truth.threads());
        assert_eq!(back.data_point_count(), truth.data_point_count());
        // exact float round-trip on all points
        let tm = truth.find_metric("GET_TIME_OF_DAY").unwrap();
        let bm = back.find_metric("GET_TIME_OF_DAY").unwrap();
        for (e, t, d) in truth.iter_metric(tm) {
            let b = back.interval(e, t, bm).unwrap();
            assert_eq!(d.inclusive(), b.inclusive());
            assert_eq!(d.exclusive(), b.exclusive());
            assert_eq!(d.inclusive_percent(), b.inclusive_percent());
        }
    }
}

#[test]
fn mixed_directory_scan_with_filters() {
    use perfdmf::import::{load_directory_filtered, FileFilter};
    let dir = tmpdir("mixed");
    let mut p = Profile::new("x");
    let m = p.add_metric(Metric::measured("T"));
    let e = p.add_event(IntervalEvent::ungrouped("f"));
    p.add_thread(ThreadId::ZERO);
    p.set_interval(e, ThreadId::ZERO, m, IntervalData::new(1.0, 1.0, 1.0, 0.0));
    std::fs::write(
        dir.join("a.gprof"),
        gprof_report_text(&p, m, ThreadId::ZERO),
    )
    .unwrap();
    std::fs::write(
        dir.join("b.gprof"),
        gprof_report_text(&p, m, ThreadId::ZERO),
    )
    .unwrap();
    std::fs::write(dir.join("c.sppm"), sppm_timing_text(&p, m)).unwrap();
    let all = load_directory_filtered(&dir, &FileFilter::default()).unwrap();
    assert_eq!(all.len(), 3);
    let only_gprof = load_directory_filtered(&dir, &FileFilter::with_suffix(".gprof")).unwrap();
    assert_eq!(only_gprof.len(), 2);
    assert!(only_gprof.iter().all(|p| p.source_format == "gprof"));
    let prefixed = load_directory_filtered(&dir, &FileFilter::with_prefix("c")).unwrap();
    assert_eq!(prefixed.len(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}
