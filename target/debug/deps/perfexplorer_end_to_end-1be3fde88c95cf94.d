/root/repo/target/debug/deps/perfexplorer_end_to_end-1be3fde88c95cf94.d: tests/perfexplorer_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libperfexplorer_end_to_end-1be3fde88c95cf94.rmeta: tests/perfexplorer_end_to_end.rs Cargo.toml

tests/perfexplorer_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
