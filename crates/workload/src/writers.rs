//! Tool-format writers.
//!
//! We have no 2005 profilers or LLNL machines, so the workload crate
//! *writes* syntactically-faithful files in each supported tool format
//! from a ground-truth [`Profile`]. Every importer can then be tested
//! end-to-end against known data — the repository's substitute for real
//! tool output (see DESIGN.md, substitutions table).
//!
//! Format-specific restrictions are inherent to the tools themselves:
//! gprof / dynaprof / psrun describe a single process, so their writers
//! take a thread selector; HPMtoolkit and TAU write one file per task.

use perfdmf_profile::{EventId, MetricId, Profile, ThreadId};
use std::fmt::Write as _;
use std::path::Path;

/// Write a TAU profile directory (`profile.n.c.t`, or `MULTI__<metric>`
/// subdirectories when the profile has more than one metric).
pub fn write_tau_directory(profile: &Profile, dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let multi = profile.metrics().len() > 1;
    for (mi, metric) in profile.metrics().iter().enumerate() {
        let target = if multi {
            let sub = dir.join(format!("MULTI__{}", metric.name));
            std::fs::create_dir_all(&sub)?;
            sub
        } else {
            dir.to_path_buf()
        };
        // Render + write one file per thread on the worker pool; each file
        // is independent, so output is identical to the serial loop.
        let target = &target;
        perfdmf_pool::try_map(profile.threads(), |&thread| {
            let text = tau_file_text(profile, MetricId(mi), thread, mi == 0);
            let path = target.join(format!(
                "profile.{}.{}.{}",
                thread.node, thread.context, thread.thread
            ));
            std::fs::write(path, text)
        })?;
    }
    Ok(())
}

/// Render one TAU `profile.n.c.t` file.
pub fn tau_file_text(
    profile: &Profile,
    metric: MetricId,
    thread: ThreadId,
    include_userevents: bool,
) -> String {
    let mut rows = Vec::new();
    for (ei, event) in profile.events().iter().enumerate() {
        if let Some(d) = profile.interval(EventId(ei), thread, metric) {
            rows.push((event, d));
        }
    }
    let mut out = String::with_capacity(rows.len() * 80);
    let metric_name = &profile.metric(metric).name;
    let _ = writeln!(
        out,
        "{} templated_functions_MULTI_{}",
        rows.len(),
        metric_name
    );
    out.push_str("# Name Calls Subrs Excl Incl ProfileCalls #\n");
    for (event, d) in rows {
        let _ = writeln!(
            out,
            "\"{}\" {} {} {} {} 0 GROUP=\"{}\"",
            event.name,
            d.calls().unwrap_or(0.0),
            d.subroutines().unwrap_or(0.0),
            d.exclusive().unwrap_or(0.0),
            d.inclusive().unwrap_or(0.0),
            event.group
        );
    }
    out.push_str("0 aggregates\n");
    if include_userevents {
        let atomics: Vec<_> = profile
            .iter_atomic()
            .filter(|(_, t, _)| *t == thread)
            .collect();
        let _ = writeln!(out, "{} userevents", atomics.len());
        if !atomics.is_empty() {
            out.push_str("# eventname numevents max min mean sumsqr\n");
            for (ae, _, d) in atomics {
                // reconstruct sum of squares from the moments
                let n = d.count as f64;
                let var = d.stddev().map(|s| s * s).unwrap_or(0.0);
                let sumsqr = var * (n - 1.0).max(0.0) + n * d.mean * d.mean;
                let _ = writeln!(
                    out,
                    "\"{}\" {} {} {} {} {}",
                    profile.atomic_events()[ae.0].name,
                    d.count,
                    d.max,
                    d.min,
                    d.mean,
                    sumsqr
                );
            }
        }
    } else {
        out.push_str("0 userevents\n");
    }
    out
}

/// Render a gprof text report for one thread of one metric (gprof models a
/// single process; times are interpreted as seconds).
pub fn gprof_report_text(profile: &Profile, metric: MetricId, thread: ThreadId) -> String {
    let mut rows: Vec<(&str, f64, f64, f64)> = Vec::new(); // name, self, incl, calls
    let mut total_self = 0.0;
    for (ei, event) in profile.events().iter().enumerate() {
        if let Some(d) = profile.interval(EventId(ei), thread, metric) {
            let self_s = d.exclusive().unwrap_or(0.0);
            total_self += self_s;
            rows.push((
                &event.name,
                self_s,
                d.inclusive().unwrap_or(self_s),
                d.calls().unwrap_or(0.0),
            ));
        }
    }
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut out = String::new();
    out.push_str("Flat profile:\n\n");
    out.push_str("Each sample counts as 0.01 seconds.\n");
    out.push_str("  %   cumulative   self              self     total\n");
    out.push_str(" time   seconds   seconds    calls  ms/call  ms/call  name\n");
    let mut cumulative = 0.0;
    for (name, self_s, incl, calls) in &rows {
        cumulative += self_s;
        let pct = if total_self > 0.0 {
            100.0 * self_s / total_self
        } else {
            0.0
        };
        let (self_ms, total_ms) = if *calls > 0.0 {
            (self_s * 1000.0 / calls, incl * 1000.0 / calls)
        } else {
            (0.0, 0.0)
        };
        let _ = writeln!(
            out,
            "{pct:6.2} {cumulative:10.2} {self_s:9.4} {calls:8.0} {self_ms:8.2} {total_ms:8.2}  {name}"
        );
    }
    out.push_str("\n                     Call graph\n\n");
    out.push_str("index % time    self  children    called     name\n");
    for (i, (name, self_s, incl, calls)) in rows.iter().enumerate() {
        let children = (incl - self_s).max(0.0);
        let pct = if total_self > 0.0 {
            100.0 * incl / total_self
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "[{idx}] {pct:8.1} {self_s:7.4} {children:8.4} {calls:9.0}         {name} [{idx}]",
            idx = i + 1
        );
    }
    out
}

/// Render an mpiP report. Threads become MPI tasks; events in group
/// `MPI` named `MPI_<Op>() site <n>` become callsites; the event holding
/// each task's total time must be named `Application`.
pub fn mpip_report_text(profile: &Profile, metric: MetricId) -> String {
    let mut out = String::new();
    out.push_str("@ mpiP\n@ Command : synthetic workload\n@ Version : 3.4.1\n");
    out.push_str("@--------------------------------------------------------------\n");
    out.push_str("@--- MPI Time (seconds) ---------------------------------------\n");
    out.push_str("@--------------------------------------------------------------\n");
    out.push_str("Task    AppTime    MPITime     MPI%\n");
    let app = profile.find_event("Application");
    for &thread in profile.threads() {
        let app_time = app
            .and_then(|e| profile.interval(e, thread, metric))
            .and_then(|d| d.inclusive())
            .unwrap_or(0.0);
        let mpi_time: f64 = profile
            .events()
            .iter()
            .enumerate()
            .filter(|(_, e)| e.group == "MPI")
            .filter_map(|(ei, _)| profile.interval(EventId(ei), thread, metric))
            .filter_map(|d| d.exclusive())
            .sum();
        let pct = if app_time > 0.0 {
            100.0 * mpi_time / app_time
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:>4} {:>10.4} {:>10.4} {:>8.2}",
            thread.node, app_time, mpi_time, pct
        );
    }
    out.push_str("@--------------------------------------------------------------\n");
    out.push_str("@--- Callsite Time statistics (all, milliseconds): x ----------\n");
    out.push_str("@--------------------------------------------------------------\n");
    out.push_str("Name              Site Rank  Count      Max     Mean      Min   App%   MPI%\n");
    for (ei, event) in profile.events().iter().enumerate() {
        if event.group != "MPI" {
            continue;
        }
        // "MPI_Send() site 1" → op = Send, site = 1
        let Some(op) = event
            .name
            .strip_prefix("MPI_")
            .and_then(|s| s.split("()").next())
        else {
            continue;
        };
        let site = event.name.split("site ").nth(1).unwrap_or("1");
        for &thread in profile.threads() {
            let Some(d) = profile.interval(EventId(ei), thread, metric) else {
                continue;
            };
            let count = d.calls().unwrap_or(1.0).max(1.0);
            let mean_ms = d.exclusive().unwrap_or(0.0) * 1000.0 / count;
            let _ = writeln!(
                out,
                "{op:<17} {site:>4} {rank:>4} {count:>6.0} {max:>8.3} {mean:>8.3} {min:>8.3} {apct:>6.1} {mpct:>6.1}",
                rank = thread.node,
                max = mean_ms * 1.5,
                mean = mean_ms,
                min = mean_ms * 0.5,
                apct = 0.0,
                mpct = 0.0,
            );
        }
    }
    out
}

/// Render a dynaprof report for one thread.
pub fn dynaprof_report_text(profile: &Profile, metric: MetricId, thread: ThreadId) -> String {
    let mut out = String::new();
    out.push_str("dynaprof output\nprobe: papiprobe\n");
    let _ = writeln!(out, "metric: {}", profile.metric(metric).name);
    let _ = writeln!(out, "thread: {}", thread.thread);
    out.push_str("name               calls   exclusive     inclusive\n");
    for (ei, event) in profile.events().iter().enumerate() {
        if let Some(d) = profile.interval(EventId(ei), thread, metric) {
            let _ = writeln!(
                out,
                "{} {} {} {}",
                event.name,
                d.calls().unwrap_or(0.0),
                d.exclusive().unwrap_or(0.0),
                d.inclusive().unwrap_or(0.0)
            );
        }
    }
    out
}

/// Write HPMtoolkit `perfhpm<task>.<pid>` files, one per node. Events
/// become instrumented sections; every metric except wall-clock becomes a
/// counter line; the metric named `HPM_WALL_CLOCK` (if present) supplies
/// the section wall-clock time.
pub fn write_hpm_files(profile: &Profile, dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for &thread in profile.threads() {
        let text = hpm_file_text(profile, thread);
        std::fs::write(
            dir.join(format!("perfhpm{:04}.{}", thread.node, 1000 + thread.node)),
            text,
        )?;
    }
    Ok(())
}

/// Render one HPMtoolkit task file.
pub fn hpm_file_text(profile: &Profile, thread: ThreadId) -> String {
    let mut out = String::new();
    out.push_str("libhpm (Version 2.5.3) summary\n\n");
    out.push_str("########  Resource Usage Statistics  ########\n\n");
    let wall = profile.find_metric("HPM_WALL_CLOCK");
    for (ei, event) in profile.events().iter().enumerate() {
        let e = EventId(ei);
        // gather any defined metric for this section
        let mut lines = Vec::new();
        let mut count = 1.0;
        let mut wall_secs = None;
        for (mi, metric) in profile.metrics().iter().enumerate() {
            let Some(d) = profile.interval(e, thread, MetricId(mi)) else {
                continue;
            };
            if let Some(c) = d.calls() {
                count = c;
            }
            if Some(MetricId(mi)) == wall {
                wall_secs = d.inclusive();
            } else {
                lines.push(format!(
                    " {} ({}) : {}",
                    metric.name,
                    metric.name,
                    d.inclusive().unwrap_or(0.0)
                ));
            }
        }
        if lines.is_empty() && wall_secs.is_none() {
            continue;
        }
        let _ = writeln!(
            out,
            "Instrumented section: {} - Label: {}  process: {}",
            ei + 1,
            event.name,
            1000 + thread.node
        );
        let _ = writeln!(out, " Count: {count}");
        if let Some(w) = wall_secs {
            let _ = writeln!(out, " Wall Clock Time: {w} seconds");
        }
        out.push('\n');
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// Render a PerfSuite psrun XML document for one thread: whole-process
/// counters of the first event that has data.
pub fn psrun_xml_text(profile: &Profile, thread: ThreadId) -> String {
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<hwpcprofilereport>\n");
    out.push_str("  <hwpcreport class=\"PAPI\" version=\"1.0\">\n");
    let event_name = profile
        .events()
        .first()
        .map(|e| e.name.as_str())
        .unwrap_or("program");
    let _ = writeln!(out, "    <executable name=\"{event_name}\"/>");
    out.push_str("    <hwpceventlist class=\"PAPI\">\n");
    if let Some(e) = profile.events().first().map(|_| EventId(0)) {
        for (mi, metric) in profile.metrics().iter().enumerate() {
            if let Some(d) = profile.interval(e, thread, MetricId(mi)) {
                let _ = writeln!(
                    out,
                    "      <hwpcevent name=\"{}\" type=\"preset\">{}</hwpcevent>",
                    metric.name,
                    d.inclusive().unwrap_or(0.0)
                );
            }
        }
    }
    out.push_str("    </hwpceventlist>\n  </hwpcreport>\n</hwpcprofilereport>\n");
    out
}

/// Render the sPPM self-instrumented timing format.
pub fn sppm_timing_text(profile: &Profile, metric: MetricId) -> String {
    let mut out = String::new();
    out.push_str("# sppm self-instrumented timing\n# rank routine calls seconds\n");
    for (ei, event) in profile.events().iter().enumerate() {
        for &thread in profile.threads() {
            if let Some(d) = profile.interval(EventId(ei), thread, metric) {
                let name = event.name.replace(' ', "_");
                let _ = writeln!(
                    out,
                    "{} {} {} {}",
                    thread.node,
                    name,
                    d.calls().unwrap_or(1.0),
                    d.exclusive().unwrap_or(0.0)
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfdmf_profile::{IntervalData, IntervalEvent, Metric};

    fn two_thread_profile() -> Profile {
        let mut p = Profile::new("w");
        let m = p.add_metric(Metric::measured("GET_TIME_OF_DAY"));
        let main = p.add_event(IntervalEvent::new("main", "TAU_USER"));
        let kern = p.add_event(IntervalEvent::new("kernel", "COMPUTE"));
        p.add_threads([ThreadId::new(0, 0, 0), ThreadId::new(1, 0, 0)]);
        for (i, &t) in p.threads().to_vec().iter().enumerate() {
            p.set_interval(main, t, m, IntervalData::new(10.0, 2.0, 1.0, 1.0));
            p.set_interval(
                kern,
                t,
                m,
                IntervalData::new(8.0 - i as f64, 8.0 - i as f64, 4.0, 0.0),
            );
        }
        p
    }

    #[test]
    fn tau_roundtrip_through_importer() {
        let p = two_thread_profile();
        let dir = std::env::temp_dir().join(format!(
            "pdmf_wtau_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        write_tau_directory(&p, &dir).unwrap();
        let back = perfdmf_import::load_path(&dir).unwrap();
        assert_eq!(back.threads().len(), 2);
        assert_eq!(back.events().len(), 2);
        let m = back.find_metric("GET_TIME_OF_DAY").unwrap();
        let k = back.find_event("kernel").unwrap();
        assert_eq!(
            back.interval(k, ThreadId::new(1, 0, 0), m)
                .unwrap()
                .exclusive(),
            Some(7.0)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gprof_roundtrip() {
        let p = two_thread_profile();
        let m = p.find_metric("GET_TIME_OF_DAY").unwrap();
        let text = gprof_report_text(&p, m, ThreadId::ZERO);
        let mut back = Profile::new("g");
        perfdmf_import::gprof::parse_gprof_text(&text, ThreadId::ZERO, &mut back).unwrap();
        let gm = back.find_metric("GPROF_TIME").unwrap();
        let k = back.find_event("kernel").unwrap();
        let d = back.interval(k, ThreadId::ZERO, gm).unwrap();
        assert!((d.exclusive().unwrap() - 8.0).abs() < 0.001);
        assert_eq!(d.calls(), Some(4.0));
        let main = back.find_event("main").unwrap();
        let d = back.interval(main, ThreadId::ZERO, gm).unwrap();
        assert!((d.inclusive().unwrap() - 10.0).abs() < 0.01);
    }

    #[test]
    fn dynaprof_roundtrip() {
        let p = two_thread_profile();
        let m = p.find_metric("GET_TIME_OF_DAY").unwrap();
        let text = dynaprof_report_text(&p, m, ThreadId::ZERO);
        let mut back = Profile::new("d");
        perfdmf_import::dynaprof::parse_dynaprof_text(&text, &mut back).unwrap();
        let dm = back.find_metric("GET_TIME_OF_DAY").unwrap();
        let k = back.find_event("kernel").unwrap();
        assert_eq!(
            back.interval(k, ThreadId::ZERO, dm).unwrap().inclusive(),
            Some(8.0)
        );
    }

    #[test]
    fn psrun_roundtrip() {
        let mut p = Profile::new("c");
        let cyc = p.add_metric(Metric::measured("PAPI_TOT_CYC"));
        let fp = p.add_metric(Metric::measured("PAPI_FP_OPS"));
        let e = p.add_event(IntervalEvent::new("sppm", "PSRUN"));
        p.add_thread(ThreadId::ZERO);
        p.set_interval(
            e,
            ThreadId::ZERO,
            cyc,
            IntervalData::new(1e10, 1e10, 1.0, 0.0),
        );
        p.set_interval(e, ThreadId::ZERO, fp, IntervalData::new(2e9, 2e9, 1.0, 0.0));
        let text = psrun_xml_text(&p, ThreadId::ZERO);
        let mut back = Profile::new("b");
        perfdmf_import::psrun::parse_psrun_text(&text, ThreadId::ZERO, &mut back).unwrap();
        let m = back.find_metric("PAPI_FP_OPS").unwrap();
        let ev = back.find_event("sppm").unwrap();
        assert_eq!(
            back.interval(ev, ThreadId::ZERO, m).unwrap().inclusive(),
            Some(2e9)
        );
    }

    #[test]
    fn sppm_roundtrip() {
        let p = two_thread_profile();
        let m = p.find_metric("GET_TIME_OF_DAY").unwrap();
        let text = sppm_timing_text(&p, m);
        let mut back = Profile::new("s");
        perfdmf_import::sppm::parse_sppm_text(&text, &mut back).unwrap();
        assert_eq!(back.threads().len(), 2);
        let sm = back.find_metric("SPPM_TIME").unwrap();
        let k = back.find_event("kernel").unwrap();
        assert_eq!(
            back.interval(k, ThreadId::new(0, 0, 0), sm)
                .unwrap()
                .exclusive(),
            Some(8.0)
        );
    }

    #[test]
    fn hpm_roundtrip() {
        let mut p = Profile::new("h");
        let wall = p.add_metric(Metric::measured("HPM_WALL_CLOCK"));
        let fpu = p.add_metric(Metric::measured("PM_FPU0_CMPL"));
        let e = p.add_event(IntervalEvent::new("main", "HPM"));
        p.add_threads([ThreadId::new(0, 0, 0), ThreadId::new(1, 0, 0)]);
        for &t in p.threads().to_vec().iter() {
            p.set_interval(e, t, wall, IntervalData::new(12.5, 12.5, 1.0, 0.0));
            p.set_interval(e, t, fpu, IntervalData::new(1e8, 1e8, 1.0, 0.0));
        }
        let dir = std::env::temp_dir().join(format!(
            "pdmf_whpm_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        write_hpm_files(&p, &dir).unwrap();
        let back = perfdmf_import::hpm::load_hpm_directory(&dir).unwrap();
        assert_eq!(back.threads().len(), 2);
        let m = back.find_metric("PM_FPU0_CMPL").unwrap();
        let ev = back.find_event("main").unwrap();
        assert_eq!(
            back.interval(ev, ThreadId::new(1, 0, 0), m)
                .unwrap()
                .inclusive(),
            Some(1e8)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mpip_roundtrip() {
        // Build an mpiP-shaped profile.
        let mut p = Profile::new("m");
        let m = p.add_metric(Metric::measured("MPIP_TIME"));
        let app = p.add_event(IntervalEvent::new("Application", "MPIP_APP"));
        let send = p.add_event(IntervalEvent::new("MPI_Send() site 1", "MPI"));
        p.add_threads([ThreadId::new(0, 0, 0), ThreadId::new(1, 0, 0)]);
        for (i, &t) in p.threads().to_vec().iter().enumerate() {
            p.set_interval(
                app,
                t,
                m,
                IntervalData::new(10.0 + i as f64, f64::NAN, 1.0, f64::NAN),
            );
            p.set_interval(send, t, m, IntervalData::new(2.0, 2.0, 20.0, 0.0));
        }
        let text = mpip_report_text(&p, m);
        let mut back = Profile::new("b");
        perfdmf_import::mpip::parse_mpip_text(&text, &mut back).unwrap();
        let bm = back.find_metric("MPIP_TIME").unwrap();
        let bapp = back.find_event("Application").unwrap();
        assert_eq!(
            back.interval(bapp, ThreadId::new(1, 0, 0), bm)
                .unwrap()
                .inclusive(),
            Some(11.0)
        );
        let bsend = back.find_event("MPI_Send() site 1").unwrap();
        let d = back.interval(bsend, ThreadId::new(0, 0, 0), bm).unwrap();
        assert!((d.exclusive().unwrap() - 2.0).abs() < 1e-9);
        assert_eq!(d.calls(), Some(20.0));
    }
}
