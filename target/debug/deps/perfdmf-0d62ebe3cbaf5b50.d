/root/repo/target/debug/deps/perfdmf-0d62ebe3cbaf5b50.d: src/bin/perfdmf.rs

/root/repo/target/debug/deps/perfdmf-0d62ebe3cbaf5b50: src/bin/perfdmf.rs

src/bin/perfdmf.rs:
