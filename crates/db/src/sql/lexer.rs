//! SQL tokenizer.

use crate::error::{DbError, Result};

/// A lexical token with its byte position in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub pos: usize,
}

/// Token kinds. Keywords are recognized case-insensitively and carried as
/// uppercase `Keyword`s; everything else that looks like a name is an
/// `Ident`.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Keyword(String),
    Ident(String),
    /// `"quoted identifier"` (case preserved).
    QuotedIdent(String),
    Int(i64),
    Float(f64),
    Str(String),
    /// `?` positional parameter.
    Param,
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    /// `||` string concatenation.
    Concat,
    Eof,
}

/// Reserved words recognized as keywords.
const KEYWORDS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "HAVING",
    "ORDER",
    "ASC",
    "DESC",
    "LIMIT",
    "OFFSET",
    "INSERT",
    "INTO",
    "VALUES",
    "UPDATE",
    "SET",
    "DELETE",
    "CREATE",
    "TABLE",
    "DROP",
    "ALTER",
    "ADD",
    "COLUMN",
    "INDEX",
    "ON",
    "PRIMARY",
    "KEY",
    "NOT",
    "NULL",
    "UNIQUE",
    "DEFAULT",
    "REFERENCES",
    "FOREIGN",
    "AUTO_INCREMENT",
    "AND",
    "OR",
    "IN",
    "IS",
    "LIKE",
    "BETWEEN",
    "AS",
    "JOIN",
    "INNER",
    "LEFT",
    "OUTER",
    "CROSS",
    "DISTINCT",
    "BEGIN",
    "COMMIT",
    "ROLLBACK",
    "TRANSACTION",
    "IF",
    "EXISTS",
    "CASE",
    "WHEN",
    "THEN",
    "ELSE",
    "END",
    "TRUE",
    "FALSE",
    "CAST",
    "UNION",
    "ALL",
    "EXPLAIN",
    "ANALYZE",
];

/// Tokenize SQL text.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        // Decode the full char so multi-byte UTF-8 never gets sliced
        // mid-sequence (it can only legally appear in strings/identifiers).
        let c = sql[i..].chars().next().expect("i is on a char boundary");
        let pos = i;
        match c {
            c if c.is_ascii_whitespace() => {
                i += 1;
                continue;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let end = sql[i + 2..].find("*/").ok_or(DbError::Parse {
                    message: "unterminated block comment".into(),
                    position: pos,
                })?;
                i += 2 + end + 2;
                continue;
            }
            '\'' => {
                // string literal, '' escapes a quote
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    match bytes.get(j) {
                        None => {
                            return Err(DbError::Parse {
                                message: "unterminated string literal".into(),
                                position: pos,
                            })
                        }
                        Some(b'\'') if bytes.get(j + 1) == Some(&b'\'') => {
                            s.push('\'');
                            j += 2;
                        }
                        Some(b'\'') => {
                            j += 1;
                            break;
                        }
                        Some(_) => {
                            // push full UTF-8 char
                            let ch_start = j;
                            let ch = sql[ch_start..].chars().next().unwrap();
                            s.push(ch);
                            j += ch.len_utf8();
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    pos,
                });
                i = j;
                continue;
            }
            '"' => {
                let end = sql[i + 1..].find('"').ok_or(DbError::Parse {
                    message: "unterminated quoted identifier".into(),
                    position: pos,
                })?;
                tokens.push(Token {
                    kind: TokenKind::QuotedIdent(sql[i + 1..i + 1 + end].to_string()),
                    pos,
                });
                i += end + 2;
                continue;
            }
            c if c.is_ascii_digit()
                || (c == '.' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())) =>
            {
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() {
                    let b = bytes[j] as char;
                    if b.is_ascii_digit() {
                        j += 1;
                    } else if b == '.' && !is_float {
                        is_float = true;
                        j += 1;
                    } else if (b == 'e' || b == 'E')
                        && j > i
                        && bytes
                            .get(j + 1)
                            .is_some_and(|&n| n.is_ascii_digit() || n == b'+' || n == b'-')
                    {
                        is_float = true;
                        j += 2;
                        while j < bytes.len() && bytes[j].is_ascii_digit() {
                            j += 1;
                        }
                        break;
                    } else {
                        break;
                    }
                }
                let text = &sql[i..j];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| DbError::Parse {
                        message: format!("bad numeric literal {text:?}"),
                        position: pos,
                    })?)
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => TokenKind::Int(v),
                        Err(_) => TokenKind::Float(text.parse().map_err(|_| DbError::Parse {
                            message: format!("bad numeric literal {text:?}"),
                            position: pos,
                        })?),
                    }
                };
                tokens.push(Token { kind, pos });
                i = j;
                continue;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                for (off, ch) in sql[i..].char_indices() {
                    if ch.is_alphanumeric() || ch == '_' {
                        j = i + off + ch.len_utf8();
                    } else {
                        break;
                    }
                }
                let word = &sql[i..j];
                let upper = word.to_ascii_uppercase();
                let kind = if KEYWORDS.contains(&upper.as_str()) {
                    TokenKind::Keyword(upper)
                } else {
                    TokenKind::Ident(word.to_string())
                };
                tokens.push(Token { kind, pos });
                i = j;
                continue;
            }
            '?' => {
                tokens.push(Token {
                    kind: TokenKind::Param,
                    pos,
                });
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    pos,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    pos,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    pos,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    pos,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semicolon,
                    pos,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    pos,
                });
                i += 1;
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    pos,
                });
                i += 1;
            }
            '-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    pos,
                });
                i += 1;
            }
            '/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    pos,
                });
                i += 1;
            }
            '%' => {
                tokens.push(Token {
                    kind: TokenKind::Percent,
                    pos,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    pos,
                });
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token {
                    kind: TokenKind::NotEq,
                    pos,
                });
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token {
                        kind: TokenKind::LtEq,
                        pos,
                    });
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token {
                        kind: TokenKind::NotEq,
                        pos,
                    });
                    i += 2;
                }
                _ => {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        pos,
                    });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::GtEq,
                        pos,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        pos,
                    });
                    i += 1;
                }
            }
            '|' if bytes.get(i + 1) == Some(&b'|') => {
                tokens.push(Token {
                    kind: TokenKind::Concat,
                    pos,
                });
                i += 2;
            }
            other => {
                return Err(DbError::Parse {
                    message: format!("unexpected character {other:?}"),
                    position: pos,
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        pos: sql.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        use TokenKind::*;
        assert_eq!(
            kinds("select name From trial"),
            vec![
                Keyword("SELECT".into()),
                Ident("name".into()),
                Keyword("FROM".into()),
                Ident("trial".into()),
                Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        use TokenKind::*;
        assert_eq!(
            kinds("1 2.5 .5 1e3 2E-2 9223372036854775807"),
            vec![
                Int(1),
                Float(2.5),
                Float(0.5),
                Float(1000.0),
                Float(0.02),
                Int(i64::MAX),
                Eof
            ]
        );
        // overflowing int falls back to float
        assert!(matches!(kinds("99999999999999999999")[0], Float(_)));
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::Str("it's".into()), TokenKind::Eof]
        );
        assert!(tokenize("'open").is_err());
    }

    #[test]
    fn operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("a<=b <> c != d || e"),
            vec![
                Ident("a".into()),
                LtEq,
                Ident("b".into()),
                NotEq,
                Ident("c".into()),
                NotEq,
                Ident("d".into()),
                Concat,
                Ident("e".into()),
                Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("1 -- line\n 2 /* block\nstill */ 3"),
            vec![
                TokenKind::Int(1),
                TokenKind::Int(2),
                TokenKind::Int(3),
                TokenKind::Eof
            ]
        );
        assert!(tokenize("/* open").is_err());
    }

    #[test]
    fn quoted_identifiers() {
        assert_eq!(
            kinds(r#""Mixed Case Col""#),
            vec![
                TokenKind::QuotedIdent("Mixed Case Col".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn params_and_punct() {
        use TokenKind::*;
        assert_eq!(
            kinds("(?, t.x);"),
            vec![
                LParen,
                Param,
                Comma,
                Ident("t".into()),
                Dot,
                Ident("x".into()),
                RParen,
                Semicolon,
                Eof
            ]
        );
    }

    #[test]
    fn unexpected_char() {
        assert!(tokenize("SELECT @").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(
            kinds("'λ calculus'"),
            vec![TokenKind::Str("λ calculus".into()), TokenKind::Eof]
        );
    }
}
