//! Data-source abstraction, format autodetection, and directory scanning.
//!
//! This is the Rust shape of the paper's `DataSession` input half: "The
//! profile input component is responsible for obtaining performance data
//! from a wide variety of sources, and converting it to PerfDMF's internal
//! representation. It does so by creating a profile DataSession object
//! specific to the profile format being imported." (§4)
//!
//! PerfDMF also "provides support for parsing a directory of files, or a
//! subset of files in a directory that start with a particular prefix or
//! end with a particular suffix" — see [`FileFilter`] and
//! [`load_directory_filtered`].

use crate::error::{ImportError, Result};
use crate::{dynaprof, gprof, hpm, mpip, psrun, sppm, tau, xml_format};
use perfdmf_profile::{Profile, ThreadId};
use perfdmf_telemetry as telemetry;
use std::path::Path;

/// The profile formats PerfDMF can import.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfileFormat {
    /// TAU `profile.n.c.t` files (directory).
    Tau,
    /// gprof text report.
    Gprof,
    /// mpiP text report.
    MpiP,
    /// dynaprof probe report.
    Dynaprof,
    /// IBM HPMtoolkit `perfhpm*` files (file or directory).
    HpmToolkit,
    /// PerfSuite `psrun` XML.
    PerfSuite,
    /// sPPM self-instrumented timing (custom parser, paper §5.3).
    Sppm,
    /// PerfDMF common XML exchange format.
    PerfDmfXml,
}

impl ProfileFormat {
    /// All supported formats.
    pub const ALL: [ProfileFormat; 8] = [
        ProfileFormat::Tau,
        ProfileFormat::Gprof,
        ProfileFormat::MpiP,
        ProfileFormat::Dynaprof,
        ProfileFormat::HpmToolkit,
        ProfileFormat::PerfSuite,
        ProfileFormat::Sppm,
        ProfileFormat::PerfDmfXml,
    ];

    /// Stable lowercase name (`tau`, `gprof`, ...).
    pub fn name(&self) -> &'static str {
        match self {
            ProfileFormat::Tau => "tau",
            ProfileFormat::Gprof => "gprof",
            ProfileFormat::MpiP => "mpip",
            ProfileFormat::Dynaprof => "dynaprof",
            ProfileFormat::HpmToolkit => "hpmtoolkit",
            ProfileFormat::PerfSuite => "psrun",
            ProfileFormat::Sppm => "sppm",
            ProfileFormat::PerfDmfXml => "perfdmf-xml",
        }
    }

    /// Look up a format by name.
    pub fn by_name(name: &str) -> Option<ProfileFormat> {
        Self::ALL.iter().copied().find(|f| f.name() == name)
    }

    /// Does a text sample look like this format?
    pub fn sniff_text(&self, sample: &str) -> bool {
        match self {
            ProfileFormat::Tau => sample
                .lines()
                .next()
                .is_some_and(|l| l.contains("templated_functions")),
            ProfileFormat::Gprof => sample.contains("Flat profile"),
            ProfileFormat::MpiP => sample.starts_with("@ mpiP") || sample.contains("@--- MPI Time"),
            ProfileFormat::Dynaprof => sample.to_ascii_lowercase().starts_with("dynaprof"),
            ProfileFormat::HpmToolkit => sample.contains("libhpm"),
            ProfileFormat::PerfSuite => {
                sample.contains("<hwpcprofilereport") || sample.contains("<hwpcreport")
            }
            ProfileFormat::Sppm => sample.starts_with("# sppm"),
            ProfileFormat::PerfDmfXml => sample.contains("<perfdmf_profile"),
        }
    }

    /// Load a path (file or directory, as appropriate) in this format.
    ///
    /// Each call records telemetry: an `import.load` span, a per-format
    /// `import.parse_ns.<name>` latency histogram, and `import.files` /
    /// `import.bytes_read` (total and per-format) counters. With causal
    /// tracing on, concurrent shard parses adopt this span's trace
    /// context, so a directory import traces as one cross-thread tree.
    pub fn load(&self, path: &Path) -> Result<Profile> {
        let _span = telemetry::span("import.load");
        let started = telemetry::enabled().then(std::time::Instant::now);
        let result = self.load_inner(path);
        if let Some(started) = started {
            let name = self.name();
            telemetry::record_duration(&format!("import.parse_ns.{name}"), started.elapsed());
            telemetry::add("import.files", 1);
            if result.is_err() {
                telemetry::add("import.errors", 1);
            }
            let bytes = path_bytes(path);
            telemetry::add("import.bytes_read", bytes);
            telemetry::add(&format!("import.bytes_read.{name}"), bytes);
        }
        result
    }

    fn load_inner(&self, path: &Path) -> Result<Profile> {
        match self {
            ProfileFormat::Tau => tau::load_tau_directory(path),
            ProfileFormat::Gprof => gprof::load_gprof_file(path),
            ProfileFormat::MpiP => mpip::load_mpip_file(path),
            ProfileFormat::Dynaprof => dynaprof::load_dynaprof_file(path),
            ProfileFormat::HpmToolkit => {
                if path.is_dir() {
                    hpm::load_hpm_directory(path)
                } else {
                    let text =
                        std::fs::read_to_string(path).map_err(|e| ImportError::io(path, e))?;
                    let mut profile = Profile::new(
                        path.file_stem()
                            .map(|s| s.to_string_lossy().into_owned())
                            .unwrap_or_default(),
                    );
                    profile.source_format = "hpmtoolkit".into();
                    let task = path
                        .file_name()
                        .and_then(|n| hpm::parse_hpm_filename(&n.to_string_lossy()))
                        .unwrap_or(0);
                    hpm::parse_hpm_text(&text, ThreadId::new(task, 0, 0), &mut profile)?;
                    Ok(profile)
                }
            }
            ProfileFormat::PerfSuite => psrun::load_psrun_file(path),
            ProfileFormat::Sppm => sppm::load_sppm_file(path),
            ProfileFormat::PerfDmfXml => {
                let text = std::fs::read_to_string(path).map_err(|e| ImportError::io(path, e))?;
                xml_format::import_xml(&text)
            }
        }
    }
}

/// Input size of a load target, for the `import.bytes_read` counters:
/// a file's length, or the summed lengths of a directory's files.
fn path_bytes(path: &Path) -> u64 {
    if path.is_dir() {
        std::fs::read_dir(path)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter_map(|e| e.metadata().ok())
                    .filter(|m| m.is_file())
                    .map(|m| m.len())
                    .sum()
            })
            .unwrap_or(0)
    } else {
        std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
    }
}

/// Detect the format of a path.
///
/// Directories containing `profile.n.c.t` or `MULTI__*` entries are TAU;
/// directories of `perfhpm*` files are HPMtoolkit; files are sniffed by
/// content.
pub fn detect_format(path: &Path) -> Result<ProfileFormat> {
    if path.is_dir() {
        let mut saw_tau = false;
        let mut saw_hpm = false;
        for entry in std::fs::read_dir(path).map_err(|e| ImportError::io(path, e))? {
            let entry = entry.map_err(|e| ImportError::io(path, e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if tau::parse_profile_filename(&name).is_some() || name.starts_with("MULTI__") {
                saw_tau = true;
            }
            if hpm::parse_hpm_filename(&name).is_some() {
                saw_hpm = true;
            }
        }
        if saw_tau {
            return Ok(ProfileFormat::Tau);
        }
        if saw_hpm {
            return Ok(ProfileFormat::HpmToolkit);
        }
        return Err(ImportError::UnknownFormat(path.to_path_buf()));
    }
    let text = std::fs::read_to_string(path).map_err(|e| ImportError::io(path, e))?;
    let sample: String = text.chars().take(4096).collect();
    for format in ProfileFormat::ALL {
        if format.sniff_text(&sample) {
            return Ok(format);
        }
    }
    Err(ImportError::UnknownFormat(path.to_path_buf()))
}

/// Autodetect and load a profile from a path.
pub fn load_path(path: &Path) -> Result<Profile> {
    detect_format(path)?.load(path)
}

/// Filename filter for directory scans (paper §4: prefix/suffix subsets).
#[derive(Debug, Clone, Default)]
pub struct FileFilter {
    /// Keep only names starting with this prefix.
    pub prefix: Option<String>,
    /// Keep only names ending with this suffix.
    pub suffix: Option<String>,
}

impl FileFilter {
    /// Filter by prefix.
    pub fn with_prefix(prefix: impl Into<String>) -> Self {
        FileFilter {
            prefix: Some(prefix.into()),
            suffix: None,
        }
    }

    /// Filter by suffix.
    pub fn with_suffix(suffix: impl Into<String>) -> Self {
        FileFilter {
            prefix: None,
            suffix: Some(suffix.into()),
        }
    }

    /// Does a filename pass the filter?
    pub fn matches(&self, name: &str) -> bool {
        if let Some(p) = &self.prefix {
            if !name.starts_with(p.as_str()) {
                return false;
            }
        }
        if let Some(s) = &self.suffix {
            if !name.ends_with(s.as_str()) {
                return false;
            }
        }
        true
    }
}

/// Load every matching file in a directory as a profile (one profile per
/// file, autodetected per file).
///
/// Files are loaded concurrently on the worker pool; results come back in
/// sorted path order, and a failure reports the first failing file in that
/// order — exactly what the serial loop produced.
pub fn load_directory_filtered(dir: &Path, filter: &FileFilter) -> Result<Vec<Profile>> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| ImportError::io(dir, e))?
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_file())
        .filter(|e| filter.matches(&e.file_name().to_string_lossy()))
        .map(|e| e.path())
        .collect();
    entries.sort();
    perfdmf_telemetry::add("import.directory_files", entries.len() as u64);
    let out = perfdmf_pool::try_map(&entries, |path| load_path(path))?;
    if out.is_empty() {
        return Err(ImportError::NoProfiles(dir.to_path_buf()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sniffing() {
        assert!(ProfileFormat::Tau.sniff_text("42 templated_functions_MULTI_TIME\n"));
        assert!(ProfileFormat::Gprof.sniff_text("Flat profile:\n..."));
        assert!(ProfileFormat::MpiP.sniff_text("@ mpiP\n@ Version"));
        assert!(ProfileFormat::Dynaprof.sniff_text("dynaprof output\n"));
        assert!(ProfileFormat::HpmToolkit.sniff_text("libhpm (Version 2.5.3) summary"));
        assert!(ProfileFormat::PerfSuite.sniff_text("<?xml?><hwpcprofilereport>"));
        assert!(ProfileFormat::Sppm.sniff_text("# sppm self-instrumented timing"));
        assert!(ProfileFormat::PerfDmfXml.sniff_text("<?xml?><perfdmf_profile name=\"x\">"));
        // no cross-matches on these samples
        assert!(!ProfileFormat::Tau.sniff_text("Flat profile:"));
        assert!(!ProfileFormat::Gprof.sniff_text("@ mpiP"));
    }

    #[test]
    fn names_roundtrip() {
        for f in ProfileFormat::ALL {
            assert_eq!(ProfileFormat::by_name(f.name()), Some(f));
        }
        assert_eq!(ProfileFormat::by_name("nope"), None);
    }

    #[test]
    fn file_filter() {
        let f = FileFilter::with_prefix("profile.");
        assert!(f.matches("profile.0.0.0"));
        assert!(!f.matches("other.0.0.0"));
        let f = FileFilter::with_suffix(".xml");
        assert!(f.matches("run.xml"));
        assert!(!f.matches("run.txt"));
        let both = FileFilter {
            prefix: Some("a".into()),
            suffix: Some(".x".into()),
        };
        assert!(both.matches("ab.x"));
        assert!(!both.matches("b.x"));
        assert!(FileFilter::default().matches("anything"));
    }

    #[test]
    fn detect_and_load_files() {
        let dir = std::env::temp_dir().join(format!(
            "pdmf_detect_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("run.mpip"),
            "@ mpiP\n@--- MPI Time (seconds) ---\nTask AppTime MPITime MPI%\n 0 1.0 0.5 50.0\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("timing.sppm"),
            "# sppm self-instrumented timing\n0 sweep 1 2.5\n",
        )
        .unwrap();
        assert_eq!(
            detect_format(&dir.join("run.mpip")).unwrap(),
            ProfileFormat::MpiP
        );
        assert_eq!(
            detect_format(&dir.join("timing.sppm")).unwrap(),
            ProfileFormat::Sppm
        );
        let profiles = load_directory_filtered(&dir, &FileFilter::default()).unwrap();
        assert_eq!(profiles.len(), 2);
        let filtered = load_directory_filtered(&dir, &FileFilter::with_suffix(".sppm")).unwrap();
        assert_eq!(filtered.len(), 1);
        assert_eq!(filtered[0].source_format, "sppm");
        assert!(matches!(
            load_directory_filtered(&dir, &FileFilter::with_prefix("zzz")),
            Err(ImportError::NoProfiles(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn detect_tau_directory() {
        let dir = std::env::temp_dir().join(format!(
            "pdmf_detect_tau_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("profile.0.0.0"),
            "1 templated_functions\n# h\n\"f\" 1 0 1 1 0\n",
        )
        .unwrap();
        assert_eq!(detect_format(&dir).unwrap(), ProfileFormat::Tau);
        let p = load_path(&dir).unwrap();
        assert_eq!(p.source_format, "tau");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_format_errors() {
        let dir = std::env::temp_dir().join(format!(
            "pdmf_detect_unk_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("mystery.txt");
        std::fs::write(&f, "completely unknown content").unwrap();
        assert!(matches!(
            detect_format(&f),
            Err(ImportError::UnknownFormat(_))
        ));
        assert!(matches!(
            detect_format(&dir),
            Err(ImportError::UnknownFormat(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
