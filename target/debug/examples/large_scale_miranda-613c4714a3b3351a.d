/root/repo/target/debug/examples/large_scale_miranda-613c4714a3b3351a.d: examples/large_scale_miranda.rs

/root/repo/target/debug/examples/large_scale_miranda-613c4714a3b3351a: examples/large_scale_miranda.rs

examples/large_scale_miranda.rs:
