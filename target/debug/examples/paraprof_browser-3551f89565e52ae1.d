/root/repo/target/debug/examples/paraprof_browser-3551f89565e52ae1.d: examples/paraprof_browser.rs Cargo.toml

/root/repo/target/debug/examples/libparaprof_browser-3551f89565e52ae1.rmeta: examples/paraprof_browser.rs Cargo.toml

examples/paraprof_browser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
