//! Scoped timers with nesting.
//!
//! [`span`] starts a timer on the monotonic clock and returns a guard;
//! when the guard drops, the elapsed nanoseconds land in the histogram
//! named after the span. Active span names sit on a thread-local stack
//! so code deeper in the call tree (event emitters, error paths) can ask
//! "where am I?" via [`current_path`].

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one span; records on drop.
pub struct SpanGuard {
    /// `None` when telemetry was disabled at entry — drop does nothing.
    armed: Option<(&'static str, Instant)>,
    /// Trace span id from [`crate::trace`], 0 when tracing is off.
    trace_span: u64,
}

/// Open a span named `name`. While the returned guard lives, the name is
/// on this thread's span stack; on drop the elapsed time is recorded
/// into histogram `name` (in nanoseconds). With causal tracing on
/// ([`crate::trace::set_tracing`]), the span also gets a trace/span id
/// linked to its parent and lands in the flight recorder on drop.
/// Disabled telemetry makes this a single atomic load.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            armed: None,
            trace_span: 0,
        };
    }
    SPAN_STACK.with(|stack| stack.borrow_mut().push(name));
    let trace_span = crate::trace::enter_span(name);
    SpanGuard {
        armed: Some((name, Instant::now())),
        trace_span,
    }
}

impl SpanGuard {
    /// Elapsed time so far, `None` if the span is unarmed (disabled).
    pub fn elapsed_nanos(&self) -> Option<u64> {
        self.armed
            .as_ref()
            .map(|(_, start)| start.elapsed().as_nanos().min(u64::MAX as u128) as u64)
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some((name, start)) = self.armed.take() {
            let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                // Pop our own frame. Guards are usually dropped in LIFO
                // order; if a caller held one across scopes, remove the
                // matching name instead of corrupting the stack.
                match stack.last() {
                    Some(&top) if std::ptr::eq(top, name) => {
                        stack.pop();
                    }
                    _ => {
                        if let Some(pos) = stack.iter().rposition(|&n| std::ptr::eq(n, name)) {
                            stack.remove(pos);
                        }
                    }
                }
            });
            crate::trace::exit_span(self.trace_span);
            crate::histogram(name).record(nanos);
        }
    }
}

/// Slash-joined names of the spans currently open on this thread, e.g.
/// `"session.store_profile/db.execute"`. Empty when no span is open.
pub fn current_path() -> String {
    SPAN_STACK.with(|stack| stack.borrow().join("/"))
}

/// Depth of the current span stack on this thread.
pub fn depth() -> usize {
    SPAN_STACK.with(|stack| stack.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record() {
        let _on = crate::enabled_flag_lock().read();
        assert_eq!(depth(), 0);
        {
            let _outer = span("span.test.outer");
            assert_eq!(current_path(), "span.test.outer");
            {
                let _inner = span("span.test.inner");
                assert_eq!(current_path(), "span.test.outer/span.test.inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            assert_eq!(current_path(), "span.test.outer");
        }
        assert_eq!(depth(), 0);
        let h = crate::histogram("span.test.inner");
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 1_000_000, "slept 1ms, recorded {}ns", h.sum());
        assert_eq!(crate::histogram("span.test.outer").count(), 1);
    }

    #[test]
    fn out_of_order_drop_keeps_stack_sane() {
        let _on = crate::enabled_flag_lock().read();
        let outer = span("span.order.outer");
        let inner = span("span.order.inner");
        drop(outer);
        assert_eq!(current_path(), "span.order.inner");
        drop(inner);
        assert_eq!(depth(), 0);
    }

    #[test]
    fn elapsed_nanos_observable_mid_span() {
        let _on = crate::enabled_flag_lock().read();
        let g = span("span.test.mid");
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(g.elapsed_nanos().unwrap() >= 1_000_000);
    }
}
