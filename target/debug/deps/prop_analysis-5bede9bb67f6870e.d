/root/repo/target/debug/deps/prop_analysis-5bede9bb67f6870e.d: crates/analysis/tests/prop_analysis.rs Cargo.toml

/root/repo/target/debug/deps/libprop_analysis-5bede9bb67f6870e.rmeta: crates/analysis/tests/prop_analysis.rs Cargo.toml

crates/analysis/tests/prop_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
