/root/repo/target/debug/deps/sql_advanced-76dcbf8fcd4accaa.d: crates/db/tests/sql_advanced.rs

/root/repo/target/debug/deps/sql_advanced-76dcbf8fcd4accaa: crates/db/tests/sql_advanced.rs

crates/db/tests/sql_advanced.rs:
