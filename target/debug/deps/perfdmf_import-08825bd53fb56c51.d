/root/repo/target/debug/deps/perfdmf_import-08825bd53fb56c51.d: crates/import/src/lib.rs crates/import/src/cube.rs crates/import/src/dynaprof.rs crates/import/src/error.rs crates/import/src/gprof.rs crates/import/src/hpm.rs crates/import/src/mpip.rs crates/import/src/psrun.rs crates/import/src/source.rs crates/import/src/sppm.rs crates/import/src/tau.rs crates/import/src/xml_format.rs

/root/repo/target/debug/deps/perfdmf_import-08825bd53fb56c51: crates/import/src/lib.rs crates/import/src/cube.rs crates/import/src/dynaprof.rs crates/import/src/error.rs crates/import/src/gprof.rs crates/import/src/hpm.rs crates/import/src/mpip.rs crates/import/src/psrun.rs crates/import/src/source.rs crates/import/src/sppm.rs crates/import/src/tau.rs crates/import/src/xml_format.rs

crates/import/src/lib.rs:
crates/import/src/cube.rs:
crates/import/src/dynaprof.rs:
crates/import/src/error.rs:
crates/import/src/gprof.rs:
crates/import/src/hpm.rs:
crates/import/src/mpip.rs:
crates/import/src/psrun.rs:
crates/import/src/source.rs:
crates/import/src/sppm.rs:
crates/import/src/tau.rs:
crates/import/src/xml_format.rs:
