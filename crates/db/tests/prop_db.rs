//! Property tests for the relational engine.

use perfdmf_db::{Connection, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        (-1e9f64..1e9f64).prop_map(Value::Float),
        "[a-zA-Z0-9_ ]{0,16}".prop_map(|s: String| Value::Text(s.into())),
        any::<bool>().prop_map(Value::Bool),
    ]
}

proptest! {
    /// Insert → select round-trips every value unchanged (modulo the
    /// engine's documented numeric coercion: column type is dynamic here).
    #[test]
    fn insert_select_identity(vals in proptest::collection::vec(arb_value(), 1..40)) {
        let conn = Connection::open_in_memory();
        conn.execute(
            "CREATE TABLE kv (id INTEGER PRIMARY KEY AUTO_INCREMENT, i INTEGER, f DOUBLE, s TEXT, b BOOLEAN)",
            &[],
        ).unwrap();
        let mut expect = Vec::new();
        for v in &vals {
            let (i, f, s, b) = match v {
                Value::Int(x) => (Value::Int(*x), Value::Null, Value::Null, Value::Null),
                Value::Float(x) => (Value::Null, Value::Float(*x), Value::Null, Value::Null),
                Value::Text(x) => (Value::Null, Value::Null, Value::Text(x.clone()), Value::Null),
                Value::Bool(x) => (Value::Null, Value::Null, Value::Null, Value::Bool(*x)),
                _ => (Value::Null, Value::Null, Value::Null, Value::Null),
            };
            expect.push(vec![i.clone(), f.clone(), s.clone(), b.clone()]);
            conn.insert("INSERT INTO kv (i, f, s, b) VALUES (?, ?, ?, ?)", &[i, f, s, b]).unwrap();
        }
        let rs = conn.query("SELECT i, f, s, b FROM kv ORDER BY id", &[]).unwrap();
        prop_assert_eq!(rs.rows, expect);
    }

    /// Index-accelerated equality predicates return the same rows as a
    /// full scan.
    #[test]
    fn index_scan_equivalence(keys in proptest::collection::vec(0i64..20, 1..120), probe in 0i64..20) {
        let conn = Connection::open_in_memory();
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY AUTO_INCREMENT, k INTEGER)", &[]).unwrap();
        for k in &keys {
            conn.insert("INSERT INTO t (k) VALUES (?)", &[Value::Int(*k)]).unwrap();
        }
        let scan = conn.query("SELECT id FROM t WHERE k = ? ORDER BY id", &[Value::Int(probe)]).unwrap();
        conn.execute("CREATE INDEX ix_k ON t (k)", &[]).unwrap();
        let indexed = conn.query("SELECT id FROM t WHERE k = ? ORDER BY id", &[Value::Int(probe)]).unwrap();
        prop_assert_eq!(scan.rows, indexed.rows);

        // Range too.
        let lo = probe.min(10);
        let hi = probe.max(10);
        let conn2 = Connection::open_in_memory();
        conn2.execute("CREATE TABLE t (id INTEGER PRIMARY KEY AUTO_INCREMENT, k INTEGER)", &[]).unwrap();
        for k in &keys {
            conn2.insert("INSERT INTO t (k) VALUES (?)", &[Value::Int(*k)]).unwrap();
        }
        let scan = conn2.query("SELECT id FROM t WHERE k BETWEEN ? AND ? ORDER BY id", &[Value::Int(lo), Value::Int(hi)]).unwrap();
        conn2.execute("CREATE INDEX ix_k ON t (k)", &[]).unwrap();
        let indexed = conn2.query("SELECT id FROM t WHERE k BETWEEN ? AND ? ORDER BY id", &[Value::Int(lo), Value::Int(hi)]).unwrap();
        prop_assert_eq!(scan.rows, indexed.rows);
    }

    /// SQL aggregates agree with a straightforward reference computation.
    #[test]
    fn aggregates_match_reference(xs in proptest::collection::vec(-1e6f64..1e6f64, 2..60)) {
        let conn = Connection::open_in_memory();
        conn.execute("CREATE TABLE v (x DOUBLE)", &[]).unwrap();
        for x in &xs {
            conn.insert("INSERT INTO v VALUES (?)", &[Value::Float(*x)]).unwrap();
        }
        let rs = conn.query("SELECT SUM(x), AVG(x), MIN(x), MAX(x), STDDEV(x), COUNT(*) FROM v", &[]).unwrap();
        let n = xs.len() as f64;
        let sum: f64 = xs.iter().sum();
        let mean = sum / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        let tol = 1e-6 * (1.0 + sum.abs());
        prop_assert!((rs.rows[0][0].as_float().unwrap() - sum).abs() < tol);
        prop_assert!((rs.rows[0][1].as_float().unwrap() - mean).abs() < tol / n);
        prop_assert_eq!(rs.rows[0][2].as_float().unwrap(), xs.iter().cloned().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(rs.rows[0][3].as_float().unwrap(), xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
        let sd = rs.rows[0][4].as_float().unwrap();
        prop_assert!((sd - var.sqrt()).abs() < 1e-6 * (1.0 + var.sqrt()), "{sd} vs {}", var.sqrt());
        prop_assert_eq!(&rs.rows[0][5], &Value::Int(xs.len() as i64));
    }

    /// A transaction that rolls back leaves the database byte-identical.
    #[test]
    fn rollback_is_identity(
        initial in proptest::collection::vec(0i64..100, 0..20),
        txn_ops in proptest::collection::vec((0u8..3, 0i64..100), 1..20),
    ) {
        let conn = Connection::open_in_memory();
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY AUTO_INCREMENT, k INTEGER)", &[]).unwrap();
        for k in &initial {
            conn.insert("INSERT INTO t (k) VALUES (?)", &[Value::Int(*k)]).unwrap();
        }
        let before = conn.query("SELECT id, k FROM t ORDER BY id", &[]).unwrap();
        conn.execute("BEGIN", &[]).unwrap();
        for (op, k) in &txn_ops {
            let k = Value::Int(*k);
            match op {
                0 => { conn.insert("INSERT INTO t (k) VALUES (?)", &[k]).unwrap(); }
                1 => { conn.update("UPDATE t SET k = k + 1 WHERE k = ?", &[k]).unwrap(); }
                _ => { conn.update("DELETE FROM t WHERE k = ?", &[k]).unwrap(); }
            }
        }
        conn.execute("ROLLBACK", &[]).unwrap();
        let after = conn.query("SELECT id, k FROM t ORDER BY id", &[]).unwrap();
        prop_assert_eq!(before.rows, after.rows);
    }

    /// GROUP BY partitions: group counts sum to the table size, and every
    /// group's aggregate matches filtering by that key.
    #[test]
    fn group_by_partitions(keys in proptest::collection::vec(0i64..8, 1..80)) {
        let conn = Connection::open_in_memory();
        conn.execute("CREATE TABLE t (k INTEGER, v INTEGER)", &[]).unwrap();
        for (i, k) in keys.iter().enumerate() {
            conn.insert("INSERT INTO t VALUES (?, ?)", &[Value::Int(*k), Value::Int(i as i64)]).unwrap();
        }
        let groups = conn.query("SELECT k, COUNT(*) AS n, SUM(v) AS s FROM t GROUP BY k ORDER BY k", &[]).unwrap();
        let total: i64 = groups.rows.iter().map(|r| r[1].as_int().unwrap()).sum();
        prop_assert_eq!(total, keys.len() as i64);
        for row in &groups.rows {
            let k = row[0].clone();
            let per = conn.query("SELECT COUNT(*), SUM(v) FROM t WHERE k = ?", &[k]).unwrap();
            prop_assert_eq!(&per.rows[0][0], &row[1]);
            prop_assert_eq!(&per.rows[0][1], &row[2]);
        }
    }

    /// ORDER BY produces a sorted permutation.
    #[test]
    fn order_by_sorts(xs in proptest::collection::vec(any::<i32>(), 0..60)) {
        let conn = Connection::open_in_memory();
        conn.execute("CREATE TABLE t (x INTEGER)", &[]).unwrap();
        for x in &xs {
            conn.insert("INSERT INTO t VALUES (?)", &[Value::Int(*x as i64)]).unwrap();
        }
        let rs = conn.query("SELECT x FROM t ORDER BY x", &[]).unwrap();
        let got: Vec<i64> = rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        let mut want: Vec<i64> = xs.iter().map(|&x| x as i64).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        let rs = conn.query("SELECT x FROM t ORDER BY x DESC", &[]).unwrap();
        let got: Vec<i64> = rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        let mut want_desc: Vec<i64> = xs.iter().map(|&x| x as i64).collect();
        want_desc.sort_unstable_by(|a, b| b.cmp(a));
        prop_assert_eq!(got, want_desc);
    }

    /// Hash join equals nested-loop join (forced via a non-equi rewrite).
    #[test]
    fn hash_join_equals_nested_loop(
        left in proptest::collection::vec(0i64..10, 0..30),
        right in proptest::collection::vec(0i64..10, 0..30),
    ) {
        let conn = Connection::open_in_memory();
        conn.execute("CREATE TABLE l (k INTEGER)", &[]).unwrap();
        conn.execute("CREATE TABLE r (k INTEGER)", &[]).unwrap();
        for k in &left { conn.insert("INSERT INTO l VALUES (?)", &[Value::Int(*k)]).unwrap(); }
        for k in &right { conn.insert("INSERT INTO r VALUES (?)", &[Value::Int(*k)]).unwrap(); }
        // hash-join path
        let mut a = conn.query("SELECT l.k, r.k FROM l JOIN r ON l.k = r.k", &[]).unwrap().rows;
        // nested-loop path (predicate form the equi-detector does not match)
        let mut b = conn.query("SELECT l.k, r.k FROM l JOIN r ON l.k - r.k = 0", &[]).unwrap().rows;
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// The SQL parser never panics on arbitrary input.
    #[test]
    fn parser_never_panics(sql in "\\PC{0,120}") {
        let conn = Connection::open_in_memory();
        let _ = conn.execute(&sql, &[]);
    }
}

/// Pinned from a retired `proptest-regressions` seed file (our vendored
/// proptest shim does not replay seed files): `parser_never_panics` once
/// tripped on U+FFFC (OBJECT REPLACEMENT CHARACTER) reaching the lexer.
/// Keep it as a plain unit test so the case always runs.
#[test]
fn parser_handles_object_replacement_character() {
    let conn = Connection::open_in_memory();
    for sql in ["\u{FFFC}", "SELECT \u{FFFC}", "SELECT '\u{FFFC}' AS c"] {
        let _ = conn.execute(sql, &[]);
    }
}
