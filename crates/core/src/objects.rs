//! Application / Experiment / Trial data objects.
//!
//! These mirror the paper's Java objects: rows of the three flexible-schema
//! tables, materialized with *whatever columns the table currently has*
//! (runtime metadata discovery — the `getMetaData()` mechanism). Each has a
//! `save()` that inserts or updates its row.

use perfdmf_db::{Connection, DbError, Result, Value};
use std::collections::BTreeMap;

/// A row of one of the flexible tables, with dynamic columns.
#[derive(Debug, Clone, PartialEq)]
pub struct FlexRow {
    /// Primary key, `None` until saved.
    pub id: Option<i64>,
    /// Required display name.
    pub name: String,
    /// All other column values, keyed by column name.
    pub fields: BTreeMap<String, Value>,
}

impl FlexRow {
    /// New unsaved row.
    pub fn new(name: impl Into<String>) -> Self {
        FlexRow {
            id: None,
            name: name.into(),
            fields: BTreeMap::new(),
        }
    }

    /// Set a metadata field (builder style).
    pub fn with_field(mut self, column: impl Into<String>, value: impl Into<Value>) -> Self {
        self.fields
            .insert(column.into().to_ascii_lowercase(), value.into());
        self
    }

    /// Set a metadata field.
    pub fn set_field(&mut self, column: impl Into<String>, value: impl Into<Value>) {
        self.fields
            .insert(column.into().to_ascii_lowercase(), value.into());
    }

    /// Get a metadata field.
    pub fn field(&self, column: &str) -> Option<&Value> {
        self.fields.get(&column.to_ascii_lowercase())
    }

    /// Save into `table`: INSERT when `id` is `None`, UPDATE otherwise.
    ///
    /// Columns are discovered from the live table metadata; fields that do
    /// not correspond to a current column are rejected, fields absent from
    /// the row are left at their column defaults.
    pub fn save(&mut self, conn: &Connection, table: &str) -> Result<i64> {
        let meta = conn.table_meta(table)?;
        let columns: Vec<&str> = meta.iter().map(|c| c.name.as_str()).collect();
        for key in self.fields.keys() {
            if !columns.iter().any(|c| c == key) {
                return Err(DbError::NoSuchColumn {
                    table: table.to_string(),
                    column: key.clone(),
                });
            }
        }
        match self.id {
            None => {
                let mut names = vec!["name".to_string()];
                let mut params = vec![Value::Text(self.name.as_str().into())];
                for (k, v) in &self.fields {
                    if k == "name" || k == "id" {
                        continue;
                    }
                    names.push(k.clone());
                    params.push(v.clone());
                }
                let placeholders = vec!["?"; names.len()].join(", ");
                let sql = format!(
                    "INSERT INTO {table} ({}) VALUES ({placeholders})",
                    names.join(", ")
                );
                let id = conn.insert(&sql, &params)?.ok_or_else(|| {
                    DbError::Unsupported(format!("table {table} has no AUTO_INCREMENT key"))
                })?;
                self.id = Some(id);
                Ok(id)
            }
            Some(id) => {
                let mut sets = vec!["name = ?".to_string()];
                let mut params = vec![Value::Text(self.name.as_str().into())];
                for (k, v) in &self.fields {
                    if k == "name" || k == "id" {
                        continue;
                    }
                    sets.push(format!("{k} = ?"));
                    params.push(v.clone());
                }
                params.push(Value::Int(id));
                let sql = format!("UPDATE {table} SET {} WHERE id = ?", sets.join(", "));
                conn.update(&sql, &params)?;
                Ok(id)
            }
        }
    }

    /// Materialize a row by id, capturing every current column.
    pub fn load(conn: &Connection, table: &str, id: i64) -> Result<FlexRow> {
        let rs = conn.query(
            &format!("SELECT * FROM {table} WHERE id = ?"),
            &[Value::Int(id)],
        )?;
        if rs.is_empty() {
            return Err(DbError::Unsupported(format!("no {table} row with id {id}")));
        }
        Ok(Self::from_result_row(&rs.columns, &rs.rows[0]))
    }

    /// Build from a result row (columns must include `id` and `name`).
    pub fn from_result_row(columns: &[String], row: &[Value]) -> FlexRow {
        let mut out = FlexRow::new("");
        for (c, v) in columns.iter().zip(row) {
            match c.as_str() {
                "id" => out.id = v.as_int(),
                "name" => out.name = v.as_text().unwrap_or("").to_string(),
                other => {
                    out.fields.insert(other.to_string(), v.clone());
                }
            }
        }
        out
    }
}

/// An APPLICATION row.
pub type Application = FlexRow;
/// An EXPERIMENT row (set the `application` field before saving).
pub type Experiment = FlexRow;
/// A TRIAL row (set the `experiment` field before saving).
pub type Trial = FlexRow;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::create_schema;

    #[test]
    fn insert_update_load_cycle() {
        let conn = Connection::open_in_memory();
        create_schema(&conn).unwrap();
        let mut app = Application::new("EVH1").with_field("version", "1.0");
        let id = app.save(&conn, "application").unwrap();
        assert_eq!(app.id, Some(id));
        app.set_field("description", "hydrodynamics benchmark");
        app.save(&conn, "application").unwrap();
        let back = FlexRow::load(&conn, "application", id).unwrap();
        assert_eq!(back.name, "EVH1");
        assert_eq!(back.field("version"), Some(&Value::from("1.0")));
        assert_eq!(
            back.field("description"),
            Some(&Value::from("hydrodynamics benchmark"))
        );
    }

    #[test]
    fn unknown_field_rejected_until_column_added() {
        let conn = Connection::open_in_memory();
        create_schema(&conn).unwrap();
        let mut app = Application::new("x").with_field("compiler", "xlf");
        assert!(matches!(
            app.save(&conn, "application"),
            Err(DbError::NoSuchColumn { .. })
        ));
        // The paper's flexible-schema move: add the column, then it works.
        conn.execute("ALTER TABLE application ADD COLUMN compiler TEXT", &[])
            .unwrap();
        let id = app.save(&conn, "application").unwrap();
        let back = FlexRow::load(&conn, "application", id).unwrap();
        assert_eq!(back.field("compiler"), Some(&Value::from("xlf")));
    }

    #[test]
    fn hierarchy_with_foreign_keys() {
        let conn = Connection::open_in_memory();
        create_schema(&conn).unwrap();
        let mut app = Application::new("sppm");
        let app_id = app.save(&conn, "application").unwrap();
        let mut exp = Experiment::new("counters").with_field("application", app_id);
        let exp_id = exp.save(&conn, "experiment").unwrap();
        let mut trial = Trial::new("r1")
            .with_field("experiment", exp_id)
            .with_field("node_count", 512i64);
        let trial_id = trial.save(&conn, "trial").unwrap();
        let back = FlexRow::load(&conn, "trial", trial_id).unwrap();
        assert_eq!(back.field("node_count"), Some(&Value::Int(512)));
        assert_eq!(back.field("experiment"), Some(&Value::Int(exp_id)));
    }

    #[test]
    fn load_missing_row_errors() {
        let conn = Connection::open_in_memory();
        create_schema(&conn).unwrap();
        assert!(FlexRow::load(&conn, "application", 42).is_err());
    }
}
