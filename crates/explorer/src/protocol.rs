//! PerfExplorer request/response protocol.
//!
//! The paper (§5.3): "Using the PerfExplorer client, the analyst selects a
//! particular trial of interest, sets analysis parameters, and then
//! requests data mining operations on the parallel dataset." Requests
//! travel from [`crate::ExplorerClient`] to the [`crate::AnalysisServer`]
//! over an in-process channel (the Rust substitute for the paper's
//! client/server socket; component boundaries and data flow preserved).

/// Clustering algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClusterMethod {
    /// k-means++ with Lloyd iterations (parallel assignment step).
    #[default]
    KMeans,
    /// Average-linkage agglomerative clustering, cut at k.
    Hierarchical,
}

/// Which feature vectors describe each thread for clustering.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureSpace {
    /// One column per interval event, values of the named metric
    /// (time-breakdown behaviour).
    EventsOfMetric(String),
    /// One column per metric, values at the named event (hardware-counter
    /// behaviour — the space of Ahn & Vetter's sPPM analysis).
    MetricsOfEvent(String),
}

/// A data-mining request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Cluster the threads of a trial by their per-event (or per-metric)
    /// behaviour.
    ClusterTrial {
        /// Trial to analyze.
        trial_id: i64,
        /// Feature space to cluster in.
        features: FeatureSpace,
        /// Explicit k; `None` selects k by silhouette in 2..=max_k.
        k: Option<usize>,
        /// Upper bound for k selection.
        max_k: usize,
        /// Reduce to this many principal components first (0 = no PCA).
        pca_components: usize,
        /// Clustering algorithm.
        method: ClusterMethod,
    },
    /// Correlate all metrics of a trial over threads for one event.
    CorrelateMetrics {
        /// Trial to analyze.
        trial_id: i64,
        /// Event name (the paper's sPPM analysis correlates counters of
        /// the main timestep event).
        event: String,
    },
    /// Retrieve a stored analysis result by its settings id.
    FetchResult {
        /// `analysis_settings.id` of a previous run.
        settings_id: i64,
    },
    /// Speedup/scalability study over every trial of an experiment
    /// (the server-side form of the §5.2 analyzer).
    SpeedupStudy {
        /// Experiment whose trials form the processor sweep.
        experiment_id: i64,
        /// Metric to analyze.
        metric: String,
    },
    /// Scan an experiment's trial history for performance regressions:
    /// consecutive trials are diffed with the CUBE-style algebra and
    /// events whose mean exclusive value changed by more than `threshold`
    /// are reported (the paper's §6 "automated performance regression
    /// analysis" aim).
    RegressionScan {
        /// Experiment whose trials (in id order) form the history.
        experiment_id: i64,
        /// Relative-change threshold, e.g. 0.10 for ±10%.
        threshold: f64,
    },
    /// Watchdog check of one new trial against its experiment's archive
    /// baseline: every other trial of the experiment contributes one
    /// per-routine sample (mean exclusive value over threads) to a
    /// Chan–Welford baseline, and the candidate trial's routines are
    /// flagged where they exceed the configured ratio and z-score.
    /// Flagged findings are also pushed to the global telemetry
    /// regression log (the `perfdmf_regressions` system table) and
    /// emitted as `perf_regression` events.
    WatchdogCheck {
        /// Experiment whose other trials form the baseline.
        experiment_id: i64,
        /// The candidate (usually newest) trial.
        trial_id: i64,
        /// Metric to compare, e.g. `TIME`.
        metric: String,
        /// Minimum candidate/baseline ratio to flag (e.g. 1.25).
        min_ratio: f64,
    },
    /// Liveness probe: answered with [`Response::Pong`] without touching
    /// the database. The cheapest possible request — used by network
    /// health checks and the `e11_server` round-trip benchmark.
    Ping,
    /// Stop the server workers.
    Shutdown,
    /// Fault-injection aid: the worker panics with this message while
    /// handling the request. Exercises the panic-isolation and
    /// worker-restart paths; not part of the analysis API.
    #[doc(hidden)]
    InjectPanic(String),
    /// Fault-injection aid: the worker sleeps for this many
    /// milliseconds. Used by tests to saturate the queue and to trip
    /// request deadlines; not part of the analysis API.
    #[doc(hidden)]
    Stall {
        /// How long the worker holds the request.
        millis: u64,
    },
}

impl Request {
    /// Whether executing this request mutates durable state: stored
    /// analysis results (`ClusterTrial`, `CorrelateMetrics`) or the
    /// global regression log (`WatchdogCheck`). Effectful requests need
    /// idempotency keys when retried over the network; pure reads and
    /// probes do not, and keying them would only churn the server's
    /// bounded replay cache.
    pub fn is_effectful(&self) -> bool {
        matches!(
            self,
            Request::ClusterTrial { .. }
                | Request::CorrelateMetrics { .. }
                | Request::WatchdogCheck { .. }
        )
    }

    /// Stable lower-case label for this request's kind, used by the
    /// per-request accounting ring (`perfdmf_requests`) and its
    /// per-kind summary table so costs can be grouped by operation.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::ClusterTrial { .. } => "cluster_trial",
            Request::CorrelateMetrics { .. } => "correlate_metrics",
            Request::FetchResult { .. } => "fetch_result",
            Request::SpeedupStudy { .. } => "speedup_study",
            Request::RegressionScan { .. } => "regression_scan",
            Request::WatchdogCheck { .. } => "watchdog_check",
            Request::Ping => "ping",
            Request::Shutdown => "shutdown",
            Request::InjectPanic(_) => "inject_panic",
            Request::Stall { .. } => "stall",
        }
    }
}

/// Per-cluster summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSummary {
    /// Cluster index.
    pub cluster: usize,
    /// Number of threads in this cluster.
    pub size: usize,
    /// Mean feature vector (centroid) in original feature space order.
    pub centroid: Vec<f64>,
}

/// A data-mining response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Result of a clustering request.
    Clustering {
        /// `analysis_settings.id` under which the result was stored.
        settings_id: i64,
        /// Chosen number of clusters.
        k: usize,
        /// Cluster assignment per thread (thread order of the trial).
        assignments: Vec<usize>,
        /// Per-cluster summaries.
        summaries: Vec<ClusterSummary>,
        /// Silhouette score of the clustering.
        silhouette: f64,
        /// Feature column labels.
        columns: Vec<String>,
    },
    /// Result of a correlation request.
    Correlation {
        /// `analysis_settings.id` under which the result was stored.
        settings_id: i64,
        /// Metric names, in matrix order.
        metrics: Vec<String>,
        /// Correlation matrix.
        matrix: Vec<Vec<f64>>,
    },
    /// Result of a speedup study.
    Speedup {
        /// (processors, application speedup, efficiency) per trial.
        application: Vec<(usize, f64, f64)>,
        /// Fitted Amdahl serial fraction, if the fit converged.
        amdahl_serial_fraction: Option<f64>,
        /// Per-routine (name, processors, min, mean, max) speedups.
        routines: Vec<(String, usize, f64, f64, f64)>,
    },
    /// Result of a regression scan.
    Regressions {
        /// Flagged changes: (older trial id, newer trial id, event,
        /// metric, relative change) — positive = slower/bigger.
        findings: Vec<(i64, i64, String, String, f64)>,
        /// Number of consecutive trial pairs compared.
        pairs_compared: usize,
    },
    /// Result of a watchdog check.
    Watchdog {
        /// Trials that contributed baseline samples.
        baseline_trials: usize,
        /// Flagged routines: (event, baseline mean, candidate value,
        /// candidate/baseline ratio).
        findings: Vec<(String, f64, f64, f64)>,
    },
    /// A previously stored result, re-materialized from the database.
    Stored {
        /// Analysis method name.
        method: String,
        /// Result rows as (result_type, item, value, label).
        rows: Vec<(String, i64, f64, String)>,
    },
    /// Answer to [`Request::Ping`].
    Pong,
    /// The request failed.
    Error(String),
    /// The server's request queue was full and the request was shed
    /// without being enqueued. Retrying after a backoff is appropriate.
    Overloaded,
    /// The request was accepted but could not be served — the worker
    /// panicked while handling it, or its deadline expired before a
    /// worker picked it up. `retryable` distinguishes transient
    /// conditions (deadline pressure) from deterministic ones (a
    /// request that panics will panic again).
    Failed {
        /// Human-readable cause.
        reason: String,
        /// Whether resubmitting the same request may succeed.
        retryable: bool,
    },
    /// Acknowledgement of shutdown.
    ShuttingDown,
}
