//! Property tests for the wire codec: encoding is total and decoding
//! is total — any `Message` round-trips bit-exactly, and any byte
//! soup (truncations, bit flips, pure garbage) yields a typed
//! [`WireError`], never a panic and never an outsized allocation.

use perfdmf_explorer::{ClusterMethod, ClusterSummary, FeatureSpace, Request, Response};
use perfdmf_server::wire::{
    crc32, parse_header, verify_body, Message, WireError, HEADER_LEN, MAGIC, MAX_FRAME_LEN,
};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    "[A-Za-z0-9 _.:/-]{0,24}"
}

fn arb_feature_space() -> BoxedStrategy<FeatureSpace> {
    prop_oneof![
        arb_name().prop_map(FeatureSpace::EventsOfMetric),
        arb_name().prop_map(FeatureSpace::MetricsOfEvent),
    ]
    .boxed()
}

fn arb_request() -> BoxedStrategy<Request> {
    prop_oneof![
        (
            any::<i64>(),
            arb_feature_space(),
            prop_oneof![Just(None), (1usize..64).prop_map(Some)],
            1usize..64,
            0usize..8,
            prop_oneof![
                Just(ClusterMethod::KMeans),
                Just(ClusterMethod::Hierarchical)
            ],
        )
            .prop_map(|(trial_id, features, k, max_k, pca_components, method)| {
                Request::ClusterTrial {
                    trial_id,
                    features,
                    k,
                    max_k,
                    pca_components,
                    method,
                }
            }),
        (any::<i64>(), arb_name())
            .prop_map(|(trial_id, event)| Request::CorrelateMetrics { trial_id, event }),
        any::<i64>().prop_map(|settings_id| Request::FetchResult { settings_id }),
        (any::<i64>(), arb_name()).prop_map(|(experiment_id, metric)| Request::SpeedupStudy {
            experiment_id,
            metric
        }),
        (any::<i64>(), -2.0..2.0).prop_map(|(experiment_id, threshold)| {
            Request::RegressionScan {
                experiment_id,
                threshold,
            }
        }),
        (any::<i64>(), any::<i64>(), arb_name(), -4.0..4.0).prop_map(
            |(experiment_id, trial_id, metric, min_ratio)| Request::WatchdogCheck {
                experiment_id,
                trial_id,
                metric,
                min_ratio,
            }
        ),
        Just(Request::Ping),
        Just(Request::Shutdown),
        arb_name().prop_map(Request::InjectPanic),
        (0u64..100_000).prop_map(|millis| Request::Stall { millis }),
    ]
    .boxed()
}

fn arb_summaries() -> impl Strategy<Value = Vec<ClusterSummary>> {
    proptest::collection::vec(
        (
            0usize..16,
            0usize..4096,
            proptest::collection::vec(-1e9..1e9, 0..6),
        )
            .prop_map(|(cluster, size, centroid)| ClusterSummary {
                cluster,
                size,
                centroid,
            }),
        0..4,
    )
}

fn arb_response() -> BoxedStrategy<Response> {
    prop_oneof![
        (
            any::<i64>(),
            0usize..64,
            proptest::collection::vec(0usize..8, 0..32),
            arb_summaries(),
            -1.0..1.0,
            proptest::collection::vec(arb_name(), 0..4),
        )
            .prop_map(
                |(settings_id, k, assignments, summaries, silhouette, columns)| {
                    Response::Clustering {
                        settings_id,
                        k,
                        assignments,
                        summaries,
                        silhouette,
                        columns,
                    }
                }
            ),
        (
            any::<i64>(),
            proptest::collection::vec(arb_name(), 0..3),
            proptest::collection::vec(proptest::collection::vec(-1.0..1.0, 0..3), 0..3),
        )
            .prop_map(|(settings_id, metrics, matrix)| Response::Correlation {
                settings_id,
                metrics,
                matrix,
            }),
        (
            proptest::collection::vec((1usize..4096, 0.0..64.0, 0.0..1.5), 0..4),
            prop_oneof![Just(None), (0.0..1.0).prop_map(Some)],
            proptest::collection::vec(
                (arb_name(), 1usize..4096, 0.0..64.0, 0.0..64.0, 0.0..64.0),
                0..3
            ),
        )
            .prop_map(|(application, amdahl_serial_fraction, routines)| {
                Response::Speedup {
                    application,
                    amdahl_serial_fraction,
                    routines,
                }
            }),
        (
            proptest::collection::vec(
                (
                    any::<i64>(),
                    any::<i64>(),
                    arb_name(),
                    arb_name(),
                    -2.0..2.0
                ),
                0..3
            ),
            0usize..1000,
        )
            .prop_map(|(findings, pairs_compared)| Response::Regressions {
                findings,
                pairs_compared,
            }),
        (
            0usize..100,
            proptest::collection::vec((arb_name(), 0.0..1e6, 0.0..1e6, 0.0..100.0), 0..3),
        )
            .prop_map(|(baseline_trials, findings)| Response::Watchdog {
                baseline_trials,
                findings,
            }),
        (
            arb_name(),
            proptest::collection::vec((arb_name(), any::<i64>(), -1e9..1e9, arb_name()), 0..4),
        )
            .prop_map(|(method, rows)| Response::Stored { method, rows }),
        Just(Response::Pong),
        arb_name().prop_map(Response::Error),
        Just(Response::Overloaded),
        (arb_name(), any::<bool>())
            .prop_map(|(reason, retryable)| Response::Failed { reason, retryable }),
        Just(Response::ShuttingDown),
    ]
    .boxed()
}

fn arb_message() -> BoxedStrategy<Message> {
    prop_oneof![
        (any::<u32>(), arb_name())
            .prop_map(|(protocol, tenant)| Message::Hello { protocol, tenant }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(session, key_space)| Message::HelloAck { session, key_space }),
        (any::<u64>(), any::<u32>(), any::<u64>(), arb_request()).prop_map(
            |(seq, deadline_ms, idempotency, request)| Message::Call {
                seq,
                deadline_ms,
                idempotency,
                request,
            }
        ),
        (any::<u64>(), arb_response()).prop_map(|(seq, response)| Message::Reply { seq, response }),
        arb_name().prop_map(|reason| Message::Goodbye { reason }),
    ]
    .boxed()
}

proptest! {
    /// Any message round-trips bit-exactly through encode/decode.
    #[test]
    fn message_roundtrips(message in arb_message()) {
        let body = message.encode();
        prop_assert_eq!(Message::decode(&body).unwrap(), message);
    }

    /// Every strict prefix of a valid body is a typed error — the
    /// decoder never reads past the buffer and never panics on torn
    /// frames.
    #[test]
    fn every_truncation_is_a_typed_error(message in arb_message(), cut in 0usize..4096) {
        let body = message.encode();
        if !body.is_empty() {
            let cut = cut % body.len();
            prop_assert!(Message::decode(&body[..cut]).is_err());
        }
    }

    /// A single flipped bit never panics the decoder: it either still
    /// decodes (the flip landed in a value) or yields a typed error
    /// (the flip landed in structure).
    #[test]
    fn single_bit_flips_never_panic(
        message in arb_message(),
        pos in 0usize..4096,
        bit in 0u8..8,
    ) {
        let mut body = message.encode();
        if !body.is_empty() {
            let pos = pos % body.len();
            body[pos] ^= 1 << bit;
            let _ = Message::decode(&body);
        }
    }

    /// Pure garbage never panics and never allocates beyond the body
    /// it was handed (forged collection lengths are rejected against
    /// the remaining byte count before any allocation).
    #[test]
    fn garbage_bodies_never_panic(body in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Message::decode(&body);
    }

    /// Random frame headers are only accepted when both the magic and
    /// the length bound hold; the declared checksum passes through
    /// untouched for the body check.
    #[test]
    fn headers_reject_bad_magic_and_oversized_lengths(
        magic in any::<u32>(),
        len in any::<u32>(),
        crc in any::<u32>(),
    ) {
        let mut header = [0u8; HEADER_LEN];
        header[..4].copy_from_slice(&magic.to_le_bytes());
        header[4..8].copy_from_slice(&len.to_le_bytes());
        header[8..].copy_from_slice(&crc.to_le_bytes());
        match parse_header(&header) {
            Ok((got_len, got_crc)) => {
                prop_assert_eq!(magic, MAGIC);
                prop_assert!(len <= MAX_FRAME_LEN);
                prop_assert_eq!(got_len, len);
                prop_assert_eq!(got_crc, crc);
            }
            Err(WireError::BadMagic(m)) => prop_assert_eq!(m, magic),
            Err(WireError::Oversized(l)) => {
                prop_assert_eq!(magic, MAGIC);
                prop_assert_eq!(l, len);
                prop_assert!(len > MAX_FRAME_LEN);
            }
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error {other:?}"))),
        }
    }

    /// Any single flipped bit in any encoded body is caught by the
    /// frame checksum — this is the CRC guarantee the fault-tolerant
    /// transport leans on, since the chaos fault injector corrupts
    /// streams exactly one bit at a time.
    #[test]
    fn single_bit_flips_always_fail_the_checksum(
        message in arb_message(),
        pos in 0usize..4096,
        bit in 0u8..8,
    ) {
        let mut body = message.encode();
        let declared = crc32(&body);
        if !body.is_empty() {
            let pos = pos % body.len();
            body[pos] ^= 1 << bit;
            let caught = matches!(
                verify_body(declared, &body),
                Err(WireError::ChecksumMismatch { declared: _, actual: _ })
            );
            prop_assert!(caught, "flip at byte {} bit {} went undetected", pos, bit);
        }
    }

    /// A declared-huge collection length inside an otherwise valid
    /// frame fails fast with `BadLength` instead of allocating.
    #[test]
    fn forged_collection_lengths_fail_before_allocating(declared in 4096u32..u32::MAX) {
        // Call { seq, deadline_ms, idempotency, ClusterTrial { trial_id,
        // EventsOfMetric(<declared-length string>) ... } } cut so the
        // declared length exceeds the remaining bytes.
        let mut body = vec![2u8]; // Call
        body.extend_from_slice(&1u64.to_le_bytes()); // seq
        body.extend_from_slice(&0u32.to_le_bytes()); // deadline
        body.extend_from_slice(&0u64.to_le_bytes()); // idempotency
        body.push(0); // Request::ClusterTrial
        body.extend_from_slice(&7i64.to_le_bytes()); // trial_id
        body.push(0); // FeatureSpace::EventsOfMetric
        body.extend_from_slice(&declared.to_le_bytes()); // forged string length
        body.extend_from_slice(b"tiny"); // far fewer bytes than declared
        match Message::decode(&body) {
            Err(WireError::BadLength { declared: d, .. }) => prop_assert_eq!(d, declared),
            Err(WireError::Truncated { .. }) => {}
            other => return Err(TestCaseError::fail(format!("expected length rejection, got {other:?}"))),
        }
    }
}
