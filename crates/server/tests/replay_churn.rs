//! The replay cache must hold only what retries need: effectful
//! requests. Keying every Ping and read would churn the bounded FIFO
//! cache until a genuine write retry finds its recorded response
//! evicted — quietly weakening the at-most-once guarantee.
//!
//! This lives in its own test binary (own process) because it asserts
//! exact deltas of process-global telemetry counters.

use perfdmf_core::DatabaseSession;
use perfdmf_db::Connection;
use perfdmf_explorer::{ClusterMethod, FeatureSpace, Request, Response};
use perfdmf_profile::{IntervalData, IntervalEvent, Metric, Profile, ThreadId};
use perfdmf_server::{NetClient, PerfdmfServer};

fn seeded_database() -> (Connection, i64) {
    let conn = Connection::open_in_memory();
    let mut session = DatabaseSession::new(conn.clone()).expect("schema");
    let mut p = Profile::new("churn");
    let m = p.add_metric(Metric::measured("TIME"));
    let a = p.add_event(IntervalEvent::ungrouped("compute"));
    let b = p.add_event(IntervalEvent::ungrouped("exchange"));
    p.add_threads((0..8).map(|n| ThreadId::new(n, 0, 0)));
    for (i, &t) in p.threads().to_vec().iter().enumerate() {
        let (ca, cb) = if i < 4 { (100.0, 5.0) } else { (10.0, 80.0) };
        p.set_interval(a, t, m, IntervalData::new(ca, ca, 10.0, 0.0));
        p.set_interval(b, t, m, IntervalData::new(cb, cb, 10.0, 0.0));
    }
    let trial = session
        .store_profile("churn-app", "churn-exp", &p)
        .expect("store");
    (conn, trial)
}

fn cluster_request(trial_id: i64) -> Request {
    Request::ClusterTrial {
        trial_id,
        features: FeatureSpace::EventsOfMetric("TIME".into()),
        k: None,
        max_k: 4,
        pca_components: 0,
        method: ClusterMethod::KMeans,
    }
}

fn counter(name: &str) -> u64 {
    perfdmf_telemetry::snapshot()
        .counter(name)
        .map(|c| c.value)
        .unwrap_or(0)
}

#[test]
fn only_effectful_requests_populate_the_replay_cache() {
    let (conn, trial) = seeded_database();
    let server = PerfdmfServer::start(conn).expect("server start");
    let mut client = NetClient::new(server.addr(), "churn");

    let inserts_before = counter("server.replay_inserts");

    // One explicitly keyed write: exactly one cache insert.
    let key = 0xCAFE_0001u64;
    let first = match client.request_keyed(cluster_request(trial), key) {
        Response::Clustering { settings_id, .. } => settings_id,
        other => panic!("clustering failed: {other:?}"),
    };

    // Reads and pings through the automatic path draw no key and must
    // not touch the cache.
    for _ in 0..20 {
        assert!(client.ping());
    }
    match client.request(Request::FetchResult { settings_id: first }) {
        Response::Stored { .. } => {}
        other => panic!("fetch failed: {other:?}"),
    }
    assert_eq!(
        counter("server.replay_inserts") - inserts_before,
        1,
        "reads and pings must not populate the replay cache"
    );

    // An automatic effectful request draws its own key and is cached.
    match client.request(cluster_request(trial)) {
        Response::Clustering { .. } => {}
        other => panic!("auto-keyed clustering failed: {other:?}"),
    }
    assert_eq!(
        counter("server.replay_inserts") - inserts_before,
        2,
        "automatically keyed writes must be cached for replay"
    );

    // The keyed write from the start is still replayable — no churn
    // evicted it.
    let replays_before = counter("server.idempotent_replays");
    match client.request_keyed(cluster_request(trial), key) {
        Response::Clustering { settings_id, .. } => assert_eq!(
            settings_id, first,
            "the recorded response must replay, not re-execute"
        ),
        other => panic!("replay failed: {other:?}"),
    }
    assert_eq!(counter("server.idempotent_replays") - replays_before, 1);

    client.close();
    server.shutdown();
}
