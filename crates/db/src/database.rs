//! The database kernel: a catalog of tables with transactional mutation.
//!
//! All mutation goes through methods on [`Database`], which
//!
//! * validate constraints (types, NOT NULL, UNIQUE, FOREIGN KEY),
//! * push inverse operations onto an undo log (for ROLLBACK and for
//!   statement-level atomicity), and
//! * buffer [`WalRecord`]s that are appended to the write-ahead log when
//!   the enclosing transaction (or autocommit statement) commits.
//!
//! [`Database`] is single-threaded by design; [`crate::Connection`] wraps it
//! in a reader/writer lock for concurrent use.

use crate::error::{DbError, Result};
use crate::schema::{ColumnDef, TableSchema};
use crate::storage::{
    read_snapshot_with, scan_wal, write_snapshot_with, Durability, Wal, WalRecord,
};
use crate::table::{Row, RowId, Table};
use crate::value::Value;
use crate::vfs::Vfs;
use perfdmf_telemetry as telemetry;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Inverse operations for rollback.
#[derive(Debug)]
enum Undo {
    Insert {
        table: String,
        id: RowId,
    },
    Delete {
        table: String,
        id: RowId,
        row: Row,
    },
    Update {
        table: String,
        id: RowId,
        old: Row,
    },
    CreateTable {
        name: String,
    },
    /// Whole-table snapshot taken before destructive DDL.
    RestoreTable {
        name: String,
        table: Box<Table>,
    },
    CreateIndex {
        table: String,
        name: String,
    },
}

/// An embedded relational database: the persistent store under PerfDMF.
#[derive(Debug)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    /// index name → table name (index names are global, like PostgreSQL).
    index_owner: BTreeMap<String, String>,
    undo: Vec<Undo>,
    pending: Vec<WalRecord>,
    in_txn: bool,
    wal: Option<Wal>,
    dir: Option<PathBuf>,
    vfs: Arc<dyn Vfs>,
}

/// Marker for statement-level atomicity: positions in the undo/pending logs
/// captured before a statement runs.
#[derive(Debug, Clone, Copy)]
pub struct StmtMark {
    undo_len: usize,
    pending_len: usize,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// Create an empty in-memory database (no persistence).
    pub fn new() -> Self {
        Database {
            tables: BTreeMap::new(),
            index_owner: BTreeMap::new(),
            undo: Vec::new(),
            pending: Vec::new(),
            in_txn: false,
            wal: None,
            dir: None,
            vfs: crate::vfs::real(),
        }
    }

    /// Open (or create) a persistent database in directory `dir`.
    ///
    /// Loads `snapshot.pdmf` if present, then replays committed WAL records.
    pub fn open(dir: &Path) -> Result<Self> {
        Database::open_with_vfs(dir, crate::vfs::real())
    }

    /// Open (or create) a persistent database with all file I/O routed
    /// through `vfs` (fault injection hooks in here).
    ///
    /// Recovery protocol: load the snapshot, then scan the WAL. A WAL
    /// whose generation is *older* than the snapshot's predates it (the
    /// crash hit between the checkpoint's rename and its WAL reset); its
    /// contents are already inside the snapshot, so it is discarded
    /// instead of replayed. Any torn/uncommitted tail — or a stale or
    /// old-format log — is repaired by an atomic rewrite (temp + rename)
    /// so a crash mid-repair can never lose the committed prefix.
    pub fn open_with_vfs(dir: &Path, vfs: Arc<dyn Vfs>) -> Result<Self> {
        let _span = telemetry::span("db.open");
        vfs.create_dir_all(dir)
            .map_err(|e| DbError::io("create database dir", e))?;
        let mut db = Database::new();
        db.vfs = vfs.clone();
        telemetry::add("db.recovery.opens", 1);
        let snap_path = dir.join("snapshot.pdmf");
        let mut snap_gen = 0u64;
        if vfs.exists(&snap_path) {
            let (tables, generation) = read_snapshot_with(&*vfs, &snap_path)?;
            snap_gen = generation;
            for table in tables {
                let name = table.schema.name.clone();
                for ix_name in table.indexes.keys() {
                    if !ix_name.starts_with("__uniq_") {
                        db.index_owner.insert(ix_name.clone(), name.clone());
                    }
                }
                db.tables.insert(name, table);
            }
        }
        let wal_path = dir.join("wal.pdmf");
        let mut wal_gen = snap_gen;
        let mut wal_len = 0u64;
        let mut committed: Vec<WalRecord> = Vec::new();
        let mut needs_rewrite = false;
        if vfs.exists(&wal_path) {
            let scan = scan_wal(&*vfs, &wal_path)?;
            wal_len = scan.file_bytes;
            if scan.torn_tail || scan.torn_header {
                telemetry::add("db.recovery.torn_tail", 1);
                let _ = telemetry::trace::fault_dump("torn wal tail repaired on open");
            }
            if scan.uncommitted > 0 {
                telemetry::add("db.recovery.uncommitted_dropped", scan.uncommitted as u64);
            }
            if scan.generation < snap_gen {
                // Stale log from before the snapshot was taken: every
                // record in it is already part of the snapshot image.
                telemetry::add("db.recovery.stale_wal", 1);
                let _ = telemetry::trace::fault_dump("stale wal discarded on open");
                needs_rewrite = true;
            } else {
                wal_gen = scan.generation;
                telemetry::add("db.recovery.replayed_records", scan.records.len() as u64);
                for rec in scan.records.clone() {
                    db.apply_record(rec)?;
                }
                needs_rewrite = scan.needs_rewrite();
                committed = scan.records;
            }
        }
        let wal = if needs_rewrite {
            telemetry::add("db.recovery.wal_rewrites", 1);
            Wal::rewrite(vfs.clone(), &wal_path, wal_gen, &committed)?
        } else {
            Wal::attach(vfs.clone(), &wal_path, wal_gen, wal_len)?
        };
        db.wal = Some(wal);
        db.dir = Some(dir.to_path_buf());
        Ok(db)
    }

    /// Write a fresh snapshot and truncate the WAL. No-op for in-memory DBs.
    ///
    /// The snapshot is stamped with generation `g+1` (one past the current
    /// WAL's); only after it is durably in place is the WAL reset to the
    /// same generation. A crash in between leaves a stale lower-generation
    /// WAL that recovery detects and discards.
    pub fn checkpoint(&mut self) -> Result<()> {
        let Some(dir) = self.dir.clone() else {
            return Ok(());
        };
        if self.in_txn {
            return Err(DbError::Transaction(
                "cannot checkpoint inside a transaction".into(),
            ));
        }
        let next_gen = self.wal.as_ref().map(|w| w.generation() + 1).unwrap_or(1);
        let entries: Vec<(&String, &Table)> = self.tables.iter().collect();
        write_snapshot_with(&*self.vfs, &dir.join("snapshot.pdmf"), &entries, next_gen)?;
        if let Some(wal) = &mut self.wal {
            wal.reset_to(next_gen)?;
        }
        Ok(())
    }

    /// Apply a WAL record during recovery (no undo, no re-logging).
    fn apply_record(&mut self, rec: WalRecord) -> Result<()> {
        match rec {
            WalRecord::Insert { table, id, row } => {
                self.table_mut_raw(&table)?.insert_at(id, row)?;
            }
            WalRecord::Delete { table, id } => {
                self.table_mut_raw(&table)?.delete(id)?;
            }
            WalRecord::Update { table, id, row } => {
                self.table_mut_raw(&table)?.update(id, row)?;
            }
            WalRecord::CreateTable { schema } => {
                let name = schema.name.clone();
                self.tables.insert(name, Table::new(schema));
            }
            WalRecord::DropTable { name } => {
                if let Some(t) = self.tables.remove(&name) {
                    for ix in t.indexes.keys() {
                        self.index_owner.remove(ix);
                    }
                }
            }
            WalRecord::AddColumn { table, column } => {
                self.table_mut_raw(&table)?.add_column(column)?;
            }
            WalRecord::DropColumn { table, column } => {
                let t = self.table_mut_raw(&table)?;
                // capture dropped index names before mutation
                let dropped: Vec<String> = {
                    let idx = t.schema.column_index(&column);
                    match idx {
                        Some(i) => t
                            .indexes
                            .iter()
                            .filter(|(_, ix)| ix.column == i)
                            .map(|(n, _)| n.clone())
                            .collect(),
                        None => Vec::new(),
                    }
                };
                t.drop_column(&column)?;
                for n in dropped {
                    self.index_owner.remove(&n);
                }
            }
            WalRecord::CreateIndex {
                table,
                name,
                column,
                unique,
            } => {
                self.table_mut_raw(&table)?
                    .create_index(&name, &column, unique)?;
                self.index_owner.insert(name, table);
            }
            WalRecord::DropIndex { table, name } => {
                self.table_mut_raw(&table)?.drop_index(&name)?;
                self.index_owner.remove(&name);
            }
            WalRecord::Commit => {}
        }
        Ok(())
    }

    /// Is a write-ahead log attached (persistent database)?
    fn logging(&self) -> bool {
        self.wal.is_some()
    }

    /// Set when commit batches must reach stable storage. No-op for
    /// in-memory databases (nothing to sync).
    pub fn set_durability(&mut self, durability: Durability) {
        if let Some(wal) = &mut self.wal {
            wal.set_durability(durability);
        }
    }

    /// Current WAL durability mode (in-memory databases report the
    /// default).
    pub fn durability(&self) -> Durability {
        self.wal
            .as_ref()
            .map(|w| w.durability())
            .unwrap_or_default()
    }

    // ---------------- catalog access ----------------

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        let key = name.to_ascii_lowercase();
        self.tables.get(&key).ok_or(DbError::NoSuchTable(key))
    }

    fn table_mut_raw(&mut self, name: &str) -> Result<&mut Table> {
        let key = name.to_ascii_lowercase();
        self.tables.get_mut(&key).ok_or(DbError::NoSuchTable(key))
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Does a table exist?
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    // ---------------- statement atomicity ----------------

    /// Capture undo/WAL positions before executing a statement.
    pub fn stmt_begin(&mut self) -> StmtMark {
        StmtMark {
            undo_len: self.undo.len(),
            pending_len: self.pending.len(),
        }
    }

    /// Roll back the effects of a failed statement.
    pub fn stmt_abort(&mut self, mark: StmtMark) {
        self.undo_to(mark.undo_len);
        self.pending.truncate(mark.pending_len);
    }

    /// Finish a successful statement: autocommit if no transaction is open.
    pub fn stmt_finish(&mut self) -> Result<()> {
        if !self.in_txn {
            self.commit_internal()?;
        }
        Ok(())
    }

    fn undo_to(&mut self, len: usize) {
        while self.undo.len() > len {
            let op = self.undo.pop().expect("len checked");
            match op {
                Undo::Insert { table, id } => {
                    let _ = self.table_mut_raw(&table).and_then(|t| t.delete(id));
                }
                Undo::Delete { table, id, row } => {
                    let _ = self
                        .table_mut_raw(&table)
                        .and_then(|t| t.insert_at(id, row));
                }
                Undo::Update { table, id, old } => {
                    let _ = self.table_mut_raw(&table).and_then(|t| t.update(id, old));
                }
                Undo::CreateTable { name } => {
                    if let Some(t) = self.tables.remove(&name) {
                        for ix in t.indexes.keys() {
                            self.index_owner.remove(ix);
                        }
                    }
                }
                Undo::RestoreTable { name, table } => {
                    // Re-register this table's named indexes.
                    for ix in table.indexes.keys() {
                        if !ix.starts_with("__uniq_") {
                            self.index_owner.insert(ix.clone(), name.clone());
                        }
                    }
                    self.tables.insert(name, *table);
                }
                Undo::CreateIndex { table, name } => {
                    let _ = self.table_mut_raw(&table).and_then(|t| t.drop_index(&name));
                    self.index_owner.remove(&name);
                }
            }
        }
    }

    // ---------------- transactions ----------------

    /// True if an explicit transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.in_txn
    }

    /// BEGIN.
    pub fn begin(&mut self) -> Result<()> {
        if self.in_txn {
            return Err(DbError::Transaction(
                "nested transactions are not supported".into(),
            ));
        }
        // Anything pending belongs to completed autocommit statements.
        debug_assert!(self.pending.is_empty());
        self.in_txn = true;
        Ok(())
    }

    /// COMMIT.
    pub fn commit(&mut self) -> Result<()> {
        if !self.in_txn {
            return Err(DbError::Transaction("COMMIT outside a transaction".into()));
        }
        self.in_txn = false;
        self.commit_internal()
    }

    fn commit_internal(&mut self) -> Result<()> {
        if let Some(wal) = &mut self.wal {
            if !self.pending.is_empty() {
                self.pending.push(WalRecord::Commit);
                if let Err(e) = wal.append(&self.pending) {
                    // The log rejected the batch: undo the in-memory
                    // changes so memory and disk agree the transaction
                    // did not commit. (If the batch actually reached the
                    // file before the error, recovery may still replay
                    // it — the standard "commit may have happened"
                    // ambiguity of a failed commit acknowledgement.)
                    telemetry::add("db.commit_failures", 1);
                    self.pending.clear();
                    self.undo_to(0);
                    return Err(e);
                }
            }
        }
        self.pending.clear();
        self.undo.clear();
        Ok(())
    }

    /// ROLLBACK.
    pub fn rollback(&mut self) -> Result<()> {
        if !self.in_txn {
            return Err(DbError::Transaction(
                "ROLLBACK outside a transaction".into(),
            ));
        }
        self.in_txn = false;
        self.undo_to(0);
        self.pending.clear();
        Ok(())
    }

    // ---------------- DDL ----------------

    /// CREATE TABLE.
    pub fn create_table(&mut self, schema: TableSchema, if_not_exists: bool) -> Result<()> {
        let name = schema.name.clone();
        crate::introspect::check_ddl_name(&name)?;
        if self.tables.contains_key(&name) {
            if if_not_exists {
                return Ok(());
            }
            return Err(DbError::TableExists(name));
        }
        // Validate FK targets exist (self-reference allowed).
        for col in &schema.columns {
            if let Some((ftable, fcol)) = &col.references {
                if ftable != &name {
                    let target = self.table(ftable)?;
                    if target.schema.column_index(fcol).is_none() {
                        return Err(DbError::NoSuchColumn {
                            table: ftable.clone(),
                            column: fcol.clone(),
                        });
                    }
                }
            }
        }
        self.tables.insert(name.clone(), Table::new(schema.clone()));
        self.undo.push(Undo::CreateTable { name: name.clone() });
        self.pending.push(WalRecord::CreateTable { schema });
        Ok(())
    }

    /// DROP TABLE.
    pub fn drop_table(&mut self, name: &str, if_exists: bool) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if !self.tables.contains_key(&key) {
            if if_exists {
                return Ok(());
            }
            return Err(DbError::NoSuchTable(key));
        }
        // Refuse to drop a table referenced by another table's FK.
        for (tname, t) in &self.tables {
            if tname == &key {
                continue;
            }
            for col in &t.schema.columns {
                if let Some((ftable, _)) = &col.references {
                    if ftable == &key {
                        return Err(DbError::ForeignKeyViolation {
                            table: tname.clone(),
                            column: col.name.clone(),
                            references: key.clone(),
                        });
                    }
                }
            }
        }
        let table = self.tables.remove(&key).expect("checked above");
        for ix in table.indexes.keys() {
            self.index_owner.remove(ix);
        }
        self.undo.push(Undo::RestoreTable {
            name: key.clone(),
            table: Box::new(table),
        });
        self.pending.push(WalRecord::DropTable { name: key });
        Ok(())
    }

    /// ALTER TABLE ADD COLUMN.
    pub fn add_column(&mut self, table: &str, column: ColumnDef) -> Result<()> {
        if let Some((ftable, fcol)) = &column.references {
            let target = self.table(ftable)?;
            if target.schema.column_index(fcol).is_none() {
                return Err(DbError::NoSuchColumn {
                    table: ftable.clone(),
                    column: fcol.clone(),
                });
            }
        }
        let key = table.to_ascii_lowercase();
        let t = self.table_mut_raw(&key)?;
        let snapshot = t.clone();
        t.add_column(column.clone())?;
        self.undo.push(Undo::RestoreTable {
            name: key.clone(),
            table: Box::new(snapshot),
        });
        self.pending
            .push(WalRecord::AddColumn { table: key, column });
        Ok(())
    }

    /// ALTER TABLE DROP COLUMN.
    pub fn drop_column(&mut self, table: &str, column: &str) -> Result<()> {
        let key = table.to_ascii_lowercase();
        let t = self.table_mut_raw(&key)?;
        let snapshot = t.clone();
        let col_idx = t.schema.column_index(column);
        let dropped_ix: Vec<String> = match col_idx {
            Some(i) => t
                .indexes
                .iter()
                .filter(|(_, ix)| ix.column == i)
                .map(|(n, _)| n.clone())
                .collect(),
            None => Vec::new(),
        };
        t.drop_column(column)?;
        for n in dropped_ix {
            self.index_owner.remove(&n);
        }
        self.undo.push(Undo::RestoreTable {
            name: key.clone(),
            table: Box::new(snapshot),
        });
        self.pending.push(WalRecord::DropColumn {
            table: key,
            column: column.to_ascii_lowercase(),
        });
        Ok(())
    }

    /// CREATE \[UNIQUE\] INDEX.
    pub fn create_index(
        &mut self,
        name: &str,
        table: &str,
        column: &str,
        unique: bool,
    ) -> Result<()> {
        let iname = name.to_ascii_lowercase();
        let tkey = table.to_ascii_lowercase();
        if self.index_owner.contains_key(&iname) {
            return Err(DbError::Unsupported(format!(
                "index {iname} already exists"
            )));
        }
        let t = self.table_mut_raw(&tkey)?;
        t.create_index(&iname, column, unique)?;
        self.index_owner.insert(iname.clone(), tkey.clone());
        self.undo.push(Undo::CreateIndex {
            table: tkey.clone(),
            name: iname.clone(),
        });
        self.pending.push(WalRecord::CreateIndex {
            table: tkey,
            name: iname,
            column: column.to_ascii_lowercase(),
            unique,
        });
        Ok(())
    }

    /// DROP INDEX.
    pub fn drop_index(&mut self, name: &str) -> Result<()> {
        let iname = name.to_ascii_lowercase();
        let tkey = self
            .index_owner
            .get(&iname)
            .cloned()
            .ok_or_else(|| DbError::Unsupported(format!("no such index: {iname}")))?;
        let t = self.table_mut_raw(&tkey)?;
        let snapshot = t.clone();
        t.drop_index(&iname)?;
        self.index_owner.remove(&iname);
        self.undo.push(Undo::RestoreTable {
            name: tkey.clone(),
            table: Box::new(snapshot),
        });
        self.pending.push(WalRecord::DropIndex {
            table: tkey,
            name: iname,
        });
        Ok(())
    }

    // ---------------- DML ----------------

    /// Check FK constraints for a prospective row of `table`.
    fn check_foreign_keys(&self, table: &Table, row: &Row) -> Result<()> {
        for (i, col) in table.schema.columns.iter().enumerate() {
            let Some((ftable, fcol)) = &col.references else {
                continue;
            };
            if row[i].is_null() {
                continue;
            }
            // FK checks run before column coercion; coerce a copy so a
            // text '1' matches an integer key 1 the same way the stored
            // row eventually will.
            let coerced = row[i].coerce(col.ty);
            let v = coerced.as_ref().unwrap_or(&row[i]);
            let target = self.table(ftable)?;
            let fidx = target
                .schema
                .column_index(fcol)
                .ok_or_else(|| DbError::NoSuchColumn {
                    table: ftable.clone(),
                    column: fcol.clone(),
                })?;
            let found = match target.index_on(fidx) {
                Some(ix) => !ix.get(v).is_empty(),
                None => target.iter().any(|(_, r)| r[fidx].sql_eq(v) == Some(true)),
            };
            if !found {
                return Err(DbError::ForeignKeyViolation {
                    table: table.schema.name.clone(),
                    column: col.name.clone(),
                    references: format!("{ftable}.{fcol}"),
                });
            }
        }
        Ok(())
    }

    /// Check that no row in any table references `(table, key_col) = value`.
    fn check_not_referenced(&self, table: &str, row: &Row, schema: &TableSchema) -> Result<()> {
        for (rname, rtable) in &self.tables {
            for (ci, col) in rtable.schema.columns.iter().enumerate() {
                let Some((ftable, fcol)) = &col.references else {
                    continue;
                };
                if ftable != table {
                    continue;
                }
                let Some(key_idx) = schema.column_index(fcol) else {
                    continue;
                };
                let key = &row[key_idx];
                if key.is_null() {
                    continue;
                }
                let referenced = match rtable.index_on(ci) {
                    Some(ix) => !ix.get(key).is_empty(),
                    None => rtable.iter().any(|(_, r)| r[ci].sql_eq(key) == Some(true)),
                };
                if referenced {
                    return Err(DbError::ForeignKeyViolation {
                        table: rname.clone(),
                        column: col.name.clone(),
                        references: format!("{table}.{fcol}"),
                    });
                }
            }
        }
        Ok(())
    }

    /// Insert a row (values in schema order, `Value::Null` for omitted
    /// AUTO_INCREMENT). Returns the row id and the stored row.
    pub fn insert_row(&mut self, table: &str, row: Row) -> Result<RowId> {
        let key = table.to_ascii_lowercase();
        {
            let t = self.table(&key)?;
            if row.len() != t.schema.columns.len() {
                return Err(DbError::Arity {
                    expected: t.schema.columns.len(),
                    got: row.len(),
                });
            }
            // FK check against a coerced copy: coercion happens in insert,
            // but FK values compare cross-type anyway, so raw check is fine.
            self.check_foreign_keys(t, &row)?;
        }
        let logging = self.logging();
        let t = self.table_mut_raw(&key)?;
        let id = t.insert(row)?;
        let stored = if logging {
            Some(t.row(id).expect("just inserted").clone())
        } else {
            None
        };
        self.undo.push(Undo::Insert {
            table: key.clone(),
            id,
        });
        if let Some(row) = stored {
            self.pending.push(WalRecord::Insert {
                table: key,
                id,
                row,
            });
        }
        Ok(id)
    }

    /// Bulk-insert pre-evaluated value tuples into `table` — the
    /// group-commit fast path used by importers. `columns` names the
    /// position of each tuple element (empty = full schema order); omitted
    /// columns take their declared defaults, and an omitted AUTO_INCREMENT
    /// primary key is assigned as usual. All rows join the current pending
    /// batch, so under autocommit the entire bulk lands in **one** WAL
    /// append (and one fsync under [`crate::storage::Durability::Fsync`]).
    ///
    /// Returns the inserted-row count and the last generated
    /// AUTO_INCREMENT id, mirroring `INSERT`'s outcome.
    pub fn bulk_insert(
        &mut self,
        table: &str,
        columns: &[&str],
        rows: Vec<Row>,
    ) -> Result<(usize, Option<i64>)> {
        let (col_map, auto_pk, defaults): (Vec<usize>, Option<usize>, Row) = {
            let t = self.table(table)?;
            let n = t.schema.columns.len();
            let map: Vec<usize> = if columns.is_empty() {
                (0..n).collect()
            } else {
                let mut m = Vec::with_capacity(columns.len());
                for c in columns {
                    m.push(
                        t.schema
                            .column_index(c)
                            .ok_or_else(|| DbError::NoSuchColumn {
                                table: table.to_string(),
                                column: c.to_string(),
                            })?,
                    );
                }
                m
            };
            let auto = t
                .schema
                .primary_key_index()
                .filter(|&i| t.schema.columns[i].auto_increment);
            let defaults = t
                .schema
                .columns
                .iter()
                .map(|c| c.default.clone().unwrap_or(Value::Null))
                .collect();
            (map, auto, defaults)
        };
        let mut count = 0;
        let mut last = None;
        for tuple in rows {
            if tuple.len() != col_map.len() {
                return Err(DbError::Arity {
                    expected: col_map.len(),
                    got: tuple.len(),
                });
            }
            let mut row: Row = defaults.clone();
            for (slot, value) in col_map.iter().zip(tuple) {
                row[*slot] = value;
            }
            let id = self.insert_row(table, row)?;
            if let Some(pk) = auto_pk {
                if let Some(Value::Int(v)) = self.table(table)?.row(id).map(|r| r[pk].clone()) {
                    last = Some(v);
                }
            }
            count += 1;
        }
        telemetry::add("db.bulk_insert.rows", count as u64);
        Ok((count, last))
    }

    /// Delete a row by id.
    pub fn delete_row(&mut self, table: &str, id: RowId) -> Result<()> {
        let key = table.to_ascii_lowercase();
        {
            let t = self.table(&key)?;
            let row = t
                .row(id)
                .ok_or_else(|| DbError::Corrupt(format!("delete of unknown row {id}")))?
                .clone();
            let schema = t.schema.clone();
            self.check_not_referenced(&key, &row, &schema)?;
        }
        let logging = self.logging();
        let t = self.table_mut_raw(&key)?;
        let row = t.delete(id)?;
        self.undo.push(Undo::Delete {
            table: key.clone(),
            id,
            row,
        });
        if logging {
            self.pending.push(WalRecord::Delete { table: key, id });
        }
        Ok(())
    }

    /// Update a row by id with a full replacement row.
    pub fn update_row(&mut self, table: &str, id: RowId, new_row: Row) -> Result<()> {
        let key = table.to_ascii_lowercase();
        {
            let t = self.table(&key)?;
            self.check_foreign_keys(t, &new_row)?;
            // If a referenced key column changes, enforce RESTRICT.
            let old = t
                .row(id)
                .ok_or_else(|| DbError::Corrupt(format!("update of unknown row {id}")))?;
            let schema = t.schema.clone();
            let changed_keys: Vec<usize> = schema
                .columns
                .iter()
                .enumerate()
                .filter(|(i, _)| old.get(*i) != new_row.get(*i))
                .map(|(i, _)| i)
                .collect();
            if !changed_keys.is_empty() {
                // Only need the referenced-check for the old values.
                let mut probe = old.clone();
                // Mask out unchanged columns so the check only fires on
                // columns whose value is going away.
                for (i, v) in probe.iter_mut().enumerate() {
                    if !changed_keys.contains(&i) {
                        *v = Value::Null;
                    }
                }
                self.check_not_referenced(&key, &probe, &schema)?;
            }
        }
        let logging = self.logging();
        let t = self.table_mut_raw(&key)?;
        let old = t.update(id, new_row)?;
        let stored = if logging {
            Some(t.row(id).expect("just updated").clone())
        } else {
            None
        };
        self.undo.push(Undo::Update {
            table: key.clone(),
            id,
            old,
        });
        if let Some(row) = stored {
            self.pending.push(WalRecord::Update {
                table: key,
                id,
                row,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn db_with_parent_child() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "parent",
                vec![
                    ColumnDef::new("id", DataType::Integer)
                        .primary_key()
                        .auto_increment(),
                    ColumnDef::new("name", DataType::Text),
                ],
            )
            .unwrap(),
            false,
        )
        .unwrap();
        db.create_table(
            TableSchema::new(
                "child",
                vec![
                    ColumnDef::new("id", DataType::Integer)
                        .primary_key()
                        .auto_increment(),
                    ColumnDef::new("parent", DataType::Integer).references("parent", "id"),
                ],
            )
            .unwrap(),
            false,
        )
        .unwrap();
        db.stmt_finish().unwrap();
        db
    }

    #[test]
    fn fk_insert_enforced() {
        let mut db = db_with_parent_child();
        assert!(matches!(
            db.insert_row("child", vec![Value::Null, Value::Int(99)]),
            Err(DbError::ForeignKeyViolation { .. })
        ));
        db.insert_row("parent", vec![Value::Null, "p".into()])
            .unwrap();
        db.insert_row("child", vec![Value::Null, Value::Int(1)])
            .unwrap();
        // NULL FK is allowed
        db.insert_row("child", vec![Value::Null, Value::Null])
            .unwrap();
    }

    #[test]
    fn fk_accepts_coercible_values() {
        let mut db = db_with_parent_child();
        db.insert_row("parent", vec![Value::Null, "p".into()])
            .unwrap();
        // text '1' coerces to the integer key 1 before the FK check
        db.insert_row("child", vec![Value::Null, Value::Text("1".into())])
            .unwrap();
        assert_eq!(db.table("child").unwrap().len(), 1);
    }

    #[test]
    fn fk_delete_restricted() {
        let mut db = db_with_parent_child();
        db.insert_row("parent", vec![Value::Null, "p".into()])
            .unwrap();
        db.insert_row("child", vec![Value::Null, Value::Int(1)])
            .unwrap();
        assert!(matches!(
            db.delete_row("parent", 0),
            Err(DbError::ForeignKeyViolation { .. })
        ));
        db.delete_row("child", 0).unwrap();
        db.delete_row("parent", 0).unwrap();
    }

    #[test]
    fn fk_update_restricted() {
        let mut db = db_with_parent_child();
        db.insert_row("parent", vec![Value::Null, "p".into()])
            .unwrap();
        db.insert_row("child", vec![Value::Null, Value::Int(1)])
            .unwrap();
        // Changing the referenced pk away is refused...
        assert!(matches!(
            db.update_row("parent", 0, vec![Value::Int(5), "p".into()]),
            Err(DbError::ForeignKeyViolation { .. })
        ));
        // ...but updating a non-key column is fine.
        db.update_row("parent", 0, vec![Value::Int(1), "renamed".into()])
            .unwrap();
    }

    #[test]
    fn drop_referenced_table_refused() {
        let mut db = db_with_parent_child();
        assert!(matches!(
            db.drop_table("parent", false),
            Err(DbError::ForeignKeyViolation { .. })
        ));
        db.drop_table("child", false).unwrap();
        db.drop_table("parent", false).unwrap();
    }

    #[test]
    fn transaction_rollback_restores_rows() {
        let mut db = db_with_parent_child();
        db.insert_row("parent", vec![Value::Null, "keep".into()])
            .unwrap();
        db.stmt_finish().unwrap();
        db.begin().unwrap();
        db.insert_row("parent", vec![Value::Null, "gone".into()])
            .unwrap();
        db.update_row("parent", 0, vec![Value::Int(1), "changed".into()])
            .unwrap();
        db.rollback().unwrap();
        let t = db.table("parent").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.row(0).unwrap()[1], Value::Text("keep".into()));
    }

    #[test]
    fn transaction_rollback_restores_ddl() {
        let mut db = db_with_parent_child();
        db.begin().unwrap();
        db.create_table(
            TableSchema::new("temp", vec![ColumnDef::new("x", DataType::Integer)]).unwrap(),
            false,
        )
        .unwrap();
        db.add_column("parent", ColumnDef::new("extra", DataType::Text))
            .unwrap();
        db.create_index("ix_name", "parent", "name", false).unwrap();
        db.rollback().unwrap();
        assert!(!db.has_table("temp"));
        assert!(db.table("parent").unwrap().schema.column("extra").is_none());
        assert!(!db.table("parent").unwrap().indexes.contains_key("ix_name"));
    }

    #[test]
    fn statement_abort_is_partial() {
        let mut db = db_with_parent_child();
        db.begin().unwrap();
        db.insert_row("parent", vec![Value::Null, "a".into()])
            .unwrap();
        let mark = db.stmt_begin();
        db.insert_row("parent", vec![Value::Null, "b".into()])
            .unwrap();
        db.stmt_abort(mark);
        db.commit().unwrap();
        assert_eq!(db.table("parent").unwrap().len(), 1);
    }

    #[test]
    fn nested_begin_rejected() {
        let mut db = Database::new();
        db.begin().unwrap();
        assert!(db.begin().is_err());
        db.commit().unwrap();
        assert!(db.commit().is_err());
        assert!(db.rollback().is_err());
    }

    #[test]
    fn persistence_roundtrip() {
        let dir = std::env::temp_dir().join(format!(
            "pdmf_dbtest_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut db = Database::open(&dir).unwrap();
            db.create_table(
                TableSchema::new(
                    "t",
                    vec![
                        ColumnDef::new("id", DataType::Integer)
                            .primary_key()
                            .auto_increment(),
                        ColumnDef::new("v", DataType::Double),
                    ],
                )
                .unwrap(),
                false,
            )
            .unwrap();
            db.stmt_finish().unwrap();
            let mark = db.stmt_begin();
            let _ = mark;
            db.insert_row("t", vec![Value::Null, Value::Float(1.5)])
                .unwrap();
            db.stmt_finish().unwrap();
            db.insert_row("t", vec![Value::Null, Value::Float(2.5)])
                .unwrap();
            db.stmt_finish().unwrap();
        }
        // Reopen: WAL replay restores everything.
        {
            let mut db = Database::open(&dir).unwrap();
            assert_eq!(db.table("t").unwrap().len(), 2);
            // Checkpoint, add more, reopen again: snapshot + WAL combine.
            db.checkpoint().unwrap();
            db.insert_row("t", vec![Value::Null, Value::Float(9.0)])
                .unwrap();
            db.stmt_finish().unwrap();
        }
        {
            let db = Database::open(&dir).unwrap();
            let t = db.table("t").unwrap();
            assert_eq!(t.len(), 3);
            assert_eq!(t.row(2).unwrap()[1], Value::Float(9.0));
            assert_eq!(t.next_auto_value(), 4);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncommitted_txn_not_persisted() {
        let dir = std::env::temp_dir().join(format!(
            "pdmf_dbtest_txn_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut db = Database::open(&dir).unwrap();
            db.create_table(
                TableSchema::new("t", vec![ColumnDef::new("x", DataType::Integer)]).unwrap(),
                false,
            )
            .unwrap();
            db.stmt_finish().unwrap();
            db.begin().unwrap();
            db.insert_row("t", vec![Value::Int(1)]).unwrap();
            // drop without commit — simulated crash
        }
        {
            let db = Database::open(&dir).unwrap();
            assert_eq!(db.table("t").unwrap().len(), 0);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
