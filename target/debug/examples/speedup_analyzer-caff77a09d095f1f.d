/root/repo/target/debug/examples/speedup_analyzer-caff77a09d095f1f.d: examples/speedup_analyzer.rs

/root/repo/target/debug/examples/speedup_analyzer-caff77a09d095f1f: examples/speedup_analyzer.rs

examples/speedup_analyzer.rs:
