/root/repo/target/debug/examples/speedup_analyzer-9fac555c74434f69.d: examples/speedup_analyzer.rs

/root/repo/target/debug/examples/speedup_analyzer-9fac555c74434f69: examples/speedup_analyzer.rs

examples/speedup_analyzer.rs:
