/root/repo/target/release/deps/perfdmf-1b7f670b038dffa6.d: src/lib.rs

/root/repo/target/release/deps/libperfdmf-1b7f670b038dffa6.rlib: src/lib.rs

/root/repo/target/release/deps/libperfdmf-1b7f670b038dffa6.rmeta: src/lib.rs

src/lib.rs:
