//! Experiment E3 — speedup analysis cost (paper §5.2).
//!
//! Measures building the per-routine min/mean/max speedup table and the
//! application-level Amdahl fit over EVH1-style trial series. Expected
//! shape: cost grows with routine count × trial count × thread count, and
//! stays interactive (well under a second) at study scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perfdmf_analysis::SpeedupAnalysis;
use perfdmf_workload::Evh1Model;

fn build_analysis(max_procs: usize) -> SpeedupAnalysis {
    let model = Evh1Model::default_mix(17);
    let mut analysis = SpeedupAnalysis::new("GET_TIME_OF_DAY");
    let mut p = 1usize;
    while p <= max_procs {
        analysis.add_trial(p, model.generate(p));
        p *= 2;
    }
    analysis
}

fn bench_routine_speedups(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_routine_speedups");
    for max_procs in [8usize, 32, 128] {
        let analysis = build_analysis(max_procs);
        group.bench_with_input(BenchmarkId::from_parameter(max_procs), &analysis, |b, a| {
            b.iter(|| a.routine_speedups());
        });
    }
    group.finish();
}

fn bench_application_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_application_scaling");
    for max_procs in [8usize, 32, 128] {
        let analysis = build_analysis(max_procs);
        group.bench_with_input(BenchmarkId::from_parameter(max_procs), &analysis, |b, a| {
            b.iter(|| a.application_scaling().expect("scaling"));
        });
    }
    group.finish();
}

fn bench_comparison_algebra(c: &mut Criterion) {
    // the CUBE-style diff over two large trials
    let model = Evh1Model::default_mix(23);
    let a = model.generate(64);
    let b_trial = model.generate(128);
    let mut group = c.benchmark_group("e3_trial_diff");
    group.bench_function("diff_64_vs_128", |b| {
        b.iter(|| perfdmf_analysis::diff(&a, &b_trial));
    });
    group.bench_function("merge_64_128", |b| {
        b.iter(|| perfdmf_analysis::merge(&a, &b_trial));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_routine_speedups,
    bench_application_scaling,
    bench_comparison_algebra
);
criterion_main!(benches);
