/root/repo/target/debug/deps/perfdmf-643ed1b4ed8d9638.d: src/bin/perfdmf.rs Cargo.toml

/root/repo/target/debug/deps/libperfdmf-643ed1b4ed8d9638.rmeta: src/bin/perfdmf.rs Cargo.toml

src/bin/perfdmf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
