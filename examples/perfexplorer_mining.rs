//! PerfExplorer data mining (paper §5.3, Figure 3) — experiment E4.
//!
//! Reproduces the sPPM analysis: a large trial whose threads fall into a
//! small number of hardware-counter behaviour classes (the structure Ahn &
//! Vetter reported) is clustered by the PerfExplorer analysis server, the
//! clusters are summarized, and the results are saved back into the
//! database through the PerfDMF API.
//!
//! The sPPM dataset is synthetic with *planted* classes, so the example
//! can verify the recovered clustering against ground truth (adjusted
//! Rand index).
//!
//! Run with: `cargo run --example perfexplorer_mining`

use perfdmf::analysis::adjusted_rand_index;
use perfdmf::core::DatabaseSession;
use perfdmf::db::Connection;
use perfdmf::explorer::{AnalysisServer, ExplorerClient, Response};
use perfdmf::workload::SppmModel;

fn main() {
    // ---- generate and store the sPPM-like trial ----
    let threads = 512usize;
    let model = SppmModel::default_classes(1973);
    let (profile, truth) = model.generate(threads, &[0.55, 0.30, 0.15]);
    println!(
        "sPPM-like trial: {threads} threads × {} PAPI metrics, {} planted classes",
        profile.metrics().len(),
        3
    );

    let conn = Connection::open_in_memory();
    let mut session = DatabaseSession::new(conn.clone()).unwrap();
    let trial_id = session.store_profile("sppm", "counters", &profile).unwrap();

    // ---- start the analysis server (Figure 3) and connect a client ----
    let server = AnalysisServer::start(conn.clone(), 2).expect("server");
    let client = ExplorerClient::connect(&server);

    // ---- request cluster analysis on the FP-operations metric ----
    // Cluster threads by their full 7-counter vectors at the timestep
    // event — the feature space of the Ahn & Vetter analysis.
    let response = client.cluster_counters(trial_id, "sppm_timestep", 6);
    let Response::Clustering {
        settings_id,
        k,
        assignments,
        summaries,
        silhouette,
        columns,
    } = response
    else {
        panic!("unexpected response: {response:?}");
    };
    println!("\ncluster analysis of trial {trial_id} on the PAPI counter vectors:");
    println!("  silhouette-selected k = {k} (score {silhouette:.3})");
    for s in &summaries {
        let c0 = columns.first().map(String::as_str).unwrap_or("");
        println!(
            "  cluster {}: {:>4} threads, mean {c0} = {:.3e}",
            s.cluster,
            s.size,
            s.centroid.first().copied().unwrap_or(0.0)
        );
    }

    // ---- verify against the planted ground truth ----
    let ari = adjusted_rand_index(&assignments, &truth);
    println!("\nadjusted Rand index vs planted classes: {ari:.3}");
    assert!(
        ari > 0.95,
        "clustering failed to recover the planted sPPM behaviour classes"
    );

    // ---- correlate the PAPI counters (Ahn & Vetter's other lens) ----
    if let Response::Correlation {
        metrics, matrix, ..
    } = client.correlate(trial_id, "sppm_timestep")
    {
        println!("\nPAPI counter correlations (|r| > 0.8):");
        for i in 0..metrics.len() {
            for j in (i + 1)..metrics.len() {
                if matrix[i][j].abs() > 0.8 {
                    println!(
                        "  {} ~ {}: r = {:+.3}",
                        metrics[i], metrics[j], matrix[i][j]
                    );
                }
            }
        }
    }

    // ---- cross-check with the second mining method ----
    if let Response::Clustering {
        k: hk,
        assignments: h_assignments,
        ..
    } = client.cluster_hierarchical(trial_id, "sppm_timestep", 6)
    {
        let agreement = adjusted_rand_index(&assignments, &h_assignments);
        println!("\nhierarchical clustering agrees with k-means: k = {hk}, ARI = {agreement:.3}");
    }

    // ---- browse the stored results, as the PerfExplorer client would ----
    if let Response::Stored { method, rows } = client.fetch(settings_id) {
        let assignments = rows.iter().filter(|(t, _, _, _)| t == "assignment").count();
        let centroids = rows.iter().filter(|(t, _, _, _)| t == "centroid").count();
        println!(
            "\nresults stored via the PerfDMF API: method={method}, \
             {assignments} assignment rows, {centroids} centroid rows"
        );
    }

    server.shutdown();
    println!("\n(cluster analysis recovered the planted FP-behaviour classes — the §5.3 result)");
}
