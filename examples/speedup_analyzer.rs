//! Trial browser and speedup analyzer (paper §5.2) — experiment E3.
//!
//! "One application we developed to test the PerfDMF API was a trial
//! browser and speedup analyzer ... We applied this tool to study the
//! scalability of the EVH1 benchmark. Given performance data from
//! experiments with varying numbers of processors, the tool automatically
//! calculates the minimum, mean and maximum values for the speedup [of]
//! every profiled routine."
//!
//! The EVH1 dataset is synthetic (see DESIGN.md): an Amdahl-style routine
//! mix whose ground truth lets the output be sanity-checked.
//!
//! Run with: `cargo run --example speedup_analyzer`

use perfdmf::analysis::SpeedupAnalysis;
use perfdmf::core::DatabaseSession;
use perfdmf::db::{Connection, Value};
use perfdmf::workload::Evh1Model;

fn main() {
    let procs = [1usize, 2, 4, 8, 16, 32, 64];
    let model = Evh1Model::default_mix(2005);

    // Store one trial per processor count through the PerfDMF API...
    let conn = Connection::open_in_memory();
    let mut session = DatabaseSession::new(conn).unwrap();
    for &p in &procs {
        let profile = model.generate(p);
        session.store_profile("evh1", "scaling", &profile).unwrap();
    }

    // ...then drive the analyzer from the database, like the paper's tool.
    println!("trial browser: evh1/scaling trials in the database");
    session.reset();
    let mut analysis = SpeedupAnalysis::new("GET_TIME_OF_DAY");
    for trial in session.trial_list().unwrap() {
        let id = trial.id.unwrap();
        let nodes = trial
            .field("node_count")
            .and_then(Value::as_int)
            .unwrap_or(0) as usize;
        println!("  trial {id}: {} ({nodes} processors)", trial.name);
        session.set_trial(id);
        analysis.add_trial(nodes, session.load_profile().unwrap());
    }

    // Whole-application scaling + Amdahl fit.
    let scaling = analysis.application_scaling().expect("scaling");
    println!("\napplication scaling (baseline = {} proc):", procs[0]);
    println!("{:>8} {:>10} {:>12}", "procs", "speedup", "efficiency");
    for (p, s, e) in &scaling.points {
        println!("{p:>8} {s:>10.3} {e:>12.3}");
    }
    if let Some(s) = scaling.amdahl_serial_fraction {
        println!(
            "Amdahl serial fraction ≈ {s:.4}  (⇒ max speedup ≈ {:.1})",
            1.0 / s
        );
    }

    // Per-routine min/mean/max speedups — the §5.2 table.
    println!("\nper-routine speedup (min / mean / max across threads):");
    let routines = analysis.routine_speedups();
    // show the most and least scalable routines at the largest count
    let last = *procs.last().unwrap();
    let mut at_scale: Vec<_> = routines
        .iter()
        .filter_map(|r| {
            r.points
                .iter()
                .find(|p| p.processors == last)
                .map(|p| (r.event.as_str(), p))
        })
        .collect();
    at_scale.sort_by(|a, b| b.1.mean.total_cmp(&a.1.mean));
    println!("{:<28} {:>8} {:>8} {:>8}", "routine", "min", "mean", "max");
    println!("-- best scaling at {last} procs --");
    for (name, p) in at_scale.iter().take(5) {
        println!("{name:<28} {:>8.2} {:>8.2} {:>8.2}", p.min, p.mean, p.max);
    }
    println!("-- worst scaling at {last} procs --");
    for (name, p) in at_scale.iter().rev().take(5) {
        println!("{name:<28} {:>8.2} {:>8.2} {:>8.2}", p.min, p.mean, p.max);
    }
    println!(
        "\n(compute sweeps approach {last}x; serial setup and MPI routines \
         stay near or below 1x — the EVH1 scalability story)"
    );
}
