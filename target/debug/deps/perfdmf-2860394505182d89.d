/root/repo/target/debug/deps/perfdmf-2860394505182d89.d: src/lib.rs

/root/repo/target/debug/deps/perfdmf-2860394505182d89: src/lib.rs

src/lib.rs:
