//! gprof importer.
//!
//! Parses the text report produced by `gprof` (Graham, Kessler, McKusick
//! 1982): the *flat profile* gives per-function self time and call counts;
//! the *call graph* gives self+children (inclusive) time for each primary
//! line. gprof output describes a single process, so the resulting profile
//! has one thread (`0:0:0`) unless the caller maps files to ranks.
//!
//! ```text
//! Flat profile:
//!
//! Each sample counts as 0.01 seconds.
//!   %   cumulative   self              self     total
//!  time   seconds   seconds    calls  ms/call  ms/call  name
//!  33.34      0.02     0.02     7208     0.00     0.00  open
//! ...
//!                      Call graph
//!
//! index % time    self  children    called     name
//! [1]     92.3    0.02     0.10       1         main [1]
//! ```

use crate::error::{ImportError, Result};
use perfdmf_profile::{IntervalData, IntervalEvent, Metric, Profile, ThreadId, UNDEFINED};

const FORMAT: &str = "gprof";

/// Parse gprof text output into a profile (one thread).
pub fn parse_gprof_text(text: &str, thread: ThreadId, profile: &mut Profile) -> Result<()> {
    let metric = profile.add_metric(Metric::measured("GPROF_TIME"));
    profile.add_thread(thread);

    let mut in_flat = false;
    let mut flat_header_seen = false;
    let mut in_graph = false;
    let mut parsed_any = false;

    // (name, self_seconds, calls)
    let mut flat: Vec<(String, f64, f64)> = Vec::new();
    // name -> inclusive seconds (self + children from primary graph lines)
    let mut inclusive: Vec<(String, f64)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.trim_start().starts_with("Flat profile") {
            in_flat = true;
            in_graph = false;
            continue;
        }
        if line.contains("Call graph") {
            in_graph = true;
            in_flat = false;
            continue;
        }
        if in_flat {
            let t = line.trim();
            if t.is_empty() || t.starts_with("Each sample") {
                continue;
            }
            if t.starts_with('%') || t.starts_with("time") {
                flat_header_seen = true;
                continue;
            }
            if !flat_header_seen {
                continue;
            }
            // data row: %time cum self [calls [self/call total/call]] name
            let fields: Vec<&str> = t.split_whitespace().collect();
            if fields.len() < 4 {
                // end of flat section (e.g. legend text)
                if parsed_any {
                    in_flat = false;
                }
                continue;
            }
            let pct: std::result::Result<f64, _> = fields[0].parse();
            if pct.is_err() {
                continue; // legend lines after the table
            }
            let self_secs: f64 = fields[2]
                .parse()
                .map_err(|_| ImportError::format(FORMAT, lineno + 1, "bad self-seconds column"))?;
            // calls column may be missing for sampled-only functions
            let (calls, name_start) = match fields.get(3).and_then(|s| s.parse::<f64>().ok()) {
                Some(c) if fields.len() >= 5 => {
                    // with calls present there may be ms/call columns
                    let mut idx = 4;
                    while idx < fields.len() - 1 && fields[idx].parse::<f64>().is_ok() {
                        idx += 1;
                    }
                    (c, idx)
                }
                _ => (UNDEFINED, 3),
            };
            let name = fields[name_start..].join(" ");
            if name.is_empty() {
                return Err(ImportError::format(
                    FORMAT,
                    lineno + 1,
                    "missing function name",
                ));
            }
            flat.push((name, self_secs, calls));
            parsed_any = true;
        } else if in_graph {
            let t = line.trim();
            // primary lines start with "[n]"
            if !t.starts_with('[') {
                continue;
            }
            let fields: Vec<&str> = t.split_whitespace().collect();
            // [index] %time self children called name [index]
            if fields.len() < 5 {
                continue;
            }
            let (Ok(self_s), Ok(children_s)) = (fields[2].parse::<f64>(), fields[3].parse::<f64>())
            else {
                continue;
            };
            // name runs from after `called` (field 4, may be "n" or "n+m")
            // to the trailing [index].
            let mut name_fields = &fields[4..];
            // The "called" column may be absent for the top node; detect by
            // whether fields[4] parses as count-ish.
            if !name_fields.is_empty()
                && name_fields[0]
                    .chars()
                    .all(|c| c.is_ascii_digit() || c == '+' || c == '/')
            {
                name_fields = &name_fields[1..];
            }
            let mut name = name_fields.join(" ");
            if let Some(pos) = name.rfind('[') {
                name.truncate(pos);
            }
            let name = name.trim().to_string();
            if name.is_empty() || name == "<spontaneous>" {
                continue;
            }
            inclusive.push((name, self_s + children_s));
        }
    }

    if flat.is_empty() {
        return Err(ImportError::format(FORMAT, 0, "no flat profile data found"));
    }

    for (name, self_secs, calls) in flat {
        let incl = inclusive
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(self_secs);
        let event = profile.add_event(IntervalEvent::new(name, "GPROF_DEFAULT"));
        profile.set_interval(
            event,
            thread,
            metric,
            IntervalData::new(incl.max(self_secs), self_secs, calls, UNDEFINED),
        );
    }
    profile.recompute_derived_fields(metric);
    Ok(())
}

/// Load a gprof report file as a single-thread profile.
pub fn load_gprof_file(path: &std::path::Path) -> Result<Profile> {
    let text = std::fs::read_to_string(path).map_err(|e| ImportError::io(path, e))?;
    let mut profile = Profile::new(
        path.file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default(),
    );
    profile.source_format = "gprof".into();
    parse_gprof_text(&text, ThreadId::ZERO, &mut profile)?;
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
Flat profile:

Each sample counts as 0.01 seconds.
  %   cumulative   self              self     total
 time   seconds   seconds    calls  ms/call  ms/call  name
 60.00      0.60     0.60     1000     0.60     0.90  compute_flux
 30.00      0.90     0.30      500     0.60     0.60  riemann solver
 10.00      1.00     0.10                             mcount

                     Call graph

granularity: each sample hit covers 2 byte(s) for 1.00% of 1.00 seconds

index % time    self  children    called     name
[1]     90.0    0.00     0.90       1         main [1]
[2]     90.0    0.60     0.30    1000         compute_flux [2]
[3]     30.0    0.30     0.00     500         riemann solver [3]
";

    #[test]
    fn parses_flat_and_graph() {
        let mut p = Profile::new("t");
        parse_gprof_text(SAMPLE, ThreadId::ZERO, &mut p).unwrap();
        let m = p.find_metric("GPROF_TIME").unwrap();
        let flux = p.find_event("compute_flux").unwrap();
        let d = p.interval(flux, ThreadId::ZERO, m).unwrap();
        assert_eq!(d.exclusive(), Some(0.60));
        // 0.60 + 0.30 in binary floating point
        assert!((d.inclusive().unwrap() - 0.90).abs() < 1e-12);
        assert_eq!(d.calls(), Some(1000.0));
        // name with a space
        let rs = p.find_event("riemann solver").unwrap();
        let d = p.interval(rs, ThreadId::ZERO, m).unwrap();
        assert_eq!(d.exclusive(), Some(0.30));
        // function without calls column
        let mc = p.find_event("mcount").unwrap();
        let d = p.interval(mc, ThreadId::ZERO, m).unwrap();
        assert_eq!(d.calls(), None);
        assert_eq!(d.inclusive(), Some(0.10));
    }

    #[test]
    fn inclusive_defaults_to_self_without_graph() {
        let text = "\
Flat profile:

Each sample counts as 0.01 seconds.
  %   cumulative   self              self     total
 time   seconds   seconds    calls  ms/call  ms/call  name
100.00      1.00     1.00        1  1000.00  1000.00  solo
";
        let mut p = Profile::new("t");
        parse_gprof_text(text, ThreadId::ZERO, &mut p).unwrap();
        let m = p.find_metric("GPROF_TIME").unwrap();
        let e = p.find_event("solo").unwrap();
        assert_eq!(
            p.interval(e, ThreadId::ZERO, m).unwrap().inclusive(),
            Some(1.0)
        );
    }

    #[test]
    fn malformed_inputs_error_without_panicking() {
        // Corrupt data rows produce structured errors, not panics.
        let bad_self = "\
Flat profile:
  %   cumulative   self              self     total
 time   seconds   seconds    calls  ms/call  ms/call  name
 60.00      0.60      ???     1000     0.60     0.90  compute_flux
";
        let mut p = Profile::new("t");
        let err = parse_gprof_text(bad_self, ThreadId::ZERO, &mut p).unwrap_err();
        assert!(err.to_string().contains("self-seconds"), "{err}");

        // Truncating a valid report at every byte must yield Ok or a
        // structured error — never a panic.
        for i in 0..SAMPLE.len() {
            let mut p = Profile::new("t");
            let _ = parse_gprof_text(&SAMPLE[..i], ThreadId::ZERO, &mut p);
        }
    }

    #[test]
    fn rejects_empty_report() {
        let mut p = Profile::new("t");
        assert!(parse_gprof_text("nothing here", ThreadId::ZERO, &mut p).is_err());
        assert!(parse_gprof_text("Flat profile:\n", ThreadId::ZERO, &mut p).is_err());
    }
}
